"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` needs `bdist_wheel`; when wheel is unavailable,
`python setup.py develop` installs an equivalent editable package.
"""

from setuptools import setup

setup()
