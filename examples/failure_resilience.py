#!/usr/bin/env python3
"""Transient failures: soft state + retries route around a crash.

The paper's §3.1 claim: the flat publish/subscribe architecture lets
the cluster "operate smoothly in the presence of transient failures".
This example crashes one of four servers mid-run and recovers it later,
then prints a timeline of where requests landed and how response times
moved — no operator action, no central failure detector.

Usage:  python examples/failure_resilience.py
"""

import numpy as np

from repro.cluster import FailureInjector, ServiceCluster
from repro.core import make_policy

N_REQUESTS = 12_000
N_SERVERS = 4
MEAN_SERVICE = 5e-3
LOAD = 0.6
CRASH_AT, RECOVER_AT = 3.0, 8.0


def main() -> None:
    cluster = ServiceCluster(
        n_servers=N_SERVERS,
        policy=make_policy("polling", poll_size=2, discard_slow=True),
        seed=99,
        n_clients=3,
        availability=True,
        availability_refresh=0.2,
        availability_ttl=0.5,
        request_timeout=1.0,
        max_retries=8,
    )
    rng = np.random.default_rng(99)
    gaps = rng.exponential(MEAN_SERVICE / (N_SERVERS * LOAD), N_REQUESTS)
    services = rng.exponential(MEAN_SERVICE, N_REQUESTS)
    cluster.load_workload(gaps, services)

    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=CRASH_AT)
    injector.schedule_recovery(1, at=RECOVER_AT)

    metrics = cluster.run()

    print(
        f"{N_REQUESTS} requests over {N_SERVERS} servers; node 1 crashes at "
        f"t={CRASH_AT:.0f}s, recovers at t={RECOVER_AT:.0f}s "
        f"(soft-state TTL 0.5s)\n"
    )
    print("t window     per-server completions           mean resp   retries")
    edges = np.arange(0.0, metrics.arrival_time[-1] + 1.0, 1.0)
    for lo, hi in zip(edges[:-1], edges[1:]):
        window = (metrics.arrival_time >= lo) & (metrics.arrival_time < hi)
        if not window.any():
            continue
        counts = np.bincount(
            metrics.server_id[window & (metrics.server_id >= 0)],
            minlength=N_SERVERS,
        )
        mean_ms = np.nanmean(metrics.response_time[window]) * 1e3
        retries = int(metrics.retries[window].sum())
        marks = ""
        if lo <= CRASH_AT < hi:
            marks = "  <- crash"
        if lo <= RECOVER_AT < hi:
            marks += "  <- recovery"
        print(
            f"[{lo:4.0f},{hi:4.0f})  "
            + "  ".join(f"n{i}={c:4d}" for i, c in enumerate(counts))
            + f"   {mean_ms:7.2f}ms   {retries:5d}{marks}"
        )
    lost = int(metrics.failed.sum())
    print(f"\nfailed requests: {lost} / {N_REQUESTS}"
          f"   (every request either completed or was retried to completion)")


if __name__ == "__main__":
    main()
