#!/usr/bin/env python3
"""Figure 1 scenario: a partitioned, replicated multi-service cluster.

Builds the paper's example service cluster from the library's low-level
primitives (no ServiceCluster wrapper):

- an **image store** service partitioned in two groups (images 0-9 and
  10-19), each replicated on 3 nodes;
- a **photo album** service replicated on 3 nodes, which *depends on*
  the image store: rendering an album page means one album access plus
  one image-store access on the partition holding the image;
- **web servers** (internal clients) that balance each sub-access with
  random polling (poll size 2) over the partition's replica group.

Prints per-tier latency and the per-replica load split.

Usage:  python examples/photo_album_cluster.py
"""

import numpy as np

from repro.cluster import ClientNode, PartitionMap, Request, ServerNode, ServiceSpec
from repro.core import choose_min_with_ties
from repro.net import ConstantLatency, MessageKind, Network, PAPER_NET
from repro.sim import RngHub, Simulator

N_PAGE_LOADS = 5000
ALBUM_SERVICE_MS = 8.0
IMAGE_SERVICE_MS = 15.0
PAGE_RATE = 220.0  # album page loads per second across the site


class PolledTier:
    """Random-polling (d=2) access to one replica group.

    Each tier owns the completion callback of its replica nodes and
    routes responses back to per-request waiters by request index.
    """

    def __init__(self, sim, net, rng, servers, replica_ids):
        self.sim = sim
        self.net = net
        self.rng = rng
        self.servers = servers
        self.replica_ids = replica_ids
        self._waiters: dict[int, tuple[float, object]] = {}
        self._next_id = 0
        for node_id in replica_ids:
            servers[node_id].on_complete = self._on_complete

    def _on_complete(self, server, request) -> None:
        started, _on_done = self._waiters[request.index]
        self.net.send(
            MessageKind.RESPONSE, server.node_id, request.client_id, request,
            self._deliver_response,
        )

    def _deliver_response(self, message) -> None:
        started, on_done = self._waiters.pop(message.payload.index)
        on_done(self.sim.now - started)

    def access(self, client: ClientNode, service_time: float, on_done) -> None:
        """Poll two replicas, dispatch to the shorter queue, call
        ``on_done(response_time)`` when the response returns."""
        started = self.sim.now
        request_id = self._next_id
        self._next_id += 1
        self._waiters[request_id] = (started, on_done)
        picks = self.rng.choice(len(self.replica_ids), size=min(2, len(self.replica_ids)),
                                replace=False)
        targets = [self.replica_ids[i] for i in picks]
        replies: list[tuple[int, int]] = []

        def on_poll_reply(message):
            server_id, qlen = message.payload
            replies.append((server_id, qlen))
            if len(replies) < len(targets):
                return
            chosen = choose_min_with_ties(
                [sid for sid, _ in replies], [q for _, q in replies], self.rng
            )
            request = Request(request_id, client.node_id, service_time, started)
            self.net.send(MessageKind.REQUEST, client.node_id, chosen, request,
                          lambda m: self.servers[m.dst].enqueue(m.payload))

        def on_poll(message):
            server = self.servers[message.dst]
            self.net.send(MessageKind.POLL_REPLY, server.node_id, message.src,
                          (server.node_id, server.queue_length), on_poll_reply)

        for target in targets:
            self.net.send(MessageKind.POLL, client.node_id, target, None, on_poll)


def main() -> None:
    sim = Simulator()
    hub = RngHub(2026)
    net = Network(sim, hub.stream("net"), ConstantLatency(PAPER_NET.poll_one_way))
    net.set_latency(MessageKind.REQUEST, ConstantLatency(PAPER_NET.request_one_way))
    net.set_latency(MessageKind.RESPONSE, ConstantLatency(PAPER_NET.request_one_way))

    # --- placement (Figure 1): 6 image-store nodes + 3 album nodes ----
    servers = [ServerNode(sim, node_id=i) for i in range(9)]
    placement = PartitionMap()
    placement.place(ServiceSpec("image_store", n_partitions=2, replication=3),
                    node_ids=[0, 1, 2, 3, 4, 5])
    placement.assign("photo_album", 0, [6, 7, 8])

    web_servers = [ClientNode(sim, 100 + j) for j in range(3)]
    album_tier = PolledTier(sim, net, hub.stream("poll.album"), servers,
                            placement.replicas("photo_album"))
    image_tiers = [
        PolledTier(sim, net, hub.stream(f"poll.images.{p}"), servers,
                   placement.replicas("image_store", p))
        for p in (0, 1)
    ]

    # --- workload: album page = album access, then image access -------
    workload_rng = hub.stream("workload")
    page_latencies: list[float] = []
    album_latencies: list[float] = []
    image_latencies: list[float] = []

    def page_load(index: int) -> None:
        if index + 1 < N_PAGE_LOADS:
            sim.after(float(workload_rng.exponential(1.0 / PAGE_RATE)),
                      page_load, index + 1)
        web = web_servers[index % len(web_servers)]
        page_start = sim.now
        album_time = float(workload_rng.exponential(ALBUM_SERVICE_MS * 1e-3))

        def after_album(album_latency: float) -> None:
            album_latencies.append(album_latency)
            image_id = int(workload_rng.integers(20))
            tier = image_tiers[0] if image_id < 10 else image_tiers[1]
            image_time = float(workload_rng.exponential(IMAGE_SERVICE_MS * 1e-3))

            def after_image(image_latency: float) -> None:
                image_latencies.append(image_latency)
                page_latencies.append(sim.now - page_start)

            tier.access(web, image_time, after_image)

        album_tier.access(web, album_time, after_album)

    sim.after(0.0, page_load, 0)
    while len(page_latencies) < N_PAGE_LOADS:
        sim.run(max_events=100_000)

    # --- report --------------------------------------------------------
    def ms(values):
        arr = np.asarray(values) * 1e3
        return f"mean {arr.mean():6.1f} ms   p99 {np.percentile(arr, 99):6.1f} ms"

    print(f"{N_PAGE_LOADS} album page loads at {PAGE_RATE:.0f}/s over 3 web servers\n")
    print(f"  album tier  (3 replicas):        {ms(album_latencies)}")
    print(f"  image tier  (2x3 replicas):      {ms(image_latencies)}")
    print(f"  end-to-end page:                 {ms(page_latencies)}")
    print("\nper-node completions (polling d=2 keeps replica groups even):")
    for service, partition in [("photo_album", 0), ("image_store", 0), ("image_store", 1)]:
        group = placement.replicas(service, partition)
        counts = ", ".join(f"node{n}={servers[n].completed_count}" for n in group)
        print(f"  {service}/p{partition}: {counts}")


if __name__ == "__main__":
    main()
