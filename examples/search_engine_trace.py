#!/usr/bin/env python3
"""Search-engine scenario: fine-grain services and the poll-size trap.

Reproduces the paper's central finding on the Fine-Grain trace (a
Teoma query-word translation service, 22.2 ms mean service time):

- in an idealized *simulation* (no polling overheads) bigger poll sizes
  look harmless;
- on the *prototype* model (load-dependent poll delays, CPU stolen by
  inquiry handling, full load calibrated by the 98%-under-2s rule) poll
  size 8 collapses below even the random policy, while d=2-3 remain
  excellent.

Usage:  python examples/search_engine_trace.py
"""

from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.report import format_series
from repro.experiments.runner import full_load_rho_for
from repro.workload import FINE_GRAIN_SPEC

POLL_SIZES = (2, 3, 8)
N_REQUESTS = 15_000
LOAD = 0.9


def sweep(model: str) -> dict[str, float]:
    base = SimulationConfig(
        workload="fine_grain", load=LOAD, n_servers=16,
        n_requests=N_REQUESTS, seed=7, model=model,
    )
    if model == "prototype":
        base = base.with_updates(full_load_rho=full_load_rho_for(base))
    configs = [base.with_updates(policy="random", label="random")]
    configs += [
        base.with_updates(policy="polling", policy_params={"poll_size": d},
                          label=f"poll-{d}")
        for d in POLL_SIZES
    ]
    oracle = "ideal" if model == "simulation" else "manager"
    configs.append(base.with_updates(policy=oracle, label="oracle"))
    results = parallel_sweep(configs)
    return {r.config.label: r.mean_response_time_ms for r in results}


def main() -> None:
    spec = FINE_GRAIN_SPEC
    print(
        f"Workload: {spec.name} — service {spec.service_time_mean * 1e3:.1f} ms "
        f"(std {spec.service_time_std * 1e3:.1f} ms), 16 servers, {LOAD:.0%} busy\n"
    )
    simulation = sweep("simulation")
    prototype = sweep("prototype")
    labels = ["random", "poll-2", "poll-3", "poll-8", "oracle"]
    print(
        format_series(
            "policy",
            labels,
            {
                "simulation_ms": [simulation[l] for l in labels],
                "prototype_ms": [prototype[l] for l in labels],
            },
        )
    )
    print(
        "\nIn simulation poll-8 looks as good as poll-2; on the prototype"
        "\nits polling overhead pushes the cluster over the calibrated"
        "\nsaturation point and it loses even to random — the paper's"
        "\ncase for small poll sizes on fine-grain services."
    )


if __name__ == "__main__":
    main()
