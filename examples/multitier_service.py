#!/usr/bin/env python3
"""The complete Figure 1 cluster on the application framework.

Reproduces the paper's motivating deployment with service *handlers*
(Neptune's RPC-like access methods) and nested, load-balanced calls:

- **image store** — partitioned in two groups (images 0-9 / 10-19),
  each replicated x3; pure compute.
- **photo album** — replicated x3; renders a page: own compute plus a
  nested call into the image-store partition holding the image.
- **discussion group** — replicated x3, partitioned x2; delivered
  independently (no dependencies).
- **web servers / WAP gateways** — external clients submitting a mixed
  workload of album pages and discussion reads.

Every access (external or nested) is balanced with random polling
(d=2) over its replica group. Prints per-service latency and the
replica load split.

Usage:  python examples/multitier_service.py
"""

import numpy as np

from repro.cluster import ApplicationCluster, ServiceSpec, call, compute

N_PAGES = 4000
PAGE_RATE = 160.0         # album page loads/s
DISCUSSION_RATE = 240.0   # discussion reads/s


def image_store(ctx, request):
    """Fetch an image: ~15 ms of CPU (decode + I/O emulated)."""
    yield compute(float(request.payload["rng"]) * 2 * 15e-3)
    return {"image": request.payload["image_id"]}


def photo_album(ctx, request):
    """Render an album page: 5 ms layout + one image fetch + 3 ms."""
    yield compute(5e-3)
    image_id = request.payload["image_id"]
    image = yield call(
        "image_store",
        partition=0 if image_id < 10 else 1,
        payload={"image_id": image_id, "rng": request.payload["rng"]},
    )
    yield compute(3e-3)
    return {"page": image}


def discussion_group(ctx, request):
    """Read a discussion thread: ~8 ms of CPU."""
    yield compute(float(request.payload["rng"]) * 2 * 8e-3)
    return {"thread": request.payload["thread_id"]}


def main() -> None:
    app = ApplicationCluster(n_nodes=12, seed=7, workers=2, poll_size=2,
                             n_clients=4)
    app.place_service(
        ServiceSpec("image_store", n_partitions=2, replication=3),
        node_ids=[0, 1, 2, 3, 4, 5],
        handler=image_store,
    )
    app.place_service(
        ServiceSpec("photo_album", n_partitions=1, replication=3),
        node_ids=[6, 7, 8],
        handler=photo_album,
    )
    app.place_service(
        ServiceSpec("discussion", n_partitions=2, replication=3),
        node_ids=[9, 10, 11, 6, 7, 8],  # shares nodes with the album tier
        handler=discussion_group,
    )

    rng = np.random.default_rng(7)
    # Mixed open workload: album pages and discussion reads interleaved.
    done = [0]
    total = N_PAGES + int(N_PAGES * DISCUSSION_RATE / PAGE_RATE)
    album_times = np.cumsum(rng.exponential(1.0 / PAGE_RATE, N_PAGES))
    discussion_times = np.cumsum(
        rng.exponential(1.0 / DISCUSSION_RATE, total - N_PAGES)
    )

    def count(_signal):
        done[0] += 1

    def submit_album(i):
        if i + 1 < N_PAGES:
            app.sim.at(float(album_times[i + 1]), submit_album, i + 1)
        client = app.client_ids[i % len(app.client_ids)]
        payload = {"image_id": int(rng.integers(20)), "rng": rng.random()}
        app.async_call(client, "photo_album", 0, payload).add_callback(count)

    def submit_discussion(i):
        if i + 1 < len(discussion_times):
            app.sim.at(float(discussion_times[i + 1]), submit_discussion, i + 1)
        client = app.client_ids[i % len(app.client_ids)]
        payload = {"thread_id": int(rng.integers(40)), "rng": rng.random()}
        partition = int(rng.integers(2))
        app.async_call(client, "discussion", partition, payload).add_callback(count)

    app.sim.at(float(album_times[0]), submit_album, 0)
    app.sim.at(float(discussion_times[0]), submit_discussion, 0)
    while done[0] < total:
        app.sim.run(max_events=200_000)

    print(f"{total} accesses ({N_PAGES} album pages + "
          f"{total - N_PAGES} discussion reads) over 4 gateways\n")
    print(f"{'service':<14} {'count':>7} {'mean':>9} {'p99':>9}")
    for service, tally in app.response_times.items():
        print(f"{service:<14} {len(tally):>7} {tally.mean() * 1e3:8.1f}ms "
              f"{tally.percentile(99) * 1e3:8.1f}ms")
    print("\nper-node completions (flat architecture: album nodes also serve"
          " discussion):")
    for node in app.nodes:
        print(f"  node{node.node_id:<2} completed {node.completed}")


if __name__ == "__main__":
    main()
