#!/usr/bin/env python3
"""Quickstart: compare cluster load balancing policies in 30 lines.

Runs the paper's policies over a Poisson/Exp workload (50 ms mean
service time) on a 16-server cluster at 90% load and prints the mean
response times — the one-figure summary of the whole paper: random
polling with a tiny poll size gets most of the way to the oracle.

Usage:  python examples/quickstart.py
"""

from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable

POLICIES = [
    ("random", "random", {}),
    ("round-robin", "round_robin", {}),
    ("broadcast (100ms)", "broadcast", {"mean_interval": 0.1}),
    ("least-connections", "least_connections", {}),
    ("polling d=2", "polling", {"poll_size": 2}),
    ("polling d=3 +discard", "polling", {"poll_size": 3, "discard_slow": True}),
    ("IDEAL oracle", "ideal", {}),
]


def main() -> None:
    configs = [
        SimulationConfig(
            policy=policy,
            policy_params=params,
            workload="poisson_exp",
            load=0.9,
            n_servers=16,
            n_requests=20_000,
            seed=42,
            label=label,
        )
        for label, policy, params in POLICIES
    ]
    results = parallel_sweep(configs)

    table = ResultTable(["policy", "mean_ms", "p99_ms", "vs_ideal"])
    ideal = results[-1].mean_response_time
    for result in results:
        table.add(
            policy=result.config.label,
            mean_ms=result.mean_response_time_ms,
            p99_ms=result.p99_response_time * 1e3,
            vs_ideal=result.mean_response_time / ideal,
        )
    print("Poisson/Exp (50ms), 16 servers, 90% load, 20k requests\n")
    print(table.render(floatfmt="{:.2f}"))
    print(
        "\nTakeaway: poll size 2 recovers most of the random->oracle gap"
        " at the cost of two tiny UDP messages per request."
    )


if __name__ == "__main__":
    main()
