"""Unit tests for the Network transport and BroadcastChannel."""

import numpy as np
import pytest

from repro.net import BroadcastChannel, ConstantLatency, MessageKind, Network
from repro.sim import Simulator


def make_net(latency=150e-6):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(latency))
    return sim, net


def test_send_delivers_after_latency():
    sim, net = make_net(latency=1e-3)
    delivered = []
    net.send(MessageKind.REQUEST, 0, 1, "payload", delivered.append)
    sim.run()
    assert len(delivered) == 1
    message = delivered[0]
    assert message.payload == "payload"
    assert message.src == 0 and message.dst == 1
    assert sim.now == pytest.approx(1e-3)


def test_send_time_recorded():
    sim, net = make_net()
    sim.after(0.5, lambda: net.send(MessageKind.POLL, 1, 2, None, lambda m: None))
    sim.run()
    assert net.message_counts[MessageKind.POLL] == 1


def test_per_kind_latency_override():
    sim, net = make_net(latency=1.0)
    net.set_latency(MessageKind.POLL, ConstantLatency(1e-6))
    times = {}
    net.send(MessageKind.POLL, 0, 1, None, lambda m: times.setdefault("poll", sim.now))
    net.send(MessageKind.REQUEST, 0, 1, None, lambda m: times.setdefault("req", sim.now))
    sim.run()
    assert times["poll"] == pytest.approx(1e-6)
    assert times["req"] == pytest.approx(1.0)


def test_extra_delay_added():
    sim, net = make_net(latency=1e-3)
    times = []
    net.send(MessageKind.POLL_REPLY, 0, 1, None, lambda m: times.append(sim.now),
             extra_delay=5e-3)
    sim.run()
    assert times == [pytest.approx(6e-3)]


def test_message_and_byte_accounting():
    sim, net = make_net()
    for _ in range(3):
        net.send(MessageKind.POLL, 0, 1, None, lambda m: None)
    net.send(MessageKind.REQUEST, 0, 1, None, lambda m: None, size_bytes=2048)
    assert net.message_counts[MessageKind.POLL] == 3
    assert net.message_counts[MessageKind.REQUEST] == 1
    assert net.byte_counts[MessageKind.REQUEST] == 2048
    assert net.total_messages() == 4
    net.reset_counters()
    assert net.total_messages() == 0


def test_drop_filter_suppresses_delivery_but_counts():
    sim, net = make_net()
    net.drop_filter = lambda m: m.dst == 9
    delivered = []
    net.send(MessageKind.REQUEST, 0, 9, None, delivered.append)
    net.send(MessageKind.REQUEST, 0, 1, None, delivered.append)
    sim.run()
    assert len(delivered) == 1 and delivered[0].dst == 1
    assert net.dropped_counts[MessageKind.REQUEST] == 1
    assert net.message_counts[MessageKind.REQUEST] == 2


def test_broadcast_fanout():
    sim, net = make_net(latency=1e-3)
    channel = BroadcastChannel(net)
    received = []
    for node in (1, 2, 3):
        channel.subscribe(node, lambda m, n=node: received.append((n, m.payload)))
    count = channel.publish(src=0, payload=7)
    sim.run()
    assert count == 3
    assert sorted(received) == [(1, 7), (2, 7), (3, 7)]
    assert net.message_counts[MessageKind.BROADCAST] == 3


def test_broadcast_unsubscribe():
    sim, net = make_net()
    channel = BroadcastChannel(net)
    received = []
    channel.subscribe(1, lambda m: received.append(1))
    channel.subscribe(2, lambda m: received.append(2))
    channel.unsubscribe(1)
    channel.publish(src=0, payload=None)
    sim.run()
    assert received == [2]
    assert channel.subscriber_count == 1


def test_broadcast_channel_custom_kind():
    sim, net = make_net()
    channel = BroadcastChannel(net, kind=MessageKind.PUBLISH)
    channel.subscribe(1, lambda m: None)
    channel.publish(src=0, payload=None)
    assert net.message_counts[MessageKind.PUBLISH] == 1
