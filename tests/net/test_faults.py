"""Unit tests for the seeded message-level fault models."""

import numpy as np
import pytest

from repro.net import ConstantLatency, Message, MessageKind, Network, NetworkFaults
from repro.sim import Simulator


def make_network(latency=1e-4):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(latency))
    return sim, net


def install_faults(net, **kwargs):
    faults = NetworkFaults(np.random.default_rng(1), **kwargs)
    net.faults = faults
    return faults


def send_n(sim, net, n, src=0, dst=1, kind=MessageKind.REQUEST):
    delivered = []
    for i in range(n):
        net.send(kind, src, dst, i, delivered.append)
    sim.run()
    return delivered


def test_probability_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        NetworkFaults(rng, loss=1.5)
    with pytest.raises(ValueError):
        NetworkFaults(rng, duplicate=-0.1)
    with pytest.raises(ValueError):
        NetworkFaults(rng, jitter_mean=-1.0)
    with pytest.raises(ValueError):
        NetworkFaults(rng, per_kind={MessageKind.POLL: {"latency": 1.0}})


def test_no_faults_delivers_everything():
    sim, net = make_network()
    install_faults(net)
    delivered = send_n(sim, net, 50)
    assert len(delivered) == 50


def test_total_loss_drops_everything():
    sim, net = make_network()
    faults = install_faults(net, loss=1.0)
    delivered = send_n(sim, net, 30)
    assert delivered == []
    assert faults.total_lost() == 30
    assert net.dropped_counts[MessageKind.REQUEST] == 30


def test_total_duplication_delivers_twice():
    sim, net = make_network()
    faults = install_faults(net, duplicate=1.0)
    delivered = send_n(sim, net, 20)
    assert len(delivered) == 40
    assert faults.total_duplicated() == 20
    # duplicates are not new sends
    assert net.message_counts[MessageKind.REQUEST] == 20


def test_jitter_delays_delivery():
    sim, net = make_network(latency=1e-4)
    install_faults(net, jitter_mean=0.05)
    times = []
    for i in range(200):
        net.send(MessageKind.REQUEST, 0, 1, i, lambda m: times.append(sim.now))
    sim.run()
    extras = np.array(times) - 1e-4
    assert (extras >= -1e-12).all()
    assert extras.mean() == pytest.approx(0.05, rel=0.3)


def test_per_kind_override_silences_one_kind_only():
    sim, net = make_network()
    install_faults(net, per_kind={MessageKind.PUBLISH: {"loss": 1.0}})
    publishes = send_n(sim, net, 10, kind=MessageKind.PUBLISH)
    requests = send_n(sim, net, 10, kind=MessageKind.REQUEST)
    assert publishes == []
    assert len(requests) == 10


def test_partition_blocks_both_directions_at_send():
    sim, net = make_network()
    faults = install_faults(net)
    faults.add_partition({0, 1}, {2, 3})
    a = send_n(sim, net, 5, src=0, dst=2)
    b = send_n(sim, net, 5, src=3, dst=1)
    within = send_n(sim, net, 5, src=0, dst=1)
    assert a == [] and b == []
    assert len(within) == 5
    assert sum(faults.partition_drop_counts.values()) == 10


def test_partition_heal_restores_traffic():
    sim, net = make_network()
    faults = install_faults(net)
    pair = faults.add_partition({0}, {1})
    assert send_n(sim, net, 3) == []
    faults.remove_partition(pair)
    assert len(send_n(sim, net, 3)) == 3


def test_partition_activation_drops_in_flight_messages():
    sim, net = make_network(latency=0.01)
    faults = install_faults(net)
    delivered = []
    net.send(MessageKind.REQUEST, 0, 1, "x", delivered.append)
    # cut activates while the message is on the wire
    sim.at(0.005, lambda: faults.add_partition({0}, {1}))
    sim.run()
    assert delivered == []
    assert faults.in_flight_drop_counts[MessageKind.REQUEST] == 1


def test_crash_mid_flight_blocks_delivery():
    sim, net = make_network(latency=0.01)
    faults = install_faults(net)
    delivered = []
    net.send(MessageKind.REQUEST, 0, 1, "x", delivered.append)
    sim.at(0.005, lambda: faults.unreachable.add(1))
    sim.run()
    assert delivered == []


def test_unreachable_source_also_blocks():
    sim, net = make_network(latency=0.01)
    faults = install_faults(net)
    delivered = []
    net.send(MessageKind.RESPONSE, 1, 0, "x", delivered.append)
    sim.at(0.005, lambda: faults.unreachable.add(1))
    sim.run()
    assert delivered == []


def test_partition_group_validation():
    faults = NetworkFaults(np.random.default_rng(0))
    with pytest.raises(ValueError):
        faults.add_partition([], [1])
    with pytest.raises(ValueError):
        faults.add_partition([1, 2], [2, 3])


def test_drop_filter_runs_before_faults_and_consumes_no_rng():
    """Deterministic drops (crash filter) must not perturb the fault
    RNG stream — the composability contract."""
    sim, net = make_network()
    install_faults(net, loss=0.5)
    net.drop_filter = lambda m: m.dst == 9
    send_n(sim, net, 20, dst=9)  # all filter-dropped
    state_after_filtered = net.faults.rng.bit_generator.state["state"]

    sim2, net2 = make_network()
    install_faults(net2, loss=0.5)
    state_fresh = net2.faults.rng.bit_generator.state["state"]
    assert state_after_filtered == state_fresh


def test_deliver_trace_fires_only_on_actual_deliveries():
    sim, net = make_network()
    install_faults(net, loss=1.0, per_kind={MessageKind.POLL: {"loss": 0.0}})
    traced = []
    net.deliver_trace = traced.append
    send_n(sim, net, 5, kind=MessageKind.REQUEST)  # all lost
    delivered = send_n(sim, net, 5, kind=MessageKind.POLL)
    assert len(delivered) == 5
    assert len(traced) == 5
    assert all(m.kind is MessageKind.POLL for m in traced)


def test_fixed_seed_fault_decisions_are_reproducible():
    outcomes = []
    for _ in range(2):
        sim, net = make_network()
        faults = install_faults(net, loss=0.3, duplicate=0.3, jitter_mean=0.001)
        delivered = send_n(sim, net, 100)
        outcomes.append((len(delivered), faults.total_lost(), faults.total_duplicated()))
    assert outcomes[0] == outcomes[1]
