"""Unit tests for latency models and paper constants."""

import numpy as np
import pytest

from repro.net import (
    ConstantLatency,
    ExponentialLatency,
    PAPER_NET,
    PaperNetworkConstants,
    UniformLatency,
)


def rng():
    return np.random.default_rng(0)


def test_constant_latency():
    model = ConstantLatency(516e-6)
    assert model.sample(rng()) == 516e-6
    assert model.mean() == 516e-6


def test_constant_latency_validation():
    with pytest.raises(ValueError):
        ConstantLatency(-1e-6)


def test_uniform_latency_bounds_and_mean():
    model = UniformLatency(1e-3, 3e-3)
    samples = np.array([model.sample(rng()) for _ in range(100)])
    assert ((samples >= 1e-3) & (samples <= 3e-3)).all()
    assert model.mean() == pytest.approx(2e-3)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(3e-3, 1e-3)


def test_exponential_latency():
    model = ExponentialLatency(base=1e-3, mean_extra=2e-3)
    assert model.mean() == pytest.approx(3e-3)
    generator = rng()
    samples = np.array([model.sample(generator) for _ in range(20_000)])
    assert (samples >= 1e-3).all()
    assert samples.mean() == pytest.approx(3e-3, rel=0.05)


def test_paper_constants_values():
    """Pin the paper's measured values (µs) so they can't silently drift."""
    assert PAPER_NET.request_response_total == pytest.approx(516e-6)
    assert PAPER_NET.udp_rtt == pytest.approx(290e-6)
    assert PAPER_NET.tcp_rtt_nosetup == pytest.approx(339e-6)
    assert PAPER_NET.discard_timeout == pytest.approx(10e-3)
    assert PAPER_NET.sched_quantum == pytest.approx(10e-3)


def test_paper_constants_derived():
    assert PAPER_NET.request_one_way == pytest.approx(258e-6)
    assert PAPER_NET.poll_one_way == pytest.approx(145e-6)
    assert PAPER_NET.manager_one_way == pytest.approx(169.5e-6)


def test_paper_constants_frozen():
    with pytest.raises(Exception):
        PAPER_NET.udp_rtt = 0.0  # type: ignore[misc]


def test_custom_constants():
    constants = PaperNetworkConstants(udp_rtt=100e-6)
    assert constants.poll_one_way == pytest.approx(50e-6)
    assert constants.request_response_total == pytest.approx(516e-6)
