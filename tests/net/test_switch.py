"""Unit tests for the switched-Ethernet model."""

import pytest

from repro.net import SwitchedEthernet
from repro.net.message import Message, MessageKind
from repro.sim import Simulator


def make_message(dst, size=1000, src=0):
    return Message(MessageKind.REQUEST, src, dst, None, size, 0.0)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        SwitchedEthernet(sim, n_ports=0)
    with pytest.raises(ValueError):
        SwitchedEthernet(sim, n_ports=4, bandwidth_bps=0)


def test_serialization_delay_100mbps():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=4, bandwidth_bps=100e6)
    # 1250 bytes = 10000 bits -> 100 us at 100 Mb/s
    assert switch.serialization_delay(1250) == pytest.approx(100e-6)


def test_single_message_timing():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=4, bandwidth_bps=100e6, propagation=20e-6)
    done = switch.transit(make_message(1, size=1250), lambda m: None)
    assert done == pytest.approx(20e-6 + 100e-6)


def test_same_port_messages_serialize():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=4, bandwidth_bps=100e6, propagation=0.0)
    deliveries = []
    switch.transit(make_message(1, size=1250), lambda m: deliveries.append(sim.now))
    switch.transit(make_message(1, size=1250), lambda m: deliveries.append(sim.now))
    sim.run()
    assert deliveries[0] == pytest.approx(100e-6)
    assert deliveries[1] == pytest.approx(200e-6)


def test_different_ports_do_not_contend():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=4, bandwidth_bps=100e6, propagation=0.0)
    deliveries = []
    switch.transit(make_message(1, size=1250), lambda m: deliveries.append((1, sim.now)))
    switch.transit(make_message(2, size=1250), lambda m: deliveries.append((2, sim.now)))
    sim.run()
    assert deliveries == [(1, pytest.approx(100e-6)), (2, pytest.approx(100e-6))]


def test_port_backlog():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=2, bandwidth_bps=100e6, propagation=0.0)
    assert switch.port_backlog(1) == 0.0
    switch.transit(make_message(1, size=12500), lambda m: None)  # 1 ms
    assert switch.port_backlog(1) == pytest.approx(1e-3)


def test_idle_period_resets_port():
    sim = Simulator()
    switch = SwitchedEthernet(sim, n_ports=2, bandwidth_bps=100e6, propagation=0.0)
    switch.transit(make_message(1, size=1250), lambda m: None)
    sim.run()
    deliveries = []
    sim.at(1.0, lambda: switch.transit(make_message(1, size=1250),
                                       lambda m: deliveries.append(sim.now)))
    sim.run()
    assert deliveries == [pytest.approx(1.0 + 100e-6)]
