"""Tests for wiring SwitchedEthernet under the Network transport."""

import numpy as np
import pytest

from repro.net import ConstantLatency, MessageKind, Network, SwitchedEthernet
from repro.sim import Simulator


def make(latency=100e-6, bandwidth=100e6):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(latency))
    net.switch = SwitchedEthernet(sim, n_ports=4, bandwidth_bps=bandwidth,
                                  propagation=0.0)
    return sim, net


def test_switch_adds_serialization_delay():
    sim, net = make()
    times = []
    net.send(MessageKind.REQUEST, 0, 1, None, lambda m: times.append(sim.now),
             size_bytes=1250)  # 100us at 100Mb/s
    sim.run()
    assert times == [pytest.approx(100e-6 + 100e-6)]


def test_switch_contention_serializes_same_port():
    sim, net = make()
    times = []
    for _ in range(3):
        net.send(MessageKind.REQUEST, 0, 1, None, lambda m: times.append(sim.now),
                 size_bytes=1250)
    sim.run()
    # All arrive at the switch at t=100us, then serialize 100us each.
    assert times == [
        pytest.approx(200e-6),
        pytest.approx(300e-6),
        pytest.approx(400e-6),
    ]


def test_no_switch_behaviour_unchanged():
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(1e-3))
    times = []
    net.send(MessageKind.REQUEST, 0, 1, None, lambda m: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(1e-3)]


def test_drop_filter_applies_before_switch():
    sim, net = make()
    net.drop_filter = lambda m: True
    delivered = []
    net.send(MessageKind.REQUEST, 0, 1, None, delivered.append)
    sim.run()
    assert delivered == []
    assert net.switch.port_backlog(1) == 0.0
