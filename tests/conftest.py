"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Point the persistent result cache at a per-session temp dir.

    Keeps test runs hermetic (no cross-run cache hits masking a
    regression in the simulation path) and keeps ``.repro-cache/`` out
    of the working tree when the suite exercises the CLI.
    """
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.getbasetemp() / "repro-cache")
    )
