"""Unit tests for Table-1 trace synthesis."""

import numpy as np
import pytest

from repro.workload import (
    FINE_GRAIN_SPEC,
    MEDIUM_GRAIN_SPEC,
    TraceSpec,
    synthesize_trace,
)


def test_specs_match_paper_service_moments():
    assert FINE_GRAIN_SPEC.service_time_mean == pytest.approx(22.2e-3)
    assert FINE_GRAIN_SPEC.service_time_std == pytest.approx(1.0e-3)
    assert MEDIUM_GRAIN_SPEC.service_time_mean == pytest.approx(28.9e-3)
    assert MEDIUM_GRAIN_SPEC.service_time_std == pytest.approx(62.9e-3)


def test_fine_grain_service_cv_below_exponential():
    """The paper notes both traces have lower service variance than Exp."""
    assert FINE_GRAIN_SPEC.service_time_std < FINE_GRAIN_SPEC.service_time_mean


def test_default_size_is_peak_portion():
    trace = synthesize_trace(FINE_GRAIN_SPEC, rng=np.random.default_rng(0))
    assert len(trace) == FINE_GRAIN_SPEC.peak_accesses


@pytest.mark.parametrize("spec", [FINE_GRAIN_SPEC, MEDIUM_GRAIN_SPEC], ids=lambda s: s.name)
def test_synthesized_moments_close(spec):
    trace = synthesize_trace(spec, n=200_000, rng=np.random.default_rng(3))
    stats = trace.stats()
    assert stats.service_time_mean == pytest.approx(spec.service_time_mean, rel=0.05)
    assert stats.service_time_std == pytest.approx(spec.service_time_std, rel=0.15)
    assert stats.arrival_interval_mean == pytest.approx(spec.arrival_interval_mean, rel=0.05)
    assert stats.arrival_interval_std == pytest.approx(spec.arrival_interval_std, rel=0.1)


@pytest.mark.parametrize("spec", [FINE_GRAIN_SPEC, MEDIUM_GRAIN_SPEC], ids=lambda s: s.name)
def test_exact_moments_mode(spec):
    trace = synthesize_trace(spec, n=50_000, rng=np.random.default_rng(4), exact_moments=True)
    stats = trace.stats()
    # "Exact" up to the positivity clamp on the extreme left tail, which
    # perturbs heavy-tailed fits (Medium-Grain) by ~1e-4 relative.
    assert stats.service_time_mean == pytest.approx(spec.service_time_mean, rel=1e-3)
    assert stats.service_time_std == pytest.approx(spec.service_time_std, rel=5e-3)
    assert (trace.service > 0).all()
    assert (trace.interarrival >= 0).all()


def test_synthesis_reproducible():
    a = synthesize_trace(FINE_GRAIN_SPEC, n=1000, rng=np.random.default_rng(5))
    b = synthesize_trace(FINE_GRAIN_SPEC, n=1000, rng=np.random.default_rng(5))
    assert np.array_equal(a.service, b.service)


def test_synthesis_rejects_tiny_n():
    with pytest.raises(ValueError):
        synthesize_trace(FINE_GRAIN_SPEC, n=1)


def test_custom_spec():
    spec = TraceSpec(
        name="custom",
        total_accesses=100,
        peak_accesses=10,
        arrival_interval_mean=0.1,
        arrival_interval_std=0.05,
        service_time_mean=0.01,
        service_time_std=0.002,
    )
    trace = synthesize_trace(spec, n=20_000, rng=np.random.default_rng(6))
    assert trace.stats().service_time_mean == pytest.approx(0.01, rel=0.05)
