"""Trace replay: generators, file round-trips, burst structure.

ISSUE 7 satellite: the loader must round-trip byte-exactly (CSV and
JSONL), replay must conserve arrival counts and total work, and a
fixed-seed cluster run must show the burst structure *mattering* — a
load-oblivious policy pays for bursts in p95 where a load-aware one
mostly absorbs them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import SimulationConfig, config_key
from repro.experiments.runner import run_simulation
from repro.workload import Trace, make_workload
from repro.workload.replay import (
    bursty_trace,
    diurnal_trace,
    file_trace,
    load_arrivals,
    load_arrivals_csv,
    load_arrivals_jsonl,
    replay_file_params,
    save_arrivals,
    save_arrivals_csv,
    save_arrivals_jsonl,
    trace_digest,
)


def _trace(timestamps, services):
    times = np.asarray(timestamps, dtype=np.float64)
    gaps = np.empty_like(times)
    gaps[0] = times[0]
    gaps[1:] = times[1:] - times[:-1]
    return Trace(
        name="t",
        interarrival=gaps,
        service=np.asarray(services, dtype=np.float64),
        metadata={"timestamps": times},
    )


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------

@pytest.mark.parametrize("suffix", [".csv", ".jsonl"])
def test_save_load_save_is_byte_identical(tmp_path, suffix):
    rng = np.random.default_rng(3)
    times = np.cumsum(rng.exponential(0.013, 200))
    services = rng.lognormal(-3.2, 0.6, 200)
    first = tmp_path / f"trace{suffix}"
    save_arrivals(_trace(times, services), first)
    loaded = load_arrivals(first)
    assert len(loaded) == 200
    second = tmp_path / f"again{suffix}"
    save_arrivals(loaded, second)
    assert first.read_bytes() == second.read_bytes()


def test_csv_and_jsonl_loaders_agree(tmp_path):
    trace = _trace([0.1, 0.25, 0.4], [0.05, 0.06, 0.04])
    csv_path = tmp_path / "t.csv"
    jsonl_path = tmp_path / "t.jsonl"
    save_arrivals_csv(trace, csv_path)
    save_arrivals_jsonl(trace, jsonl_path)
    a = load_arrivals_csv(csv_path)
    b = load_arrivals_jsonl(jsonl_path)
    np.testing.assert_array_equal(a.interarrival, b.interarrival)
    np.testing.assert_array_equal(a.service, b.service)
    np.testing.assert_array_equal(
        a.metadata["timestamps"], b.metadata["timestamps"]
    )


def test_loaded_gaps_reconstruct_the_timestamps(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "timestamp,service\n0.5,0.05\n0.5,0.06\n1.25,0.04\n"
    )
    trace = load_arrivals(path)
    # first gap is the first absolute timestamp; zero gaps (simultaneous
    # arrivals) are legal
    np.testing.assert_allclose(trace.interarrival, [0.5, 0.0, 0.75])
    np.testing.assert_allclose(trace.arrival_times, [0.5, 0.5, 1.25])


@pytest.mark.parametrize(
    "content,fragment",
    [
        ("time,svc\n0.1,0.05\n", "expected header"),
        ("timestamp,service\n0.2,0.05\n0.1,0.05\n", "non-decreasing"),
        ("timestamp,service\n", "no arrival records"),
        ("timestamp,service\n0.1,0.05,9\n", "2 columns"),
    ],
)
def test_csv_loader_rejects_malformed_input(tmp_path, content, fragment):
    path = tmp_path / "bad.csv"
    path.write_text(content)
    with pytest.raises(ValueError, match=fragment):
        load_arrivals_csv(path)


def test_jsonl_loader_rejects_missing_fields(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"timestamp": 0.1}\n')
    with pytest.raises(ValueError, match="missing field"):
        load_arrivals_jsonl(path)


def test_unknown_suffix_rejected(tmp_path):
    with pytest.raises(ValueError, match="suffix"):
        load_arrivals(tmp_path / "t.parquet")
    with pytest.raises(ValueError, match="suffix"):
        save_arrivals(_trace([0.1], [0.05]), tmp_path / "t.parquet")


# ----------------------------------------------------------------------
# conservation property
# ----------------------------------------------------------------------

arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=1e-6, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-6, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


@given(records=arrival_lists, suffix=st.sampled_from([".csv", ".jsonl"]))
@settings(max_examples=30, deadline=None)
def test_round_trip_conserves_counts_and_total_work(records, suffix, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("replay")
    gaps = [r[0] for r in records]
    services = [r[1] for r in records]
    times = np.cumsum(np.asarray(gaps, dtype=np.float64))
    original = _trace(times, services)
    path = tmp_path / f"trace{suffix}"
    save_arrivals(original, path)
    loaded = load_arrivals(path)
    # conservation: every arrival survives, with its work, exactly
    assert len(loaded) == len(records)
    assert float(loaded.service.sum()) == float(original.service.sum())
    np.testing.assert_array_equal(loaded.service, original.service)
    np.testing.assert_array_equal(
        loaded.metadata["timestamps"], original.metadata["timestamps"]
    )


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------

def test_generators_are_deterministic_per_seed():
    for build in (diurnal_trace, bursty_trace):
        a = build(np.random.default_rng(5), 500)
        b = build(np.random.default_rng(5), 500)
        np.testing.assert_array_equal(a.interarrival, b.interarrival)
        np.testing.assert_array_equal(a.service, b.service)
        c = build(np.random.default_rng(6), 500)
        assert not np.array_equal(a.interarrival, c.interarrival)


def test_bursty_trace_is_overdispersed_vs_poisson():
    gaps = bursty_trace(np.random.default_rng(0), 4000,
                        burst_ratio=20.0).interarrival
    cv2 = float(gaps.var() / gaps.mean() ** 2)
    assert cv2 > 2.0  # Poisson would be ~1


def test_diurnal_trace_rate_tracks_the_sinusoid():
    period = 240.0
    trace = diurnal_trace(np.random.default_rng(1), 20_000,
                          period=period, peak_to_trough=6.0)
    times = trace.arrival_times
    phase = np.sin(2 * np.pi * times / period)
    # more arrivals land in the high-rate half-cycle
    peak_count = int((phase > 0).sum())
    trough_count = int((phase <= 0).sum())
    assert peak_count > 1.5 * trough_count


@pytest.mark.parametrize("build,kwargs,fragment", [
    (diurnal_trace, dict(peak_to_trough=1.0), "peak_to_trough"),
    (diurnal_trace, dict(period=0.0), "period"),
    (bursty_trace, dict(burst_ratio=1.0), "burst_ratio"),
    (bursty_trace, dict(burst_fraction=1.5), "burst_fraction"),
    (bursty_trace, dict(cycle=-1.0), "cycle"),
])
def test_generator_parameter_validation(build, kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        build(np.random.default_rng(0), 100, **kwargs)


# ----------------------------------------------------------------------
# replay_file: registry + cache-key awareness
# ----------------------------------------------------------------------

def test_file_trace_digest_pins_content(tmp_path):
    path = tmp_path / "t.csv"
    save_arrivals(_trace([0.1, 0.2], [0.05, 0.05]), path)
    params = replay_file_params(path)
    assert params["path"] == str(path)
    assert len(file_trace(path, digest=params["digest"])) == 2
    # editing the file must fail the pinned digest loudly
    save_arrivals(_trace([0.1, 0.3], [0.05, 0.05]), path)
    with pytest.raises(ValueError, match="digest"):
        file_trace(path, digest=params["digest"])


def test_replay_file_workload_tiles_to_request_count(tmp_path):
    path = tmp_path / "t.csv"
    save_arrivals(_trace([0.05, 0.1, 0.2], [0.05, 0.06, 0.04]), path)
    workload = make_workload("replay_file", **replay_file_params(path))
    gaps, services = workload.generate(np.random.default_rng(0), 10)
    assert gaps.shape == (10,) and services.shape == (10,)
    assert (services > 0).all()


def test_replay_file_content_changes_the_cache_key(tmp_path):
    path = tmp_path / "t.csv"
    save_arrivals(_trace([0.1, 0.2], [0.05, 0.05]), path)
    before = config_key(SimulationConfig(
        workload="replay_file", workload_params=replay_file_params(path),
        n_requests=100,
    ))
    save_arrivals(_trace([0.1, 0.2], [0.05, 0.09]), path)
    after = config_key(SimulationConfig(
        workload="replay_file", workload_params=replay_file_params(path),
        n_requests=100,
    ))
    assert before != after  # same path, new content -> cache miss


def test_replay_workloads_run_end_to_end():
    config = SimulationConfig(
        workload="replay_diurnal", load=0.5, n_servers=4,
        n_requests=300, seed=0,
    )
    result = run_simulation(config)
    assert result.n_measured > 0 and result.n_failed == 0


# ----------------------------------------------------------------------
# burst structure matters (fixed seeds, deterministic)
# ----------------------------------------------------------------------

#: sustained bursts (6 s at 1.875x the mean rate over a 20 s cycle) at a
#: 0.4 base load: in-burst utilisation ~0.75 — a regime where random's
#: per-server M/M/1 queues blow up but a load-aware policy can still
#: route around the pile-up
_BURST = {"burst_ratio": 3.0, "burst_fraction": 0.3, "cycle": 20.0}
_P95_RATIO_BOUND = 1.25


def _p95(policy, policy_params, workload, workload_params, seed):
    config = SimulationConfig(
        policy=policy, policy_params=policy_params,
        workload=workload, workload_params=workload_params,
        load=0.4, n_servers=8, n_requests=8_000, seed=seed,
    )
    return run_simulation(config).p95_response_time


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1])
def test_bursts_inflate_random_p95_but_not_broadcast(seed):
    """The satellite's headline behavior: identical burst schedules, and
    only the load-oblivious policy pays for them in the tail."""
    random_ratio = (
        _p95("random", {}, "replay_bursty", _BURST, seed)
        / _p95("random", {}, "poisson_exp", {}, seed)
    )
    broadcast = ("broadcast", {"mean_interval": 0.02})
    broadcast_ratio = (
        _p95(*broadcast, "replay_bursty", _BURST, seed)
        / _p95(*broadcast, "poisson_exp", {}, seed)
    )
    assert random_ratio > _P95_RATIO_BOUND, (
        f"seed {seed}: random should pay for bursts "
        f"(p95 ratio {random_ratio:.3f})"
    )
    assert broadcast_ratio < _P95_RATIO_BOUND, (
        f"seed {seed}: broadcast should absorb bursts "
        f"(p95 ratio {broadcast_ratio:.3f})"
    )
    assert broadcast_ratio < random_ratio
