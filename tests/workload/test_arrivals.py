"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload import (
    Exponential,
    MarkovModulatedPoisson,
    PoissonProcess,
    RenewalProcess,
)


def rng():
    return np.random.default_rng(99)


def test_poisson_rate_validation():
    with pytest.raises(ValueError):
        PoissonProcess(0.0)


def test_poisson_mean_interval():
    process = PoissonProcess(rate=20.0)
    assert process.mean_interval() == pytest.approx(0.05)
    gaps = process.interarrivals(rng(), 100_000)
    assert gaps.mean() == pytest.approx(0.05, rel=0.03)


def test_poisson_interarrival_cv_is_one():
    gaps = PoissonProcess(10.0).interarrivals(rng(), 200_000)
    assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.03)


def test_arrival_times_monotone_nondecreasing():
    times = PoissonProcess(100.0).arrival_times(rng(), 10_000)
    assert (np.diff(times) >= 0).all()
    assert times.shape == (10_000,)


def test_renewal_process_uses_distribution():
    process = RenewalProcess(Exponential(0.2))
    assert process.mean_interval() == pytest.approx(0.2)
    gaps = process.interarrivals(rng(), 50_000)
    assert gaps.mean() == pytest.approx(0.2, rel=0.05)


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MarkovModulatedPoisson((1.0, -1.0), (1.0, 1.0))
    with pytest.raises(ValueError):
        MarkovModulatedPoisson((1.0, 2.0), (0.0, 1.0))


def test_mmpp_mean_rate_weighted():
    process = MarkovModulatedPoisson(rates=(10.0, 100.0), sojourn_means=(3.0, 1.0))
    assert process.mean_rate() == pytest.approx((10 * 3 + 100 * 1) / 4)


def test_mmpp_generates_exact_count_and_positive():
    process = MarkovModulatedPoisson(rates=(50.0, 500.0), sojourn_means=(0.5, 0.5))
    gaps = process.interarrivals(rng(), 20_000)
    assert gaps.shape == (20_000,)
    assert (gaps >= 0).all()


def test_mmpp_long_run_rate():
    process = MarkovModulatedPoisson(rates=(50.0, 500.0), sojourn_means=(1.0, 1.0))
    gaps = process.interarrivals(rng(), 300_000)
    assert 1.0 / gaps.mean() == pytest.approx(process.mean_rate(), rel=0.1)


def test_mmpp_is_burstier_than_poisson():
    """The CV of a 2-phase MMPP with very different rates exceeds 1."""
    process = MarkovModulatedPoisson(rates=(5.0, 500.0), sojourn_means=(1.0, 1.0))
    gaps = process.interarrivals(rng(), 200_000)
    assert gaps.std() / gaps.mean() > 1.2
