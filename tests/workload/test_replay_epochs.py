"""Epoch-normalization semantics for replay traces (live recordings).

A live recording carries wall-clock epoch timestamps (~1.7e9 s). Fed
raw into the loaders, the first interarrival gap would *be* the epoch
and the runner's mean-based load rescale would silently destroy the
trace's shape — so loaders refuse epoch input, ``save_arrivals``
normalizes it to t=0 exactly once, and already-normalized files keep
round-tripping byte-for-byte.
"""

import json

import numpy as np
import pytest

from repro.workload.replay import (
    EPOCH_CUTOFF,
    live_trace,
    load_arrivals,
    save_arrivals,
)

EPOCH = 1.7e9
_REL_TIMES = [0.0, 0.01, 0.025, 0.05]
_SERVICES = [0.001, 0.002, 0.001, 0.003]


def _write_csv(path, times):
    lines = ["timestamp,service"]
    lines += [f"{float(t)!r},{float(s)!r}" for t, s in zip(times, _SERVICES)]
    path.write_text("\n".join(lines) + "\n")


def _write_jsonl(path, times):
    lines = [
        json.dumps({"timestamp": float(t), "service": float(s)})
        for t, s in zip(times, _SERVICES)
    ]
    path.write_text("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# loaders refuse raw epoch / mixed-epoch input
# ----------------------------------------------------------------------
@pytest.mark.parametrize("writer,suffix", [(_write_csv, "csv"), (_write_jsonl, "jsonl")])
def test_loaders_refuse_raw_epoch_timestamps(tmp_path, writer, suffix):
    path = tmp_path / f"raw.{suffix}"
    writer(path, [EPOCH + t for t in _REL_TIMES])
    with pytest.raises(ValueError, match="save_arrivals"):
        load_arrivals(path)


@pytest.mark.parametrize("writer,suffix", [(_write_csv, "csv"), (_write_jsonl, "jsonl")])
def test_loaders_refuse_mixed_epoch_timestamps(tmp_path, writer, suffix):
    path = tmp_path / f"mixed.{suffix}"
    writer(path, [0.0, 0.01, EPOCH + 0.025, EPOCH + 0.05])
    with pytest.raises(ValueError, match="mixed-epoch"):
        load_arrivals(path)


def test_cutoff_boundary_is_exact():
    # Just below the cutoff loads fine; the cutoff itself is epoch.
    trace = live_trace([EPOCH_CUTOFF - 1.0, EPOCH_CUTOFF - 0.5], [0.001, 0.001])
    assert trace.interarrival[0] == EPOCH_CUTOFF - 1.0  # kept trace-relative
    epoch = live_trace([EPOCH_CUTOFF, EPOCH_CUTOFF + 0.5], [0.001, 0.001])
    assert epoch.interarrival[0] == 0.0  # normalized


# ----------------------------------------------------------------------
# live_trace: in-memory live recordings
# ----------------------------------------------------------------------
def test_live_trace_normalizes_gaps_but_keeps_raw_epochs():
    times = np.asarray(_REL_TIMES) + EPOCH
    trace = live_trace(times, _SERVICES, source="drive-run")
    # float64 resolution at epoch magnitude is ~2e-7 s; the subtraction
    # recovers relative times to that granularity.
    np.testing.assert_allclose(np.cumsum(trace.interarrival), _REL_TIMES,
                               atol=1e-6)
    np.testing.assert_array_equal(trace.metadata["timestamps"], times)


def test_live_trace_validation():
    with pytest.raises(ValueError, match="non-decreasing"):
        live_trace([EPOCH + 1.0, EPOCH], [0.001, 0.001])
    with pytest.raises(ValueError, match="equal-length"):
        live_trace([EPOCH], [0.001, 0.002])
    with pytest.raises(ValueError, match="equal-length"):
        live_trace([], [])
    with pytest.raises(ValueError, match="mixed-epoch"):
        live_trace([0.0, EPOCH], [0.001, 0.001])
    with pytest.raises(ValueError, match="negative"):
        live_trace([-1.0, 0.0], [0.001, 0.001])


# ----------------------------------------------------------------------
# save path: normalize exactly once, then byte-exact round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("suffix", ["csv", "jsonl"])
def test_epoch_trace_saves_normalized_then_roundtrips_byte_exact(tmp_path, suffix):
    times = np.asarray(_REL_TIMES) + EPOCH
    trace = live_trace(times, _SERVICES, source="drive-run")
    first = tmp_path / f"first.{suffix}"
    save_arrivals(trace, first)
    loaded = load_arrivals(first)
    np.testing.assert_allclose(loaded.arrival_times, _REL_TIMES, atol=1e-6)
    # Loaded (already-normalized) trace re-saves byte-identically.
    second = tmp_path / f"second.{suffix}"
    save_arrivals(loaded, second)
    assert first.read_bytes() == second.read_bytes()


@pytest.mark.parametrize("suffix", ["csv", "jsonl"])
def test_relative_trace_roundtrip_unchanged_by_the_epoch_guard(tmp_path, suffix):
    # Pre-existing (trace-relative) files are untouched by the new
    # normalization: load -> save reproduces repr-exact values.
    path = tmp_path / f"rel.{suffix}"
    (_write_csv if suffix == "csv" else _write_jsonl)(path, _REL_TIMES)
    loaded = load_arrivals(path)
    out = tmp_path / f"out.{suffix}"
    save_arrivals(loaded, out)
    assert path.read_bytes() == out.read_bytes()
