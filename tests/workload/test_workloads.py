"""Unit tests for the named-workload registry."""

import numpy as np
import pytest

from repro.workload import Workload, available_workloads, make_workload
from repro.workload.workloads import POISSON_EXP_MEAN_SERVICE


def rng():
    return np.random.default_rng(11)


def test_paper_workloads_registered():
    names = available_workloads()
    for required in ("poisson_exp", "fine_grain", "medium_grain"):
        assert required in names


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        make_workload("nope")


def test_poisson_exp_default_mean_service_is_50ms():
    workload = make_workload("poisson_exp")
    assert workload.mean_service_time() == pytest.approx(50e-3)
    assert POISSON_EXP_MEAN_SERVICE == pytest.approx(50e-3)


def test_poisson_exp_override_mean_service():
    workload = make_workload("poisson_exp", mean_service=5e-3)
    assert workload.mean_service_time() == pytest.approx(5e-3)


@pytest.mark.parametrize("name", ["poisson_exp", "fine_grain", "medium_grain"])
def test_generate_shapes_and_positivity(name):
    workload = make_workload(name)
    gaps, service = workload.generate(rng(), 5000)
    assert gaps.shape == service.shape == (5000,)
    assert (gaps >= 0).all()
    assert (service > 0).all()


def test_generate_rejects_zero():
    with pytest.raises(ValueError):
        make_workload("poisson_exp").generate(rng(), 0)


def test_trace_workload_mean_service_estimate():
    workload = make_workload("fine_grain")
    assert workload.mean_service_time(rng()) == pytest.approx(22.2e-3, rel=0.05)


def test_workload_requires_components():
    with pytest.raises(ValueError):
        Workload("bad")


def test_extension_workloads_generate():
    for name in ("poisson_deterministic", "poisson_lognormal", "poisson_weibull",
                 "poisson_pareto", "lognormal_renewal"):
        gaps, service = make_workload(name).generate(rng(), 1000)
        assert gaps.shape == (1000,)
        assert (service > 0).all()


def test_deterministic_workload_constant_service():
    _, service = make_workload("poisson_deterministic", mean_service=0.01).generate(rng(), 100)
    assert (service == 0.01).all()
