"""Unit tests for distributions and moment fitting."""

import math

import numpy as np
import pytest

from repro.workload import (
    Deterministic,
    Exponential,
    Gamma,
    Lognormal,
    Pareto,
    Uniform,
    Weibull,
    lognormal_from_moments,
    pareto_from_moments,
    weibull_from_moments,
)

RNG = lambda: np.random.default_rng(1234)  # noqa: E731

ALL_DISTS = [
    Deterministic(2.0),
    Exponential(0.05),
    Uniform(1.0, 3.0),
    Lognormal(0.0, 0.5),
    Gamma(2.0, 1.5),
    Weibull(1.5, 2.0),
    Pareto(3.5, 1.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_sample_mean_matches_analytic(dist):
    samples = dist.sample(RNG(), 200_000)
    assert samples.mean() == pytest.approx(dist.mean(), rel=0.03)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_sample_std_matches_analytic(dist):
    samples = dist.sample(RNG(), 200_000)
    assert samples.std(ddof=1) == pytest.approx(dist.std(), rel=0.08, abs=1e-12)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_samples_positive(dist):
    samples = dist.sample(RNG(), 10_000)
    assert (samples > 0).all()


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_scalar_sample(dist):
    value = dist.sample(RNG())
    assert isinstance(value, float) and value > 0


def test_deterministic_is_constant():
    samples = Deterministic(3.0).sample(RNG(), 100)
    assert (samples == 3.0).all()


def test_scaled_distribution():
    scaled = Exponential(1.0).scaled(0.05)
    assert scaled.mean() == pytest.approx(0.05)
    assert scaled.std() == pytest.approx(0.05)
    samples = scaled.sample(RNG(), 100_000)
    assert samples.mean() == pytest.approx(0.05, rel=0.03)


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ValueError):
        Exponential(1.0).scaled(0.0)


@pytest.mark.parametrize(
    "mean,std", [(0.0222, 0.001), (0.0289, 0.0629), (1.0, 1.0), (5.0, 0.1)]
)
def test_lognormal_from_moments_exact(mean, std):
    dist = lognormal_from_moments(mean, std)
    assert dist.mean() == pytest.approx(mean, rel=1e-12)
    assert dist.std() == pytest.approx(std, rel=1e-9)


def test_lognormal_from_moments_zero_std():
    dist = lognormal_from_moments(2.0, 0.0)
    assert dist.sigma == 0.0
    assert dist.mean() == pytest.approx(2.0)


@pytest.mark.parametrize("mean,std", [(1.0, 0.5), (0.05, 0.05), (2.0, 3.0)])
def test_weibull_from_moments_exact(mean, std):
    dist = weibull_from_moments(mean, std)
    assert dist.mean() == pytest.approx(mean, rel=1e-8)
    assert dist.std() == pytest.approx(std, rel=1e-6)


@pytest.mark.parametrize("mean,std", [(1.0, 0.5), (0.05, 0.1), (2.0, 4.0)])
def test_pareto_from_moments_exact(mean, std):
    dist = pareto_from_moments(mean, std)
    assert dist.alpha > 2.0
    assert dist.mean() == pytest.approx(mean, rel=1e-12)
    assert dist.std() == pytest.approx(std, rel=1e-9)


def test_pareto_infinite_moments():
    assert math.isinf(Pareto(0.9, 1.0).mean())
    assert math.isinf(Pareto(1.5, 1.0).std())


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Deterministic(0.0),
        lambda: Exponential(-1.0),
        lambda: Uniform(2.0, 1.0),
        lambda: Gamma(0.0, 1.0),
        lambda: Weibull(1.0, -1.0),
        lambda: Pareto(-1.0, 1.0),
        lambda: lognormal_from_moments(-1.0, 1.0),
        lambda: weibull_from_moments(1.0, 0.0),
        lambda: pareto_from_moments(0.0, 1.0),
    ],
)
def test_invalid_parameters_rejected(factory):
    with pytest.raises(ValueError):
        factory()


def test_cv():
    assert Exponential(5.0).cv() == pytest.approx(1.0)
    assert Deterministic(5.0).cv() == 0.0
