"""Unit tests for empirical distributions."""

import numpy as np
import pytest

from repro.workload import (
    EmpiricalDistribution,
    Trace,
    empirical_workload_from_trace,
)


def data(n=5000, seed=0):
    return np.random.default_rng(seed).lognormal(0.0, 1.0, n)


def rng():
    return np.random.default_rng(42)


def test_validation():
    with pytest.raises(ValueError):
        EmpiricalDistribution(np.array([1.0]))
    with pytest.raises(ValueError):
        EmpiricalDistribution(np.array([1.0, -1.0]))


def test_bootstrap_draws_only_observed_values():
    observed = np.array([1.0, 2.0, 3.0])
    dist = EmpiricalDistribution(observed)
    samples = dist.sample(rng(), 1000)
    assert set(np.unique(samples)) <= set(observed)


def test_moments_match_data():
    values = data()
    dist = EmpiricalDistribution(values)
    assert dist.mean() == pytest.approx(values.mean())
    assert dist.std() == pytest.approx(values.std(ddof=1))
    assert dist.n_observations == values.size


def test_bootstrap_sample_mean_converges():
    dist = EmpiricalDistribution(data())
    samples = dist.sample(rng(), 100_000)
    assert samples.mean() == pytest.approx(dist.mean(), rel=0.03)


def test_smoothed_interpolates_between_observations():
    observed = np.array([1.0, 2.0])
    dist = EmpiricalDistribution(observed, smoothed=True)
    samples = dist.sample(rng(), 5000)
    assert ((samples >= 1.0) & (samples <= 2.0)).all()
    interior = (samples > 1.01) & (samples < 1.99)
    assert interior.mean() > 0.9


def test_scalar_sample():
    value = EmpiricalDistribution(data(100)).sample(rng())
    assert isinstance(value, float) and value > 0


def test_quantile():
    dist = EmpiricalDistribution(np.arange(1.0, 101.0))
    assert dist.quantile(0.0) == 1.0
    assert dist.quantile(1.0) == 100.0
    assert 45.0 < dist.quantile(0.5) < 56.0
    with pytest.raises(ValueError):
        dist.quantile(1.5)


def test_workload_from_trace_preserves_marginals():
    source = Trace(
        "observed",
        interarrival=np.random.default_rng(1).exponential(0.1, 4000),
        service=np.random.default_rng(2).exponential(0.02, 4000),
    )
    workload = empirical_workload_from_trace(source)
    gaps, services = workload.generate(rng(), 50_000)
    assert gaps.mean() == pytest.approx(source.interarrival.mean(), rel=0.05)
    assert services.mean() == pytest.approx(source.service.mean(), rel=0.05)
    assert "resampled" in workload.name


def test_repr():
    assert "bootstrap" in repr(EmpiricalDistribution(data(10)))
    assert "smoothed" in repr(EmpiricalDistribution(data(10), smoothed=True))
