"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.workload import Trace, load_trace, save_trace


def make_trace(n=100, name="t"):
    rng = np.random.default_rng(5)
    return Trace(
        name=name,
        interarrival=rng.exponential(0.1, n),
        service=rng.exponential(0.05, n),
    )


def test_validation_length_mismatch():
    with pytest.raises(ValueError):
        Trace("x", np.ones(3), np.ones(4))


def test_validation_empty():
    with pytest.raises(ValueError):
        Trace("x", np.array([]), np.array([]))


def test_validation_negative_gap():
    with pytest.raises(ValueError):
        Trace("x", np.array([0.1, -0.1]), np.array([1.0, 1.0]))


def test_validation_nonpositive_service():
    with pytest.raises(ValueError):
        Trace("x", np.array([0.1, 0.1]), np.array([1.0, 0.0]))


def test_validation_requires_1d():
    with pytest.raises(ValueError):
        Trace("x", np.ones((2, 2)), np.ones((2, 2)))


def test_len_and_duration():
    trace = Trace("x", np.array([1.0, 2.0, 3.0]), np.array([0.1, 0.1, 0.1]))
    assert len(trace) == 3
    assert trace.duration == 6.0
    assert trace.arrival_times.tolist() == [1.0, 3.0, 6.0]


def test_stats_moments():
    trace = make_trace(50_000)
    stats = trace.stats()
    assert stats.n_accesses == 50_000
    assert stats.arrival_interval_mean == pytest.approx(0.1, rel=0.05)
    assert stats.service_time_mean == pytest.approx(0.05, rel=0.05)


def test_stats_row_renders():
    row = make_trace(100, name="Fine").stats().row("Fine")
    assert "Fine" in row and "ms" in row


def test_offered_load():
    trace = Trace("x", np.full(10, 0.1), np.full(10, 0.05))
    # one server: rho = 0.05/0.1 = 0.5 ; 2 servers: 0.25
    assert trace.offered_load(1) == pytest.approx(0.5)
    assert trace.offered_load(2) == pytest.approx(0.25)


def test_scaled_to_load_hits_target():
    trace = make_trace(10_000)
    scaled = trace.scaled_to_load(n_servers=16, load=0.9)
    assert scaled.offered_load(16) == pytest.approx(0.9, rel=1e-9)
    # Service times untouched.
    assert np.array_equal(scaled.service, trace.service)
    assert scaled.metadata["scaled_to_load"] == 0.9


def test_scaled_to_load_validation():
    trace = make_trace(10)
    with pytest.raises(ValueError):
        trace.scaled_to_load(16, 0.0)
    with pytest.raises(ValueError):
        trace.scaled_to_load(0, 0.5)


def test_head():
    trace = make_trace(100)
    head = trace.head(10)
    assert len(head) == 10
    assert np.array_equal(head.service, trace.service[:10])
    with pytest.raises(ValueError):
        trace.head(0)


def test_head_clamps_to_length():
    trace = make_trace(10)
    assert len(trace.head(100)) == 10


def test_tiled_extends_with_shuffle():
    trace = make_trace(100)
    rng = np.random.default_rng(7)
    tiled = trace.tiled(350, rng=rng)
    assert len(tiled) == 350
    # Total service mass per tile is preserved under shuffling.
    assert tiled.service[:100].sum() == pytest.approx(trace.service.sum())
    assert tiled.service[100:200].sum() == pytest.approx(trace.service.sum())
    # Shuffled tile differs in order.
    assert not np.array_equal(tiled.service[100:200], trace.service)


def test_tiled_without_rng_repeats_exactly():
    trace = make_trace(50)
    tiled = trace.tiled(120)
    assert np.array_equal(tiled.service[50:100], trace.service)


def test_tiled_noop_when_short():
    trace = make_trace(100)
    assert len(trace.tiled(30)) == 30


def test_save_and_load_roundtrip(tmp_path):
    trace = make_trace(256, name="roundtrip")
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == "roundtrip"
    assert np.array_equal(loaded.interarrival, trace.interarrival)
    assert np.array_equal(loaded.service, trace.service)
