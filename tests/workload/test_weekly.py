"""Tests for weekly trace synthesis and peak-portion extraction."""

import numpy as np
import pytest

from repro.workload import (
    DiurnalProfile,
    FINE_GRAIN_SPEC,
    extract_peak_portion,
    synthesize_weekly_trace,
)

SCALE = 0.02  # ~70s "hours" keep tests fast


def rng():
    return np.random.default_rng(8)


def weekly(scale=SCALE, profile=None):
    return synthesize_weekly_trace(FINE_GRAIN_SPEC, rng(), profile=profile, scale=scale)


def test_profile_validation_and_shape():
    profile = DiurnalProfile()
    with pytest.raises(ValueError):
        profile.multiplier(168)
    multipliers = profile.multipliers()
    assert multipliers.shape == (168,)
    assert multipliers.max() == 1.0
    # Weekday peak hour is the global max; weekend peak is discounted.
    assert profile.multiplier(13) == 1.0
    assert profile.multiplier(5 * 24 + 13) == pytest.approx(0.6)
    assert profile.multiplier(3) == pytest.approx(0.15)


def test_scale_validation():
    with pytest.raises(ValueError):
        synthesize_weekly_trace(FINE_GRAIN_SPEC, rng(), scale=0.0)


def test_weekly_trace_spans_the_week():
    trace = weekly()
    week_seconds = 168 * 3600 * SCALE
    assert trace.duration <= week_seconds
    assert trace.duration > 0.9 * week_seconds


def test_peak_hours_are_busiest():
    trace = weekly()
    hour = 3600 * SCALE
    bins = np.floor(trace.arrival_times / hour).astype(int)
    counts = np.bincount(bins, minlength=168)
    hour_of_day = np.arange(len(counts)) % 24
    day = np.arange(len(counts)) // 24
    peak_mask = np.isin(hour_of_day, (13, 14, 15)) & (day < 5)
    night_mask = hour_of_day < 6
    assert counts[peak_mask].mean() > 2.5 * counts[night_mask].mean()


def test_peak_rate_matches_spec():
    trace = weekly()
    hour = 3600 * SCALE
    bins = np.floor(trace.arrival_times / hour).astype(int)
    counts = np.bincount(bins, minlength=168)
    peak_mean_interval = hour / counts.max()
    assert peak_mean_interval == pytest.approx(
        FINE_GRAIN_SPEC.arrival_interval_mean, rel=0.25
    )


def test_extract_peak_portion_recovers_peak_rate():
    trace = weekly()
    peak = extract_peak_portion(trace)
    assert len(peak) < len(trace)
    # Peak portion mean interval ~ the spec's (peak-hour) interval.
    assert peak.interarrival.mean() == pytest.approx(
        FINE_GRAIN_SPEC.arrival_interval_mean, rel=0.3
    )
    # Far denser than the whole-week average.
    assert peak.interarrival.mean() < 0.7 * trace.interarrival.mean()
    assert peak.metadata["peak_portion"] is True
    assert peak.metadata["bins_kept"] <= peak.metadata["bins_total"]


def test_peak_portion_keeps_weekday_peak_bins_only():
    trace = weekly()
    peak = extract_peak_portion(trace, rate_threshold=0.85)
    # 5 weekdays x 3 peak hours = 15 candidate bins; weekend/daytime
    # bins run at <= 0.6 of peak so they must be excluded.
    assert peak.metadata["bins_kept"] <= 16


def test_peak_portion_service_times_preserved():
    trace = weekly()
    peak = extract_peak_portion(trace)
    assert peak.service.mean() == pytest.approx(trace.service.mean(), rel=0.1)


def test_extract_validation():
    trace = weekly()
    with pytest.raises(ValueError):
        extract_peak_portion(trace, rate_threshold=0.0)
    with pytest.raises(ValueError):
        extract_peak_portion(trace, window=0.0)


def test_gaps_nonnegative_after_splicing():
    peak = extract_peak_portion(weekly())
    assert (peak.interarrival >= 0).all()
