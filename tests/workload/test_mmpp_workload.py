"""Tests for the MMPP registry workload."""

import numpy as np
import pytest

from repro.workload import make_workload


def test_mmpp_exp_registered_and_generates():
    workload = make_workload("mmpp_exp", burst_ratio=5.0)
    gaps, services = workload.generate(np.random.default_rng(0), 20_000)
    assert gaps.shape == services.shape == (20_000,)
    assert (gaps >= 0).all() and (services > 0).all()


def test_mmpp_mean_rate_matches_mean_service():
    workload = make_workload("mmpp_exp", mean_service=0.01, burst_ratio=4.0)
    gaps, _ = workload.generate(np.random.default_rng(1), 200_000)
    assert gaps.mean() == pytest.approx(0.01, rel=0.1)


def test_mmpp_burstier_than_poisson():
    mmpp_gaps, _ = make_workload("mmpp_exp", burst_ratio=8.0).generate(
        np.random.default_rng(2), 150_000
    )
    poisson_gaps, _ = make_workload("poisson_exp").generate(
        np.random.default_rng(2), 150_000
    )
    assert (mmpp_gaps.std() / mmpp_gaps.mean()) > 1.1 * (
        poisson_gaps.std() / poisson_gaps.mean()
    )


def test_burst_ratio_validation():
    with pytest.raises(ValueError):
        make_workload("mmpp_exp", burst_ratio=1.0)
