"""Unit tests for SimulationConfig."""

import pytest

from repro.experiments import SimulationConfig


def test_defaults_match_paper_setup():
    config = SimulationConfig()
    assert config.n_servers == 16
    assert config.n_clients == 6
    assert config.model == "simulation"


def test_validation():
    with pytest.raises(ValueError):
        SimulationConfig(model="hardware")
    with pytest.raises(ValueError):
        SimulationConfig(load=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(n_requests=5)
    with pytest.raises(ValueError):
        SimulationConfig(warmup_fraction=1.0)


def test_with_updates_returns_new_frozen_copy():
    config = SimulationConfig(load=0.5)
    updated = config.with_updates(load=0.9, policy="random")
    assert updated.load == 0.9 and updated.policy == "random"
    assert config.load == 0.5
    with pytest.raises(Exception):
        config.load = 0.7  # type: ignore[misc]


def test_describe():
    config = SimulationConfig(policy="polling", policy_params={"poll_size": 2},
                              workload="fine_grain", load=0.9)
    text = config.describe()
    assert "polling" in text and "fine_grain" in text and "90%" in text


def test_label_overrides_describe():
    config = SimulationConfig(label="my run")
    assert config.describe() == "my run"
