"""Tests for the experiment runner and parallel sweeps."""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, parallel_sweep, run_simulation
from repro.experiments.runner import full_load_rho_for, normalized_to_baseline


def small(policy="random", **kwargs):
    defaults = dict(
        policy=policy, workload="poisson_exp", load=0.7,
        n_servers=4, n_requests=800, seed=2,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_run_simulation_summary_fields():
    result = run_simulation(small())
    assert result.n_measured == 720  # 10% warmup dropped
    assert result.mean_response_time > 0.05  # at least the mean service time
    assert result.nominal_rho == 0.7
    assert result.events_executed > 0
    assert result.message_counts["request"] == 800
    assert sum(result.server_counts) == 720


def test_result_ms_properties():
    result = run_simulation(small())
    assert result.mean_response_time_ms == pytest.approx(
        result.mean_response_time * 1e3
    )


def test_polling_counters_exported():
    result = run_simulation(small(policy="polling", policy_params={"poll_size": 2}))
    assert result.policy_counters["polls_sent"] == 1600


def test_simulation_model_has_no_stolen_cpu():
    result = run_simulation(small(policy="polling", policy_params={"poll_size": 2}))
    assert result.stolen_cpu == 0.0


def test_prototype_model_steals_cpu_and_calibrates():
    config = small(
        policy="polling", policy_params={"poll_size": 2},
        model="prototype", n_requests=600,
    )
    result = run_simulation(config)
    assert result.stolen_cpu > 0.0
    # load is interpreted against the calibrated full-load point
    assert result.nominal_rho != config.load
    assert result.nominal_rho == pytest.approx(
        config.load * full_load_rho_for(config), rel=1e-9
    )


def test_full_load_rho_cached():
    config = small(model="prototype")
    first = full_load_rho_for(config)
    second = full_load_rho_for(config)
    assert first == second


def test_explicit_full_load_rho_short_circuits():
    config = small(model="prototype", full_load_rho=0.5, load=0.8)
    result = run_simulation(config)
    assert result.nominal_rho == pytest.approx(0.4)


def test_serial_sweep_matches_individual_runs():
    configs = [small(seed=s) for s in (1, 2, 3)]
    swept = parallel_sweep(configs, parallel=False)
    individual = [run_simulation(c) for c in configs]
    for a, b in zip(swept, individual):
        assert a.mean_response_time == b.mean_response_time


def test_parallel_sweep_matches_serial():
    configs = [small(seed=s) for s in (1, 2, 3, 4)]
    serial = parallel_sweep(configs, parallel=False)
    parallel = parallel_sweep(configs, parallel=True, max_workers=2)
    for a, b in zip(serial, parallel):
        assert a.mean_response_time == b.mean_response_time
        assert a.config.seed == b.config.seed


def test_empty_sweep():
    assert parallel_sweep([]) == []


def test_normalized_to_baseline():
    results = parallel_sweep([small(seed=1), small(seed=1)], parallel=False)
    normalized = normalized_to_baseline(results, results[0])
    assert normalized[0] == pytest.approx(1.0)


def test_workload_scaled_to_requested_load():
    """The generated stream's offered load matches the config."""
    from repro.experiments.runner import build_cluster

    cluster, rho = build_cluster(small(load=0.65))
    assert rho == 0.65
    gaps = np.diff(np.concatenate([[0.0], cluster._arrival_times]))
    mean_service = cluster._service_times.mean()
    offered = mean_service / (gaps.mean() * cluster.n_servers)
    assert offered == pytest.approx(0.65, rel=1e-9)
