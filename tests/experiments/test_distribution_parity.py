"""Tier-2/tier-3 validation harness tests (DESIGN.md §13).

The full suites run from the CLI (``repro fastparity`` / the scale
bench); these tests exercise the harness itself on small cheap cells so
the comparison machinery — KS on response times, occupancy distance,
mean agreement, mean-field cross-check — is covered by tier-1 pytest.
"""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.parity import (
    DistributionParityCell,
    DistributionParityReport,
    MeanFieldCheckReport,
    distribution_parity,
    fast_distribution,
    fastpath_suite,
    heap_distribution,
    meanfield_check,
    meanfield_suite,
)


def _small_cells():
    base = SimulationConfig(
        workload="poisson_exp",
        n_servers=8,
        n_requests=2_500,
        seed=0,
        load=0.7,
    )
    return [
        base.with_updates(policy="random"),
        base.with_updates(policy="polling", policy_params={"poll_size": 2}),
    ]


def test_distribution_parity_on_small_cells():
    report = distribution_parity(_small_cells())
    assert report.ok, report.render()
    assert len(report.cells) == 2
    # Random replays the heap engine's arithmetic exactly, so its cell
    # must be pinned at zero distance, not merely under threshold.
    random_cell = report.cells[0]
    assert random_cell.config.policy == "random"
    assert random_cell.ks_response == 0.0
    assert random_cell.occupancy_distance == pytest.approx(0.0, abs=1e-12)


def test_heap_and_fast_distributions_are_comparable_objects():
    config = _small_cells()[0]
    heap_responses, heap_occupancy = heap_distribution(config)
    fast_responses, fast_occupancy = fast_distribution(config)
    assert heap_responses.size == fast_responses.size
    assert heap_occupancy.sum() == pytest.approx(1.0)
    assert fast_occupancy.sum() == pytest.approx(1.0)
    assert np.all(heap_occupancy >= 0) and np.all(fast_occupancy >= 0)


def test_report_flags_failures():
    cell = DistributionParityCell(
        config=_small_cells()[0],
        ks_response=0.5,
        occupancy_distance=0.0,
        mean_rel_error=0.0,
        n_samples=100,
    )
    report = DistributionParityReport(
        cells=[cell], ks_threshold=0.08, occupancy_threshold=0.08, mean_tolerance=0.05
    )
    assert not report.ok
    assert report.failures() == [cell]
    assert "FAIL" in report.render()


def test_fastpath_suite_covers_every_policy_at_two_loads():
    suite = fastpath_suite()
    assert {c.policy for c in suite} == {"random", "polling", "broadcast", "stale_jsq"}
    assert {c.load for c in suite} == {0.5, 0.9}


def test_meanfield_check_random_small_n():
    # Random is d=1: every server is an independent M/M/1, so the
    # mean-field prediction is exact at any N — a cheap cell covers the
    # tier-3 plumbing without the 1000-server suite.
    config = meanfield_suite(n_servers=64, n_requests=60_000)[0]
    assert config.policy == "random"
    report = meanfield_check([config])
    assert isinstance(report, MeanFieldCheckReport)
    assert report.ok, report.render()
    assert "mean-field check" in report.render()


def test_meanfield_suite_configs_are_fast_engine():
    for config in meanfield_suite():
        assert config.engine == "fast"
        assert config.warmup_fraction == 0.25
