"""Tests for the warm-pool SweepExecutor."""

from dataclasses import fields

import pytest

from repro.experiments import (
    ResultCache,
    SimulationConfig,
    SweepExecutor,
    parallel_sweep,
)
from repro.experiments.runner import SimulationResult, auto_chunksize


def small(**kwargs):
    defaults = dict(
        policy="random", workload="poisson_exp", load=0.7,
        n_servers=2, n_requests=300, seed=9,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


#: every result field that must match bit-for-bit (wall_seconds is wall
#: clock, config carries the engine tag)
_VALUE_FIELDS = [f.name for f in fields(SimulationResult) if f.name != "wall_seconds"]


def assert_same_values(a, b):
    for name in _VALUE_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert left == right or (left != left and right != right), name


# ----------------------------------------------------------------------
# chunksize
# ----------------------------------------------------------------------

def test_auto_chunksize_floor_is_one():
    assert auto_chunksize(1, max_workers=8) == 1
    assert auto_chunksize(0, max_workers=8) == 1


def test_auto_chunksize_gives_each_worker_four_chunks():
    assert auto_chunksize(320, max_workers=10) == 8
    assert auto_chunksize(33, max_workers=4) == 2


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------

def test_executor_matches_parallel_sweep():
    configs = [small(seed=s) for s in range(4)]
    expected = parallel_sweep(configs, parallel=False)
    with SweepExecutor(max_workers=2) as executor:
        got = executor.sweep(configs)
    for a, b in zip(expected, got):
        assert_same_values(a, b)


def test_pool_stays_warm_across_sweeps():
    configs = [small(seed=s) for s in range(3)]
    with SweepExecutor(max_workers=2) as executor:
        assert not executor.warm  # lazy: no pool until the first sweep
        first = executor.sweep(configs)
        assert executor.warm
        pool = executor._pool
        second = executor.sweep(configs)
        assert executor._pool is pool  # same processes, no respawn
    for a, b in zip(first, second):
        assert_same_values(a, b)
    assert executor.stats.sweeps == 2
    assert executor.stats.configs_run == 6


def test_single_config_runs_inline():
    with SweepExecutor() as executor:
        [result] = executor.sweep([small()])
        assert not executor.warm  # one config never pays pool spawn
    assert result.config.seed == 9


def test_progress_streams_in_order():
    configs = [small(seed=s) for s in range(5)]
    seen = []
    with SweepExecutor(max_workers=2) as executor:
        executor.sweep(
            configs, progress=lambda done, total, r: seen.append((done, total))
        )
    assert seen == [(i + 1, 5) for i in range(5)]


def test_executor_uses_cache(tmp_path):
    cache = ResultCache(tmp_path)
    configs = [small(seed=s) for s in range(3)]
    with SweepExecutor(max_workers=2, cache=cache) as executor:
        executor.sweep(configs)
        executor.sweep(configs)
        assert executor.stats.cache_hits == 3
        assert executor.stats.configs_run == 3
    assert cache.writes == 3


def test_engine_override_applies():
    with SweepExecutor(engine="calendar") as executor:
        [result] = executor.sweep([small()])
    assert result.config.engine == "calendar"


def test_executor_reusable_after_close():
    executor = SweepExecutor(max_workers=2)
    configs = [small(seed=s) for s in range(2)]
    executor.sweep(configs)
    executor.close()
    assert not executor.warm
    results = executor.sweep(configs)  # re-spawns transparently
    executor.close()
    assert len(results) == 2


def test_worker_preseeding_snapshot():
    """The pool initializer receives the parent's calibration snapshot."""
    from repro.experiments import runner
    from repro.experiments.executor import _seed_worker

    before = dict(runner._CALIBRATION_CACHE)
    try:
        _seed_worker({("probe",): 0.5})
        assert runner._CALIBRATION_CACHE[("probe",)] == 0.5
    finally:
        runner._CALIBRATION_CACHE.clear()
        runner._CALIBRATION_CACHE.update(before)
