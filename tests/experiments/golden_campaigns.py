"""Shared grid definitions for the golden-equivalence suite.

The scenario engine (:mod:`repro.experiments.scenario`) replaced the
bespoke grid/executor code inside the chaos, resilience, and overload
campaigns. The refactor is only admissible because it is *mechanically
safe*: at fixed seeds the scenario-composed campaigns must reproduce
the legacy outputs bit-for-bit. The fixtures under
``tests/experiments/golden/`` pin those legacy outputs: they were
generated at commit ``ec7e9e5`` (the last pre-refactor tree) by running
the original campaign modules through ``regen_golden_fixtures.py``.

``tests/experiments/test_scenario_golden.py`` replays the same grids
through the current (scenario-composed) code and asserts every
``SimulationResult`` field (minus wall-clock noise) and every rendered
report byte matches — on both exact engines.

Regenerating the fixtures with ``python tests/experiments/
regen_golden_fixtures.py`` uses the *current* code, so only do that for
an intentional re-baseline (and say so in the commit message).
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"

#: the seeds the golden suite pins (per ISSUE 7: 0/1/2)
GOLDEN_SEEDS = (0, 1, 2)

#: small-but-representative grid sizes: every code path (chaos spec
#: scaling, reliability axis, overload axis, report assembly) fires,
#: while the full suite stays a few seconds of simulation
_N_SERVERS = 8
_N_REQUESTS = 400


def run_chaos(seed: int, engine=None):
    """The legacy single-mode chaos grid: 3 policies x intensities 0/1.

    The policy triple is pinned explicitly (not ``DEFAULT_POLICIES``):
    the fixtures were generated when the default grid was exactly these
    three, and the default has since grown jiq/least-connections
    columns. The golden contract is about the *legacy* grid.
    """
    from repro.experiments.chaos import chaos_campaign

    return chaos_campaign(
        policies=(
            ("random", "random", {}),
            ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
            ("broadcast-50ms", "broadcast", {"mean_interval": 0.05}),
        ),
        intensities=(0.0, 1.0),
        n_servers=_N_SERVERS,
        n_requests=_N_REQUESTS,
        seed=seed,
        parallel=False,
        engine=engine,
    )


def run_resilience(seed: int, engine=None):
    """The naive-vs-hardened grid: 2 modes x 2 policies x intensities 0/1."""
    from repro.experiments.chaos import NAIVE_VS_HARDENED, chaos_campaign

    return chaos_campaign(
        policies=(
            ("random", "random", {}),
            ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
        ),
        intensities=(0.0, 1.0),
        n_servers=_N_SERVERS,
        n_requests=_N_REQUESTS,
        seed=seed,
        reliability_modes=NAIVE_VS_HARDENED,
        parallel=False,
        engine=engine,
    )


def run_overload(seed: int, engine=None):
    """The static-vs-adaptive grid: 2 modes x 2 policies x loads 0.8/2.0."""
    from repro.experiments.overload import overload_campaign

    return overload_campaign(
        policies=(
            ("random", "random", {}),
            ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
        ),
        offered_loads=(0.8, 2.0),
        n_servers=_N_SERVERS,
        n_requests=_N_REQUESTS,
        seed=seed,
        parallel=False,
        engine=engine,
    )


CAMPAIGNS = {
    "chaos": run_chaos,
    "resilience": run_resilience,
    "overload": run_overload,
}


def fixture_paths(name: str, seed: int) -> tuple[Path, Path]:
    """(results archive, rendered report) fixture paths for a campaign."""
    base = GOLDEN_DIR / f"{name}_seed{seed}"
    return base.with_suffix(".json"), base.with_suffix(".txt")
