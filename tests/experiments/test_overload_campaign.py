"""Tests for the overload campaign driver and its config plumbing."""

import pytest

from repro.cluster import OverloadPolicy
from repro.experiments import SimulationConfig, load_results
from repro.experiments.cache import ResultCache
from repro.experiments.overload import (
    DEFAULT_OFFERED_LOADS,
    STATIC_VS_ADAPTIVE,
    overload_campaign,
    overload_cluster_params,
    overload_control_params,
)
from repro.experiments.config import _OVERLOAD_PARAM_KEYS
from repro.experiments.runner import build_cluster

QUICK = dict(
    policies=[("random", "random", {})],
    offered_loads=(1.5,),
    n_servers=4,
    n_requests=200,
    seed=0,
    parallel=False,
)


def test_overload_param_keys_mirror_overload_policy():
    """config.py validates overload_params against a literal mirror of
    the OverloadPolicy fields (to stay import-light) — keep in sync."""
    assert _OVERLOAD_PARAM_KEYS == OverloadPolicy.field_names()


def test_unknown_overload_params_key_rejected():
    with pytest.raises(ValueError, match="overload_params"):
        SimulationConfig(overload_params={"sojourn_targit": 0.1})


def test_overload_params_accepted_and_marked():
    config = SimulationConfig(overload_params=overload_control_params())
    assert set(config.overload_params) <= _OVERLOAD_PARAM_KEYS
    assert config.describe().endswith("+overload")
    # Cache keys must distinguish adaptive from static runs.
    from repro.experiments import config_key

    assert config_key(config) != config_key(SimulationConfig())


def test_build_cluster_installs_controllers():
    config = SimulationConfig(
        n_requests=50, overload_params=overload_control_params()
    )
    cluster, _ = build_cluster(config)
    assert cluster.overload is not None
    assert all(server.overload is not None for server in cluster.servers)
    plain, _ = build_cluster(SimulationConfig(n_requests=50))
    assert plain.overload is None


def test_campaign_grid_and_report_shape(tmp_path):
    report = overload_campaign(archive=str(tmp_path / "runs.json"), **QUICK)
    # 2 modes x 1 policy x 1 load
    assert len(report.results) == len(STATIC_VS_ADAPTIVE)
    assert len(report.table.rows) == len(STATIC_VS_ADAPTIVE)
    for column in ("mode", "policy", "load", "goodput_pct", "p95_ms",
                   "shed_pct", "rejected", "shed", "nacks", "timeouts",
                   "retries", "failed", "withdrawals"):
        assert column in report.table.columns
    by_mode = {row["mode"]: row for row in report.table.rows}
    assert set(by_mode) == {"static", "adaptive"}
    assert by_mode["static"]["shed"] == 0
    assert 0.0 <= by_mode["adaptive"]["goodput_pct"] <= 100.0
    # Every cell ran the zero-draw chaos spec so counters are populated
    # for the static legs too.
    assert all(r.config.chaos_params == {"loss": 0.0} for r in report.results)
    # mode_comparison: one line per non-static cell.
    comparison = report.mode_comparison()
    assert len(comparison) == 1
    assert "adaptive vs static" in comparison[0]
    assert "goodput" in report.render()
    # Archive round-trips through the standard results format.
    loaded = load_results(tmp_path / "runs.json")
    assert len(loaded) == len(report.results)
    assert loaded[0].config == report.results[0].config


def test_campaign_second_run_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = overload_campaign(cache=cache, **QUICK)
    assert cache.misses == len(first.results)
    cache_again = ResultCache(tmp_path / "cache")
    second = overload_campaign(cache=cache_again, **QUICK)
    assert cache_again.hits == len(second.results)
    assert cache_again.misses == 0
    assert first.table.rows == second.table.rows


def test_default_grid_covers_sub_and_past_saturation():
    assert min(DEFAULT_OFFERED_LOADS) < 1.0 < max(DEFAULT_OFFERED_LOADS)
    assert 2.0 in DEFAULT_OFFERED_LOADS


def test_cluster_params_include_the_shared_static_bound():
    params = overload_cluster_params()
    assert params["server_max_queue"] == 64
    assert params["availability"] is True
    # Both campaign modes must run the same static bound: the adaptive
    # leg composes with it, never replaces it.
    for _mode, overload_params in STATIC_VS_ADAPTIVE:
        if overload_params:
            assert "server_max_queue" not in overload_params
