"""Autoscale campaign plumbing: config keys, grid shape, cache reuse.

The simulation-level acceptance claims live in
``tests/integration/test_autoscale.py``; this module covers the
campaign skin — ``dispatcher_params``/``autoscaler_params`` plumbing
through :class:`SimulationConfig` and ``build_cluster``, the scenario
grid the campaign expands to, the report columns, and the
content-addressed cache contract.
"""

import pytest

from repro.experiments.autoscale import (
    DEFAULT_AUTOSCALE_LOADS,
    DEFAULT_AUTOSCALE_POLICIES,
    DISPATCHER_FAULTS,
    autoscale_campaign,
    autoscale_cluster_params,
    autoscale_dispatcher_params,
    autoscale_scaling_params,
    autoscale_scenario_spec,
)
from repro.experiments.cache import ResultCache, config_key
from repro.experiments.config import SimulationConfig
from repro.experiments.io import load_results
from repro.experiments.runner import build_cluster

QUICK = dict(
    policies=DEFAULT_AUTOSCALE_POLICIES[:1],
    offered_loads=(0.8,),
    faults=DISPATCHER_FAULTS[:1],
    n_servers=4,
    n_requests=120,
    parallel=False,
)


def test_unknown_dispatcher_params_key_rejected():
    with pytest.raises(ValueError, match="dispatcher_params"):
        SimulationConfig(dispatcher_params={"bogus": 1})
    with pytest.raises(ValueError, match="autoscaler_params"):
        SimulationConfig(autoscaler_params={"bogus": 1})


def test_tier_and_scaling_params_accepted_and_marked():
    config = SimulationConfig(
        cluster_params=autoscale_cluster_params(),
        dispatcher_params=autoscale_dispatcher_params(),
        autoscaler_params=autoscale_scaling_params(16),
    )
    described = config.describe()
    assert "+dispatchers" in described and "+autoscale" in described
    # Cache keys must distinguish tier/scaled runs from plain ones.
    assert config_key(config) != config_key(SimulationConfig())


def test_build_cluster_installs_tier_and_autoscaler():
    config = SimulationConfig(
        n_requests=50,
        cluster_params=autoscale_cluster_params(),
        dispatcher_params=autoscale_dispatcher_params(),
        autoscaler_params=autoscale_scaling_params(16),
    )
    cluster, _ = build_cluster(config)
    assert cluster.dispatchers is not None
    assert len(cluster.dispatchers.dispatchers) == 3
    assert cluster.autoscaler is not None
    assert cluster.autoscaler.min_servers == 4
    plain, _ = build_cluster(SimulationConfig(n_requests=50))
    assert plain.dispatchers is None and plain.autoscaler is None


def test_spec_grid_shape_and_quick_trim():
    spec = autoscale_scenario_spec()
    cells = spec.expand()
    assert len(cells) == (
        len(DEFAULT_AUTOSCALE_POLICIES) * len(DEFAULT_AUTOSCALE_LOADS)
        * 2 * len(DISPATCHER_FAULTS)
    )
    # every cell routes through the tier; both modes carry admission
    assert all(c.config.dispatcher_params for c in cells)
    assert all(c.config.overload_params for c in cells)
    modes = {c.mode for c in cells}
    assert modes == {"static", "autoscaled"}
    quick = autoscale_scenario_spec(quick=True).expand()
    assert len(quick) == 2 * 2 * 2 * 2
    assert {c.policy for c in quick} == {"random", "polling-3"}


def test_campaign_grid_and_report_shape(tmp_path):
    report = autoscale_campaign(archive=str(tmp_path / "runs.json"), **QUICK)
    assert len(report.results) == 2  # static + autoscaled
    for column in ("mode", "policy", "load", "fault", "goodput_pct",
                   "p95_ms", "mean_active", "goodput_per_server",
                   "failed", "timeouts", "failovers", "ups", "downs"):
        assert column in report.table.columns
    by_mode = {row["mode"]: row for row in report.table.rows}
    assert set(by_mode) == {"static", "autoscaled"}
    # the static leg is charged its full pool
    assert by_mode["static"]["mean_active"] == QUICK["n_servers"]
    assert by_mode["autoscaled"]["mean_active"] <= QUICK["n_servers"]
    comparison = report.mode_comparison()
    assert len(comparison) == 1
    assert "autoscaled vs static" in comparison[0]
    assert "goodput/server" in report.render()
    loaded = load_results(tmp_path / "runs.json")
    assert len(loaded) == len(report.results)
    assert loaded[0].config == report.results[0].config


def test_campaign_second_run_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = autoscale_campaign(cache=cache, **QUICK)
    assert cache.misses == len(first.results)
    cache_again = ResultCache(tmp_path / "cache")
    second = autoscale_campaign(cache=cache_again, **QUICK)
    assert cache_again.hits == len(second.results)
    assert cache_again.misses == 0
    assert first.table.rows == second.table.rows


def test_default_grid_covers_sub_and_past_saturation():
    assert min(DEFAULT_AUTOSCALE_LOADS) < 1.0 < max(DEFAULT_AUTOSCALE_LOADS)
    assert 2.0 in DEFAULT_AUTOSCALE_LOADS
    # the fault axis spans no-fault and dispatcher-crash intensities
    values = [value for _, _, value in DISPATCHER_FAULTS]
    assert 0.0 in values and max(values) > 0.0


def test_cluster_params_require_availability():
    # scale actions actuate via soft-state publish/withdrawal
    assert autoscale_cluster_params()["availability"] is True
