"""Tests for replicated runs and policy comparison."""

import math

import pytest

from repro.experiments import SimulationConfig, compare_policies, replicate


def base(**kwargs):
    defaults = dict(workload="poisson_exp", load=0.8, n_servers=4,
                    n_requests=600, seed=3)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate(base(), n_replications=0)
    with pytest.raises(ValueError):
        replicate(base(), confidence=1.0)


def test_replicate_runs_distinct_seeds():
    result = replicate(base(policy="random"), n_replications=4, parallel=False)
    assert result.n_replications == 4
    assert len(set(result.per_seed_means)) == 4  # independent samples
    assert result.low < result.mean < result.high
    assert result.half_width > 0


def test_single_replication_infinite_interval():
    result = replicate(base(policy="random"), n_replications=1, parallel=False)
    assert math.isinf(result.half_width)


def test_replicate_deterministic():
    a = replicate(base(policy="random"), n_replications=3, parallel=False)
    b = replicate(base(policy="random"), n_replications=3, parallel=False)
    assert a.per_seed_means == b.per_seed_means


def test_overlaps():
    a = replicate(base(policy="random"), n_replications=3, parallel=False)
    assert a.overlaps(a)


def test_row_renders():
    result = replicate(base(policy="random"), n_replications=2, parallel=False)
    text = result.row()
    assert "ms" in text and "n=2" in text


def test_compare_policies_sorted_and_separated():
    comparison = compare_policies(
        base(load=0.9, n_requests=2000),
        policies=[
            ("random", "random", {}),
            ("ideal", "ideal", {}),
        ],
        n_replications=3,
        parallel=False,
    )
    labels = [label for label, _ in comparison]
    assert labels[0] == "ideal"  # sorted by mean, oracle wins
    ideal_result = comparison[0][1]
    random_result = comparison[1][1]
    # Every single paired seed agrees, and the oracle's whole interval
    # sits below random's point estimate. (Full non-overlap needs more
    # replications than a unit test should run.)
    assert all(
        i < r for i, r in zip(ideal_result.per_seed_means, random_result.per_seed_means)
    )
    assert ideal_result.high < random_result.mean
