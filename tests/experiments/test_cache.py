"""Tests for the persistent result cache."""

import json

import pytest

from repro.experiments import SimulationConfig, parallel_sweep, run_simulation
from repro.experiments.cache import ResultCache, config_key


def small(**kwargs):
    defaults = dict(
        policy="random", workload="poisson_exp", load=0.7,
        n_servers=2, n_requests=300, seed=5,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------

def test_key_is_stable_and_deterministic():
    assert config_key(small()) == config_key(small())


def test_key_covers_every_config_field():
    base = config_key(small())
    assert config_key(small(seed=6)) != base
    assert config_key(small(load=0.8)) != base
    assert config_key(small(policy="round_robin")) != base
    assert config_key(small(engine="calendar")) != base
    assert config_key(small(policy_params={"poll_size": 2},
                            policy="polling")) != base


def test_key_changes_with_library_version(monkeypatch):
    base = config_key(small())
    import repro

    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert config_key(small()) != base


# ----------------------------------------------------------------------
# get/put
# ----------------------------------------------------------------------

def test_miss_then_hit_roundtrip(cache):
    config = small()
    assert cache.get(config) is None
    result = run_simulation(config)
    cache.put(result)
    assert config in cache
    restored = cache.get(config)
    assert restored == result  # field-for-field, frozen dataclass equality
    assert cache.stats() == {"hits": 1, "misses": 1, "writes": 1}


def test_corrupt_entry_is_a_miss(cache):
    config = small()
    cache.put(run_simulation(config))
    path = cache._path(config_key(config))
    path.write_text("{ not json")
    assert cache.get(config) is None


def test_wrong_schema_entry_is_a_miss(cache):
    config = small()
    cache.put(run_simulation(config))
    path = cache._path(config_key(config))
    document = json.loads(path.read_text())
    document["schema_version"] = 99
    path.write_text(json.dumps(document))
    assert cache.get(config) is None


def test_len_and_clear(cache):
    assert len(cache) == 0
    for seed in (1, 2, 3):
        cache.put(run_simulation(small(seed=seed)))
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_clear_sweeps_orphaned_tmp_files(cache):
    """A writer dying before os.replace leaves a <hash>.tmp.<pid> file;
    clear() removes it without counting it as an entry."""
    cache.put(run_simulation(small()))
    orphan = cache.root / "ab" / ("c" * 64 + ".tmp.12345")
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("{partial")
    assert len(cache) == 1  # orphan invisible to the entry count
    assert cache.clear() == 1
    assert not orphan.exists()
    assert not list(cache.root.glob("*/*"))


# ----------------------------------------------------------------------
# parallel_sweep integration
# ----------------------------------------------------------------------

def test_sweep_cache_skips_simulation(cache):
    configs = [small(seed=s) for s in range(4)]
    cold = parallel_sweep(configs, parallel=False, cache=cache)
    assert cache.writes == 4
    warm = parallel_sweep(configs, parallel=False, cache=cache)
    assert cache.hits == 4 and cache.writes == 4  # nothing re-simulated
    assert warm == cold


def test_sweep_cache_partial_hit(cache):
    configs = [small(seed=s) for s in range(4)]
    parallel_sweep(configs[:2], parallel=False, cache=cache)
    results = parallel_sweep(configs, parallel=False, cache=cache)
    assert cache.hits == 2 and cache.writes == 4
    # input order preserved across the hit/miss split
    assert [r.config.seed for r in results] == [0, 1, 2, 3]


def test_cached_results_match_fresh(cache):
    configs = [small(seed=s) for s in (1, 2)]
    fresh = parallel_sweep(configs, parallel=False)
    parallel_sweep(configs, parallel=False, cache=cache)
    cached = parallel_sweep(configs, parallel=False, cache=cache)
    for f, c in zip(fresh, cached):
        # wall_seconds is wall-clock noise; everything else identical
        assert f.mean_response_time == c.mean_response_time
        assert f.server_counts == c.server_counts
        assert f.message_counts == c.message_counts
        assert f.config == c.config


def test_engine_override_keys_separately(cache):
    configs = [small(seed=1)]
    parallel_sweep(configs, parallel=False, cache=cache, engine="heap")
    parallel_sweep(configs, parallel=False, cache=cache, engine="calendar")
    assert cache.writes == 2  # engines never alias each other's entries
    assert cache.hits == 0


def test_prototype_config_hits_despite_calibration(cache):
    """full_load_rho resolution happens before keying, so a prototype
    config with full_load_rho=None still hits on re-run."""
    config = small(model="prototype", n_requests=300)
    assert config.full_load_rho is None
    parallel_sweep([config], parallel=False, cache=cache)
    parallel_sweep([config], parallel=False, cache=cache)
    assert cache.hits == 1 and cache.writes == 1
