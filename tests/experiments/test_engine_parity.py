"""Determinism harness: heap and calendar engines must agree bit-for-bit.

This is the acceptance gate for the calendar queue: a miniature of the
paper's fig3/fig4 config grids runs under both engines and every result
field must be identical. Any divergence means the calendar queue
reordered events — an automatic failure, however small the numeric
difference.
"""

import pytest

from repro.experiments import (
    SimulationConfig,
    engine_parity,
    parity_suite,
    run_simulation,
)
from repro.experiments.parity import COMPARED_FIELDS, _values_equal


def test_compared_fields_cover_the_result():
    assert "mean_response_time" in COMPARED_FIELDS
    assert "events_executed" in COMPARED_FIELDS
    assert "server_counts" in COMPARED_FIELDS
    assert "config" not in COMPARED_FIELDS  # differs by engine tag
    assert "wall_seconds" not in COMPARED_FIELDS  # wall-clock noise


def test_values_equal_handles_nan():
    assert _values_equal(float("nan"), float("nan"))
    assert _values_equal(1.0, 1.0)
    assert not _values_equal(1.0, float("nan"))
    assert not _values_equal(1.0, 2.0)


def test_parity_suite_shape():
    suite = parity_suite(n_requests=400)
    assert len(suite) >= 20
    policies = {c.policy for c in suite}
    assert {"broadcast", "polling", "random", "ideal"} <= policies
    assert any(c.model == "prototype" for c in suite)  # cancel-heavy path
    assert any(c.policy_params.get("discard_slow") for c in suite)
    # Hedge timers + breaker filtering must also be engine-invariant.
    assert any(c.reliability_params for c in suite)
    # Dispatcher-tier routing and autoscaler control ticks too.
    assert any(c.dispatcher_params and c.autoscaler_params for c in suite)
    # Oracle-on cells: the invariant checker must be engine-invariant.
    assert sum(1 for c in suite if c.verify_params) >= 2


def test_single_config_bit_identical():
    config = SimulationConfig(
        policy="polling", policy_params={"poll_size": 2},
        load=0.85, n_servers=4, n_requests=800, seed=11,
    )
    heap = run_simulation(config.with_updates(engine="heap"))
    calendar = run_simulation(config.with_updates(engine="calendar"))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), name


def test_hardened_reliability_config_bit_identical():
    """The reliability layer (hedge timers, backoff events, breaker
    filtering) draws from named substreams only — both engines must
    agree bit-for-bit with every mechanism switched on."""
    from repro.experiments.chaos import (
        chaos_cluster_params,
        chaos_params_for,
        hardened_reliability_params,
    )

    config = SimulationConfig(
        policy="polling", policy_params={"poll_size": 3, "discard_slow": True},
        load=0.8, n_servers=4, n_requests=800, seed=23,
        cluster_params=chaos_cluster_params(),
        chaos_params=chaos_params_for(1.0, n_servers=4),
        reliability_params=hardened_reliability_params(),
    )
    heap = run_simulation(config.with_updates(engine="heap"))
    calendar = run_simulation(config.with_updates(engine="calendar"))
    # Exercised, not idle: hedge timers fired and breakers tripped.
    assert heap.chaos_counters["hedges_launched"] > 0
    assert heap.chaos_counters["breaker_opens"] > 0
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), name


@pytest.mark.parametrize("policy", ["jiq", "least_connections"])
def test_registry_extension_policies_bit_identical(policy):
    """Cluster-level engine parity for the two registry policies the
    ROADMAP under-reported (ISSUE 7 satellite): jiq's idle-queue
    signalling and least-connections' in-flight counts must be
    engine-invariant at fixed seed, like every paper policy."""
    config = SimulationConfig(
        policy=policy, load=0.9, n_servers=8, n_requests=2_000, seed=5,
    )
    heap = run_simulation(config.with_updates(engine="heap"))
    calendar = run_simulation(config.with_updates(engine="calendar"))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), name


@pytest.mark.parametrize("policy", ["jiq", "least_connections"])
def test_registry_extension_policies_beat_random_at_high_load(policy):
    """Sanity bound: both load-aware extensions must clearly beat the
    no-information baseline at 90% load (fixed seed, same arrivals)."""
    base = SimulationConfig(load=0.9, n_servers=8, n_requests=2_000, seed=5)
    informed = run_simulation(base.with_updates(policy=policy))
    random_ = run_simulation(base.with_updates(policy="random"))
    assert informed.n_failed == 0
    assert informed.mean_response_time < 0.7 * random_.mean_response_time
    assert informed.p95_response_time < random_.p95_response_time


@pytest.mark.slow
def test_fig_suite_parity():
    """The full miniature fig3/fig4 grid under both engines."""
    report = engine_parity(parity_suite(n_requests=600), parallel=True)
    assert report.ok, report.render()
    assert "OK" in report.render()


def test_parity_small_serial():
    """A fast serial subset, run on every test invocation."""
    report = engine_parity(parity_suite(n_requests=300)[:5], parallel=False)
    assert report.ok, report.render()


def test_report_renders_mismatches():
    from repro.experiments import EngineParityReport

    config = SimulationConfig(n_requests=100)
    report = EngineParityReport(
        n_configs=1, mismatches=[(config, "events_executed", 10, 11)]
    )
    assert not report.ok
    text = report.render()
    assert "FAILED" in text and "events_executed" in text
