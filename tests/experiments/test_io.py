"""Tests for result persistence."""

import json

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.io import load_results, save_results


@pytest.fixture(scope="module")
def results():
    configs = [
        SimulationConfig(policy="random", workload="poisson_exp", load=0.6,
                         n_servers=2, n_requests=200, seed=s)
        for s in (1, 2)
    ]
    return [run_simulation(c) for c in configs]


def test_roundtrip(results, tmp_path):
    path = tmp_path / "results.json"
    save_results(results, path)
    loaded = load_results(path)
    assert len(loaded) == 2
    for original, restored in zip(results, loaded):
        assert restored == original  # frozen dataclasses compare by value


def test_json_is_valid_and_versioned(results, tmp_path):
    path = tmp_path / "results.json"
    save_results(results, path)
    document = json.loads(path.read_text())
    assert document["schema_version"] == 1
    assert "library_version" in document
    assert document["results"][0]["config"]["policy"] == "random"


def test_newer_schema_rejected_with_clear_error(tmp_path):
    """An archive from a future library version must fail loudly, not
    silently parse into garbage."""
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"schema_version": 99, "results": []}))
    with pytest.raises(ValueError, match="newer than this library"):
        load_results(path)


def test_older_schema_rejected(tmp_path):
    path = tmp_path / "ancient.json"
    path.write_text(json.dumps({"schema_version": 0, "results": []}))
    with pytest.raises(ValueError, match="predates"):
        load_results(path)


def test_missing_schema_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"results": []}))
    with pytest.raises(ValueError, match="missing or malformed"):
        load_results(path)


def test_save_then_load_results_equal(results, tmp_path):
    """Explicit round-trip contract: save -> load -> equal results."""
    path = tmp_path / "roundtrip.json"
    save_results(results, path)
    restored = load_results(path)
    assert restored == list(results)
    assert load_results(path) == restored  # loading is repeatable


def test_engine_field_roundtrip(tmp_path):
    config = SimulationConfig(policy="random", n_servers=2, n_requests=100,
                              load=0.4, engine="calendar")
    result = run_simulation(config)
    path = tmp_path / "engine.json"
    save_results([result], path)
    restored = load_results(path)[0]
    assert restored.config.engine == "calendar"
    assert restored == result


def test_server_speeds_tuple_roundtrip(tmp_path):
    config = SimulationConfig(policy="random", n_servers=2, n_requests=100,
                              server_speeds=(2.0, 1.0), load=0.4)
    result = run_simulation(config)
    path = tmp_path / "speeds.json"
    save_results([result], path)
    restored = load_results(path)[0]
    assert restored.config.server_speeds == (2.0, 1.0)
    assert restored == result


def test_empty_results(tmp_path):
    path = tmp_path / "empty.json"
    save_results([], path)
    assert load_results(path) == []
