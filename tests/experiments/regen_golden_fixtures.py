"""Regenerate the golden-equivalence fixtures (intentional re-baseline).

Usage::

    PYTHONPATH=src python tests/experiments/regen_golden_fixtures.py

The committed fixtures were produced by the *legacy* (pre-scenario)
campaign modules at commit ``ec7e9e5``; running this script regenerates
them with whatever code is currently on disk. Only do that when the
campaign outputs are *supposed* to change, and call the re-baseline out
in the commit message — the whole point of the fixtures is to catch
unintended drift (see ``golden_campaigns.py``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from golden_campaigns import CAMPAIGNS, GOLDEN_DIR, GOLDEN_SEEDS, fixture_paths

from repro.experiments.io import save_results


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, runner in CAMPAIGNS.items():
        for seed in GOLDEN_SEEDS:
            report = runner(seed)
            results_path, render_path = fixture_paths(name, seed)
            save_results(report.results, results_path)
            render_path.write_text(report.render() + "\n")
            print(f"  {name} seed={seed}: {len(report.results)} results "
                  f"-> {results_path.name}, {render_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
