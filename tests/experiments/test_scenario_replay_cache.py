"""Cache identity for replay-file cells and --quick runs.

The result cache keys on the full ``SimulationConfig``. Two hazards:
a ``replay_file`` workload keyed only by *path* would serve stale
results after the trace file's contents change, and a ``--quick`` run
must never collide with a full run. The first is fixed by auto-pinning
the trace digest at expansion time; the second holds by construction
because ``n_requests`` is part of the key — both are locked in here.
"""

import pytest

from repro.experiments.cache import config_key
from repro.experiments.scenario import ScenarioError, ScenarioSpec, WorkloadAxis

_TRACE_A = "0.0,0.001\n0.01,0.002\n0.025,0.001\n"
_TRACE_B = "0.0,0.001\n0.02,0.002\n0.050,0.001\n"


def _spec(path, n_requests=100):
    return ScenarioSpec(
        name="replay-cache",
        workloads=(WorkloadAxis("trace", "replay_file", {"path": str(path)}),),
        loads=(0.5,),
        n_requests=n_requests,
    )


def _write_trace(tmp_path, body):
    path = tmp_path / "trace.csv"
    path.write_text("timestamp,service\n" + body)
    return path


def test_replay_file_cell_pins_content_digest(tmp_path):
    path = _write_trace(tmp_path, _TRACE_A)
    (cell,) = _spec(path).expand()
    params = cell.config.workload_params
    assert params["path"] == str(path)
    assert "digest" in params and len(params["digest"]) == 16


def test_editing_trace_contents_changes_the_cache_key(tmp_path):
    path = _write_trace(tmp_path, _TRACE_A)
    (cell_a,) = _spec(path).expand()
    key_a = config_key(cell_a.config)
    # Same path, different contents: the stale-cache regression.
    path.write_text("timestamp,service\n" + _TRACE_B)
    (cell_b,) = _spec(path).expand()
    key_b = config_key(cell_b.config)
    assert key_a != key_b


def test_explicit_digest_is_respected_not_overwritten(tmp_path):
    path = _write_trace(tmp_path, _TRACE_A)
    spec = ScenarioSpec(
        name="pinned",
        workloads=(WorkloadAxis("trace", "replay_file",
                                {"path": str(path), "digest": "feedface00000000"}),),
        loads=(0.5,),
        n_requests=100,
    )
    (cell,) = spec.expand()
    assert cell.config.workload_params["digest"] == "feedface00000000"


def test_quick_and_full_runs_never_share_a_key(tmp_path):
    path = _write_trace(tmp_path, _TRACE_A)
    (quick,) = _spec(path, n_requests=200).expand()
    (full,) = _spec(path, n_requests=20_000).expand()
    assert config_key(quick.config) != config_key(full.config)


def test_missing_path_fails_at_expansion_not_run_time(tmp_path):
    # A pathless replay_file axis is rejected at axis param validation,
    # before digest pinning even runs.
    pathless = ScenarioSpec(
        name="pathless",
        workloads=(WorkloadAxis("trace", "replay_file", {}),),
        loads=(0.5,),
        n_requests=100,
    )
    with pytest.raises(ScenarioError, match="replay_file"):
        pathless.expand()
    missing = tmp_path / "nope.csv"
    with pytest.raises(ScenarioError, match="nope.csv"):
        _spec(missing).expand()
