"""Scenario spec semantics: expansion, validation, files, reports."""

import json

import pytest

from repro.experiments.cache import config_key
from repro.experiments.chaos import (
    NAIVE_VS_HARDENED,
    chaos_scenario_spec,
)
from repro.experiments.overload import overload_scenario_spec
from repro.experiments.scenario import (
    FaultAxis,
    ModeAxis,
    PolicyAxis,
    ScaleAxis,
    ScenarioError,
    ScenarioReport,
    ScenarioSpec,
    SpeedAxis,
    WorkloadAxis,
    composed_spec,
    load_spec,
    parse_yaml_lite,
    spec_from_dict,
)


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------

def test_expand_nesting_order_mode_workload_policy_load_fault_scale():
    spec = ScenarioSpec(
        name="order",
        policies=(PolicyAxis("p1", "random"), PolicyAxis("p2", "round_robin")),
        loads=(0.5, 0.9),
        modes=(ModeAxis("m1"), ModeAxis("m2")),
        faults=(FaultAxis("f1"), FaultAxis("f2", {"loss": 0.1})),
        scales=(ScaleAxis("s1", 4), ScaleAxis("s2", 8)),
        n_requests=100,
        label_format="{scenario} {policy} L={load:g} {mode} {fault} {scale}",
    )
    cells = spec.expand()
    assert len(cells) == 2 * 2 * 2 * 2 * 2
    # scale is innermost, mode outermost
    assert [c.scale for c in cells[:2]] == ["s1", "s2"]
    assert [c.fault for c in cells[:4]] == ["f1", "f1", "f2", "f2"]
    assert all(c.mode == "m1" for c in cells[:16])
    assert all(c.mode == "m2" for c in cells[16:])


def test_cells_carry_runnable_configs_with_axis_knobs():
    spec = ScenarioSpec(
        name="knobs",
        policies=(PolicyAxis("poll3", "polling", {"poll_size": 3}),),
        workloads=(WorkloadAxis("det", "poisson_deterministic"),),
        loads=(0.6,),
        modes=(ModeAxis("hard", reliability={"hedge_quantile": 0.9},
                        overload={"sojourn_target": 0.1},
                        telemetry={"sample_interval": 0.1}),),
        faults=(FaultAxis("f", {"loss": 0.05}),),
        scales=(ScaleAxis("big", n_servers=32, n_requests=5_000),),
        cluster_params={"request_timeout": 0.3},
        config_overrides={"n_clients": 4},
        seed=7,
    )
    (cell,) = spec.expand()
    cfg = cell.config
    assert cfg.policy == "polling" and cfg.policy_params == {"poll_size": 3}
    assert cfg.workload == "poisson_deterministic"
    assert cfg.load == 0.6 and cfg.seed == 7
    assert cfg.n_servers == 32 and cfg.n_requests == 5_000
    assert cfg.reliability_params == {"hedge_quantile": 0.9}
    assert cfg.overload_params == {"sojourn_target": 0.1}
    assert cfg.telemetry == {"sample_interval": 0.1}
    assert cfg.chaos_params == {"loss": 0.05}
    assert cfg.cluster_params == {"request_timeout": 0.3}
    assert cfg.n_clients == 4


def test_cells_get_fresh_dict_copies():
    shared = {"loss": 0.1}
    spec = ScenarioSpec(
        faults=(FaultAxis("a", shared), FaultAxis("b", shared)),
        n_requests=100,
        label_format="{scenario} {fault}",
    )
    cells = spec.expand()
    assert cells[0].config.chaos_params is not cells[1].config.chaos_params
    assert cells[0].config.chaos_params is not shared


def test_labels_collapse_empty_placeholders():
    spec = ScenarioSpec(name="tidy", n_requests=100)
    (cell,) = spec.expand()
    # default format references mode/fault/scale whose labels are empty
    assert "  " not in cell.config.label
    assert cell.config.label == "tidy poisson_exp random L=0.9"


def test_identical_configs_rejected_with_label_format_hint():
    spec = ScenarioSpec(
        modes=(ModeAxis("m1"), ModeAxis("m2")),  # same knobs, labels unused
        n_requests=100,
        label_format="{scenario} {policy}",
    )
    with pytest.raises(ScenarioError, match="label_format"):
        spec.expand()


def test_expansion_is_deterministic_and_cache_key_stable():
    spec = composed_spec(n_requests=200, quick=True)
    first = [config_key(c.config) for c in spec.expand()]
    second = [config_key(c.config) for c in spec.expand()]
    assert first == second
    assert len(set(first)) == len(first)  # distinct cells never collide


# ----------------------------------------------------------------------
# validation names the offending axis
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs,axis,fragment",
    [
        (dict(policies=(PolicyAxis("x", "nope"),)), "policies", "unknown policy"),
        (dict(policies=(PolicyAxis("x", "polling", {"bogus": 1}),)),
         "policies", "bad params"),
        (dict(workloads=(WorkloadAxis("w", "nope"),)), "workloads",
         "unknown workload"),
        (dict(modes=(ModeAxis("m", telemetry={"bogus": True}),)), "modes",
         "telemetry"),
        (dict(modes=(ModeAxis("m", reliability={"bogus": 1}),)), "modes",
         "reliability"),
        (dict(faults=(FaultAxis("f", {"bogus": 1}),)), "faults", "chaos"),
        (dict(cluster_params={"bogus": 1}), "cluster_params", "cluster"),
        (dict(config_overrides={"policy": "random"}), "config_overrides",
         "override"),
        (dict(loads=()), "loads", "empty"),
        (dict(loads=(0.0,)), "loads", "> 0"),
        (dict(loads=(0.5, 0.5)), "loads", "duplicate"),
        (dict(policies=()), "policies", "empty"),
        (dict(modes=(ModeAxis("m"), ModeAxis("m"))), "modes", "duplicate"),
        (dict(engine="quantum"), "engine", "one of"),
        (dict(scales=(ScaleAxis("s", n_servers=0),)), "scales", "n_servers"),
        (dict(label_format="{bogus}"), "label_format", "bad format"),
        (dict(speeds=()), "speeds", "empty"),
        (dict(speeds=(SpeedAxis("s", (1.0, -2.0)),)), "speeds", "> 0"),
        (dict(speeds=(SpeedAxis("a"), SpeedAxis("a"))), "speeds", "duplicate"),
        (dict(speeds=(SpeedAxis("skew", (1.0, 2.0)),),
              config_overrides={"server_speeds": (1.0, 1.0)}),
         "speeds", "conflicts"),
        (dict(speeds=(SpeedAxis("skew", (1.0, 2.0)),),
              scales=(ScaleAxis("s", n_servers=4),)),
         "speeds", "speed factors"),
        (dict(modes=(ModeAxis("m", dispatcher={"bogus": 1}),)), "modes",
         "dispatcher"),
        (dict(modes=(ModeAxis("m", autoscaler={"bogus": 1}),)), "modes",
         "autoscaler"),
    ],
)
def test_validation_errors_name_the_axis(kwargs, axis, fragment):
    with pytest.raises(ScenarioError, match=fragment) as err:
        ScenarioSpec(n_requests=100, **kwargs).expand()
    assert err.value.axis == axis
    assert f"axis {axis!r}" in str(err.value)


def test_fast_engine_rejects_subsystem_modes_naming_the_axis():
    base = dict(engine="fast", n_requests=100)
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec(faults=(FaultAxis("f", {"loss": 0.1}),), **base).expand()
    assert err.value.axis == "faults"
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec(
            modes=(ModeAxis("m", reliability={"hedge_quantile": 0.9}),), **base
        ).expand()
    assert err.value.axis == "modes"
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec(policies=(PolicyAxis("jiq", "jiq"),), **base).expand()
    assert err.value.axis == "policies"
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec(
            modes=(ModeAxis("m", dispatcher={"count": 2}),), **base
        ).expand()
    assert err.value.axis == "modes"
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec(
            speeds=(SpeedAxis("skew", (1.0, 2.0) * 8),), **base
        ).expand()
    assert err.value.axis == "speeds"
    # a plain fast-compatible grid is fine
    assert len(ScenarioSpec(n_requests=100, engine="fast").expand()) == 1


# ----------------------------------------------------------------------
# declarative construction
# ----------------------------------------------------------------------

def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(ScenarioError, match="unknown key"):
        spec_from_dict({"name": "x", "polices": []})  # typo'd axis


def test_spec_from_dict_intensity_shorthand_builds_chaos_knobs():
    from repro.experiments.chaos import chaos_params_for

    spec = spec_from_dict(
        {"name": "f", "n_servers": 8, "n_requests": 100,
         "faults": [{"intensity": 0.0}, {"intensity": 1.0}]}
    )
    assert spec.faults[0].chaos == {"loss": 0.0}
    assert spec.faults[1].chaos == chaos_params_for(1.0, 8)
    assert [f.label for f in spec.faults] == ["I=0", "I=1"]
    assert spec.faults[1].value == 1.0


def test_spec_from_dict_axis_entries_as_dicts():
    spec = spec_from_dict(
        {
            "name": "d",
            "n_requests": 100,
            "policies": [
                {"label": "rnd", "policy": "random"},
                {"label": "p3", "policy": "polling",
                 "params": {"poll_size": 3}},
            ],
            "loads": [0.5, 0.9],
        }
    )
    assert len(spec.expand()) == 4


def test_load_spec_json_and_yaml_agree(tmp_path):
    data = {
        "name": "file",
        "n_requests": 120,
        "loads": [0.5, 0.8],
        "policies": [{"label": "rnd", "policy": "random"}],
    }
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(data))
    yaml_path = tmp_path / "s.yaml"
    yaml_path.write_text(
        "# scenario spec\n"
        "name: file\n"
        "n_requests: 120\n"
        "loads:\n"
        "  - 0.5\n"
        "  - 0.8\n"
        "policies:\n"
        "  - label: rnd\n"
        "    policy: random\n"
    )
    from_json = load_spec(json_path)
    from_yaml = load_spec(yaml_path)
    assert from_json == from_yaml
    assert [c.config for c in from_json.expand()] == [
        c.config for c in from_yaml.expand()
    ]


def test_load_spec_bad_suffix_and_missing_file(tmp_path):
    with pytest.raises(ScenarioError, match="suffix"):
        load_spec(tmp_path / "spec.toml")
    with pytest.raises(ScenarioError, match="cannot read"):
        load_spec(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# YAML-lite
# ----------------------------------------------------------------------

def test_yaml_lite_scalars_lists_nesting_and_inline_json():
    data = parse_yaml_lite(
        "name: demo\n"
        "count: 3\n"
        "ratio: 0.5\n"
        "flag: true\n"
        "nothing: null\n"
        "inline: {\"a\": 1, \"b\": [2, 3]}\n"
        "nested:\n"
        "  inner: x\n"
        "items:\n"
        "  - 1\n"
        "  - two\n"
    )
    assert data == {
        "name": "demo",
        "count": 3,
        "ratio": 0.5,
        "flag": True,
        "nothing": None,
        "inline": {"a": 1, "b": [2, 3]},
        "nested": {"inner": "x"},
        "items": [1, "two"],
    }


def test_yaml_lite_list_of_mappings():
    data = parse_yaml_lite(
        "policies:\n"
        "  - label: a\n"
        "    policy: random\n"
        "  - label: b\n"
        "    policy: polling\n"
        "    params: {\"poll_size\": 2}\n"
    )
    assert data["policies"] == [
        {"label": "a", "policy": "random"},
        {"label": "b", "policy": "polling", "params": {"poll_size": 2}},
    ]


@pytest.mark.parametrize(
    "text,fragment",
    [
        ("a:\n\tb: 1\n", "tabs"),
        ("a: 1\na: 2\n", "duplicate key"),
        ("a:\n  - 1\n   - 2\n", "list item"),
        ("just a bare line\n", "key: value"),
        ("a: {\"broken\": \n", "invalid inline JSON"),
    ],
)
def test_yaml_lite_errors(text, fragment):
    with pytest.raises(ValueError, match=fragment):
        parse_yaml_lite(text)


# ----------------------------------------------------------------------
# campaign specs mirror the legacy grids
# ----------------------------------------------------------------------

def test_chaos_spec_single_mode_labels_omit_the_mode():
    cells = chaos_scenario_spec(n_requests=100).expand()
    assert cells[0].config.label == "chaos random I=0"
    assert all("naive" not in c.config.label for c in cells)


def test_chaos_spec_multi_mode_labels_append_the_mode():
    cells = chaos_scenario_spec(
        n_requests=100, reliability_modes=NAIVE_VS_HARDENED
    ).expand()
    assert cells[0].config.label == "chaos random I=0 naive"
    assert cells[-1].config.label.endswith("hardened")


def test_overload_spec_labels_and_zero_fault_chaos():
    cells = overload_scenario_spec(n_requests=100).expand()
    assert cells[0].config.label == "overload random L=0.8x static"
    assert all(c.config.chaos_params == {"loss": 0.0} for c in cells)


def test_composed_spec_includes_replay_scales_and_modes():
    spec = composed_spec(n_requests=400, quick=True)
    assert any(w.workload == "replay_bursty" for w in spec.workloads)
    assert len(spec.scales) >= 2 and len(spec.modes) == 2
    cells = spec.expand()
    assert len(cells) == 32
    assert any("replay-bursty" in c.config.label for c in cells)


def test_composed_spec_full_grid_includes_modern_policies():
    spec = composed_spec(n_requests=400)
    names = {p.policy for p in spec.policies}
    assert {"jiq", "least_connections"} <= names
    assert len(spec.expand()) == 120


# ----------------------------------------------------------------------
# speeds axis
# ----------------------------------------------------------------------

def test_speed_axis_expands_innermost_with_labels_and_overrides():
    spec = ScenarioSpec(
        loads=(0.5, 0.9),
        speeds=(SpeedAxis("uniform"), SpeedAxis("skewed", (2.0, 1.0, 1.0, 0.5))),
        n_requests=100,
        n_servers=4,
        label_format="{scenario} {policy} L={load:g} {speed}",
    )
    cells = spec.expand()
    assert len(cells) == 4
    # innermost axis: speed varies fastest
    assert [c.speed for c in cells] == ["uniform", "skewed"] * 2
    uniform, skewed = cells[0].config, cells[1].config
    assert uniform.server_speeds is None
    assert skewed.server_speeds == (2.0, 1.0, 1.0, 0.5)
    assert skewed.label.endswith("skewed")
    # heterogeneous cells never collide with homogeneous ones in cache
    assert config_key(uniform) != config_key(skewed)


def test_speed_axis_coerces_factors_to_floats():
    axis = SpeedAxis("mixed", (2, 1, 1))
    assert axis.speeds == (2.0, 1.0, 1.0)
    assert all(isinstance(v, float) for v in axis.speeds)


def test_degenerate_speed_axis_keeps_legacy_labels():
    base = ScenarioSpec(n_requests=100)
    assert [c.config.label for c in base.expand()] == [
        c.config.label
        for c in ScenarioSpec(n_requests=100, speeds=(SpeedAxis(""),)).expand()
    ]


def test_mode_axis_dispatcher_and_autoscaler_reach_config():
    spec = ScenarioSpec(
        modes=(
            ModeAxis("plain"),
            ModeAxis(
                "tiered",
                dispatcher={"count": 2, "assignment": "failover"},
                autoscaler={"interval": 0.1},
            ),
        ),
        n_requests=100,
        cluster_params={"availability": True},
    )
    plain, tiered = [c.config for c in spec.expand()]
    assert plain.dispatcher_params == {} and plain.autoscaler_params == {}
    assert tiered.dispatcher_params == {"count": 2, "assignment": "failover"}
    assert tiered.autoscaler_params == {"interval": 0.1}
    assert config_key(plain) != config_key(tiered)


# ----------------------------------------------------------------------
# report assembly (no simulation: fabricate results)
# ----------------------------------------------------------------------

def _fake_result(config, mean=0.05, failed=0):
    from repro.experiments.runner import SimulationResult

    return SimulationResult(
        config=config,
        mean_response_time=mean,
        p50_response_time=mean,
        p90_response_time=mean * 1.5,
        p99_response_time=mean * 3,
        p95_response_time=mean * 2,
        mean_poll_time=0.0,
        n_measured=config.n_requests,
        n_failed=failed,
        nominal_rho=0.5,
        wall_seconds=0.01,
        events_executed=100,
    )


def test_report_drops_degenerate_axis_columns_and_compares_modes():
    spec = ScenarioSpec(
        name="r",
        modes=(ModeAxis("naive"), ModeAxis("hard", reliability={"hedge_quantile": 0.9})),
        n_requests=100,
        label_format="{scenario} {policy} {mode}",
    )
    cells = spec.expand()
    results = [
        _fake_result(c.config, mean=0.05 if c.mode == "naive" else 0.03)
        for c in cells
    ]
    report = ScenarioReport(spec=spec, cells=cells, results=results)
    assert "mode" in report.table.columns
    assert "fault" not in report.table.columns  # degenerate unlabeled axis
    assert "scale" not in report.table.columns
    assert "load" not in report.table.columns  # single load, not in label
    rendered = report.render()
    assert "2 cells" in rendered
    lines = report.mode_comparison()
    assert len(lines) == 1 and "hard vs naive" in lines[0]


def test_report_rejects_mismatched_lengths():
    spec = ScenarioSpec(n_requests=100)
    cells = spec.expand()
    with pytest.raises(ValueError, match="cells but"):
        ScenarioReport(spec=spec, cells=cells, results=[])
