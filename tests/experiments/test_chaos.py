"""Tests for the chaos campaign driver and its config plumbing."""

import pytest

from repro.cluster import ChaosSpec, ReliabilityPolicy
from repro.experiments import SimulationConfig, load_results
from repro.experiments.cache import ResultCache
from repro.experiments.chaos import (
    DEFAULT_INTENSITIES,
    DEFAULT_POLICIES,
    NAIVE_VS_HARDENED,
    chaos_campaign,
    chaos_cluster_params,
    chaos_params_for,
    hardened_reliability_params,
)
from repro.experiments.config import (
    _CHAOS_PARAM_KEYS,
    _CLUSTER_PARAM_KEYS,
    _RELIABILITY_PARAM_KEYS,
)


def test_chaos_param_keys_mirror_chaos_spec():
    """config.py validates chaos_params against a literal mirror of the
    ChaosSpec fields (to stay import-light) — keep them in sync."""
    assert _CHAOS_PARAM_KEYS == ChaosSpec.field_names()


def test_reliability_param_keys_mirror_reliability_policy():
    """Same contract for reliability_params: the literal mirror in
    config.py must track the ReliabilityPolicy fields exactly."""
    assert _RELIABILITY_PARAM_KEYS == ReliabilityPolicy.field_names()


def test_unknown_cluster_params_key_rejected():
    with pytest.raises(ValueError, match="cluster_params"):
        SimulationConfig(cluster_params={"n_serverz": 4})


def test_unknown_chaos_params_key_rejected():
    with pytest.raises(ValueError, match="chaos_params"):
        SimulationConfig(chaos_params={"losss": 0.1})


def test_unknown_reliability_params_key_rejected():
    with pytest.raises(ValueError, match="reliability_params"):
        SimulationConfig(reliability_params={"hedge_quantil": 0.9})


def test_reliability_params_accepted_and_marked():
    config = SimulationConfig(reliability_params=hardened_reliability_params())
    assert set(config.reliability_params) <= _RELIABILITY_PARAM_KEYS
    assert config.describe().endswith("+reliability")
    # Cache keys must distinguish hardened from naive runs.
    from repro.experiments import config_key

    naive = SimulationConfig()
    assert config_key(config) != config_key(naive)


def test_allowed_params_accepted():
    config = SimulationConfig(
        cluster_params=chaos_cluster_params(),
        chaos_params=chaos_params_for(1.0),
    )
    assert set(config.cluster_params) <= _CLUSTER_PARAM_KEYS
    assert set(config.chaos_params) <= _CHAOS_PARAM_KEYS
    assert config.describe().endswith("+chaos")


def test_zero_intensity_is_zero_fault_spec():
    assert chaos_params_for(0.0) == {"loss": 0.0}
    assert chaos_params_for(-1.0) == {"loss": 0.0}
    spec = ChaosSpec(**chaos_params_for(0.0))
    assert spec == ChaosSpec()


def test_intensity_scales_knobs():
    half = chaos_params_for(0.5, n_servers=16)
    full = chaos_params_for(1.0, n_servers=16)
    assert 0 < half["loss"] < full["loss"] <= 0.08
    assert half["storm_size"] < full["storm_size"]
    assert full["partitions"] == 1


def small_campaign(**kwargs):
    kwargs.setdefault("policies", DEFAULT_POLICIES[:2])
    kwargs.setdefault("intensities", (0.0, 1.0))
    kwargs.setdefault("n_requests", 300)
    kwargs.setdefault("n_servers", 4)
    kwargs.setdefault("parallel", False)
    return chaos_campaign(**kwargs)


def test_campaign_shape_and_baseline_normalization():
    report = small_campaign()
    assert len(report.table) == 4  # 2 policies x 2 intensities
    for row in report.table.rows:
        if row["intensity"] == 0.0:
            assert row["vs_baseline"] == pytest.approx(1.0)
            assert row["msg_lost"] == 0
        else:
            assert row["msg_lost"] > 0
    assert [r.config.label for r in report.results] == [
        f"chaos {label} I={i:g}"
        for label in ("random", "polling-3")
        for i in (0.0, 1.0)
    ]


def test_campaign_is_deterministic():
    first = small_campaign()
    second = small_campaign()
    assert first.table.rows == second.table.rows


def test_campaign_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    fresh = small_campaign(cache=cache)
    assert cache.misses == 4 and cache.hits == 0
    cached = small_campaign(cache=cache)
    assert cache.hits == 4
    assert fresh.table.rows == cached.table.rows
    for a, b in zip(fresh.results, cached.results):
        assert a.config == b.config
        assert a.chaos_counters == b.chaos_counters
        assert a.p95_response_time == b.p95_response_time


def test_campaign_archive(tmp_path):
    archive = tmp_path / "chaos.json"
    report = small_campaign(archive=str(archive))
    reloaded = load_results(archive)
    assert [r.config for r in reloaded] == [r.config for r in report.results]
    assert [r.chaos_counters for r in reloaded] == [
        r.chaos_counters for r in report.results
    ]


def test_default_grid_covers_five_policies():
    assert len(DEFAULT_POLICIES) == 5
    # tail-append contract: the legacy triple stays in front so the
    # [:1]/[:2] slices used all over this suite keep their meaning
    assert [p[1] for p in DEFAULT_POLICIES[:3]] == ["random", "polling", "broadcast"]
    assert {p[1] for p in DEFAULT_POLICIES[3:]} == {"jiq", "least_connections"}
    assert DEFAULT_INTENSITIES[0] == 0.0


# ----------------------------------------------------------------------
# reliability axis: naive vs hardened under identical fault schedules
# ----------------------------------------------------------------------

def test_hardened_params_are_a_valid_enabled_policy():
    policy = ReliabilityPolicy(**hardened_reliability_params())
    assert policy.enabled


def test_naive_vs_hardened_campaign_shape():
    report = small_campaign(
        policies=DEFAULT_POLICIES[:1], reliability_modes=NAIVE_VS_HARDENED
    )
    # 1 policy x 2 intensities x 2 modes.
    assert len(report.table) == 4
    assert [row["mode"] for row in report.table.rows] == [
        "naive", "naive", "hardened", "hardened",
    ]
    # Multi-mode grids suffix the mode into the label so archives keep
    # one unambiguous label per cell.
    labels = [r.config.label for r in report.results]
    assert labels == [
        f"chaos random I={i:g} {mode}"
        for mode in ("naive", "hardened")
        for i in (0.0, 1.0)
    ]
    # Only the hardened leg carries reliability params.
    assert not any(
        r.config.reliability_params for r in report.results[:2]
    )
    assert all(r.config.reliability_params for r in report.results[2:])


def test_single_mode_campaign_keeps_legacy_labels():
    """The default (single-mode) grid must keep its historical labels so
    existing archives and caches stay addressable."""
    report = small_campaign(policies=DEFAULT_POLICIES[:1])
    assert [r.config.label for r in report.results] == [
        "chaos random I=0", "chaos random I=1",
    ]
    assert report.mode_comparison() == []


def test_mode_comparison_renders_deltas():
    report = small_campaign(
        policies=DEFAULT_POLICIES[:1], reliability_modes=NAIVE_VS_HARDENED
    )
    comparison = report.mode_comparison()
    # One comparison line per nonzero-intensity cell.
    assert len(comparison) == 1
    assert comparison[0].startswith("hardened vs naive | random I=1:")
    rendered = report.render()
    assert "Reliability modes (identical fault schedules)" in rendered
    assert comparison[0] in rendered
