"""Tests for the ASCII line chart renderer."""

import pytest

from repro.experiments.report import ascii_chart


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {})
    with pytest.raises(ValueError):
        ascii_chart([1], {"s": [1.0]})
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"s": [1.0]})  # length mismatch
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"s": [1.0, 2.0]}, width=4)
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"s": [0.0, 1.0]}, logy=True)


def test_markers_and_legend_present():
    text = ascii_chart([1, 2, 3], {"alpha": [1.0, 2.0, 3.0], "beta": [3.0, 2.0, 1.0]})
    assert "o=alpha" in text
    assert "x=beta" in text
    assert "o" in text.splitlines()[0] + text.splitlines()[-5]


def test_monotone_series_marker_positions():
    """An increasing series puts its marker higher (earlier row) for
    larger values."""
    text = ascii_chart([0, 1], {"s": [1.0, 10.0]}, width=20, height=10)
    lines = text.splitlines()
    first_marker_row = next(i for i, line in enumerate(lines) if "o" in line)
    last_marker_row = max(i for i, line in enumerate(lines[:10]) if "o" in line)
    assert first_marker_row < last_marker_row  # high value near top


def test_axis_labels_show_range():
    text = ascii_chart([0.5, 0.9], {"s": [1.0, 2.0]})
    assert "0.5" in text and "0.9" in text


def test_logy_renders_and_tags():
    text = ascii_chart([1, 2, 3], {"s": [1.0, 10.0, 100.0]}, logy=True)
    assert "[log y]" in text


def test_constant_series_no_crash():
    text = ascii_chart([1, 2], {"s": [5.0, 5.0]})
    assert "o" in text


def test_none_values_skipped():
    text = ascii_chart([1, 2, 3], {"s": [1.0, None, 3.0]})
    assert text.count("o=s") == 1
