"""Tests for the figure/table drivers (small sizes; shape checks live in
tests/integration and the benches)."""

import numpy as np
import pytest

from repro.experiments import figures
from repro.workload.synthesis import FINE_GRAIN_SPEC, MEDIUM_GRAIN_SPEC


def test_table1_matches_specs():
    data = figures.table1_traces(n=60_000, seed=1)
    rows = {row["workload"]: row for row in data.table.rows}
    fine = rows[FINE_GRAIN_SPEC.name]
    assert fine["service_mean_ms"] == pytest.approx(22.2, rel=0.05)
    medium = rows[MEDIUM_GRAIN_SPEC.name]
    assert medium["service_mean_ms"] == pytest.approx(28.9, rel=0.05)
    assert medium["service_std_ms"] == pytest.approx(62.9, rel=0.15)
    assert "Table 1" in data.render()


def test_figure2_small():
    data = figures.figure2_inaccuracy(
        loads=(0.5,), workloads=("poisson_exp",),
        delays_normalized=(0.0, 1.0, 50.0),
        n_requests=60_000, n_samples=8_000, seed=2,
    )
    values = data.table.column("inaccuracy")
    assert values[0] == 0.0
    assert values[1] > 0.0
    # At long delays the inaccuracy approaches the Eq. 1 bound.
    bound = data.extras["upperbound"][0.5]
    assert values[2] == pytest.approx(bound, rel=0.2)


def test_figure3_small():
    data = figures.figure3_broadcast(
        intervals=(0.005, 0.5), loads=(0.9,), workloads=("poisson_exp",),
        n_requests=4000, seed=3, parallel=False,
    )
    rows = {row["interval_ms"]: row for row in data.table.rows}
    # Slow broadcast must be much worse than fast broadcast (Fig 3 shape).
    assert rows[500.0]["normalized_to_ideal"] > 2 * rows[5.0]["normalized_to_ideal"]
    assert rows[5.0]["normalized_to_ideal"] >= 0.9


def test_figure4_small():
    data = figures.figure4_pollsize(
        loads=(0.9,), workloads=("poisson_exp",), poll_sizes=(2, 8),
        n_requests=4000, seed=4, parallel=False,
    )
    rows = {row["policy"]: row["response_ms"] for row in data.table.rows}
    assert rows["ideal"] < rows["poll-2"] < rows["random"]
    # Simulation model: d=8 does NOT degrade.
    assert rows["poll-8"] <= rows["poll-2"] * 1.1
    assert "Figure 4" in data.name


def test_figure6_small():
    data = figures.figure6_pollsize(
        loads=(0.9,), workloads=("fine_grain",), poll_sizes=(2, 8),
        n_requests=4000, seed=5, parallel=False,
    )
    assert data.extras["model"] == "prototype"
    rows = {row["policy"]: row["response_ms"] for row in data.table.rows}
    # Prototype model: d=8 degrades well below d=2 for fine-grain.
    assert rows["poll-8"] > 1.5 * rows["poll-2"]
    assert "Figure 6" in data.name


def test_table2_small():
    data = figures.table2_discard(
        workloads=("fine_grain",), n_requests=4000, seed=6, parallel=False,
    )
    row = data.table.rows[0]
    assert row["opt_poll_ms"] < row["orig_poll_ms"]
    assert row["improvement"] > 0.0
    assert "Table 2" in data.render()


def test_poll_profile_driver():
    profile, result = figures.poll_profile_section32(n_requests=3000, seed=7)
    assert profile.n_polls == 3000 * 3
    assert 0.0 < profile.frac_over_10ms < 0.25
    assert result.nominal_rho > 0.8


def test_message_scaling_driver():
    data = figures.message_scaling_section24(
        client_counts=(2, 6), n_requests=2500, seed=8, parallel=False,
    )
    rows = {(r["n_clients"], r["policy"]): r for r in data.table.rows}
    # Broadcast control traffic grows with client count; polling doesn't.
    assert (
        rows[(6, "broadcast")]["control_messages_per_request"]
        > 2.0 * rows[(2, "broadcast")]["control_messages_per_request"]
    )
    polling_2 = rows[(2, "polling")]["control_messages_per_request"]
    polling_6 = rows[(6, "polling")]["control_messages_per_request"]
    assert polling_6 == pytest.approx(polling_2, rel=0.01)


def test_paper_workloads_constant():
    assert set(figures.PAPER_WORKLOADS) == {"medium_grain", "poisson_exp", "fine_grain"}
