"""Tests for ResultTable and text rendering."""

import pytest

from repro.experiments import ResultTable, format_table
from repro.experiments.report import format_series


def test_table_requires_columns():
    with pytest.raises(ValueError):
        ResultTable([])


def test_add_and_column():
    table = ResultTable(["a", "b"])
    table.add(a=1, b=2.5)
    table.add(a=3, b=4.5)
    assert len(table) == 2
    assert table.column("a") == [1, 3]
    with pytest.raises(KeyError):
        table.column("c")


def test_add_missing_column_rejected():
    table = ResultTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add(a=1)


def test_where_and_sorted_by():
    table = ResultTable(["x", "y"])
    for x, y in [(2, "b"), (1, "a"), (3, "c")]:
        table.add(x=x, y=y)
    filtered = table.where(lambda row: row["x"] > 1)
    assert filtered.column("x") == [2, 3]
    ordered = table.sorted_by("x")
    assert ordered.column("y") == ["a", "b", "c"]


def test_pivot_wide_format():
    table = ResultTable(["load", "policy", "resp"])
    for load in (0.5, 0.9):
        for policy in ("random", "ideal"):
            table.add(load=load, policy=policy, resp=load * (1 if policy == "ideal" else 2))
    wide = table.pivot(index="load", column="policy", value="resp")
    assert wide.columns == ["load", "ideal", "random"]
    assert wide.rows[0]["ideal"] == 0.5
    assert wide.rows[1]["random"] == 1.8


def test_pivot_missing_cells_render_dash():
    table = ResultTable(["i", "c", "v"])
    table.add(i=1, c="a", v=1.0)
    table.add(i=2, c="b", v=2.0)
    wide = table.pivot("i", "c", "v")
    text = wide.render()
    assert "-" in text


def test_render_alignment_and_floats():
    table = ResultTable(["name", "value"])
    table.add(name="x", value=1.23456)
    text = table.render(floatfmt="{:.2f}")
    assert "1.23" in text and "name" in text
    assert str(table)


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table(["a"], [["1", "2"]])


def test_format_table_empty_rows():
    text = format_table(["a", "bb"], [])
    assert "a" in text and "bb" in text


def test_format_series():
    text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [None, 0.4]})
    assert "s1" in text and "-" in text
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows


def test_pivot_numeric_columns_sort_numerically():
    # Regression: key=str rendered poll sizes {2, 10} as "10, 2".
    table = ResultTable(["load", "d", "resp"])
    for d in (10, 2, 3):
        table.add(load=0.9, d=d, resp=float(d))
    wide = table.pivot(index="load", column="d", value="resp")
    assert wide.columns == ["load", "2", "3", "10"]


def test_pivot_mixed_types_fall_back_to_str_order():
    table = ResultTable(["i", "c", "v"])
    table.add(i=1, c=2, v=1.0)
    table.add(i=1, c="b", v=2.0)
    wide = table.pivot("i", "c", "v")  # incomparable int/str: no raise
    assert wide.columns == ["i", "2", "b"]


def test_staleness_response_table_buckets():
    from repro.experiments import staleness_response_table

    rng = __import__("numpy").random.default_rng(0)
    staleness = rng.uniform(1e-4, 5e-4, size=200)
    resp = 0.01 + staleness * 10 + rng.uniform(0, 1e-4, size=200)
    text = staleness_response_table(staleness, resp, n_bins=4)
    lines = text.splitlines()
    assert lines[0].split()[:2] == ["staleness", "n"]
    assert len(lines) == 2 + 4  # header + rule + 4 quantile buckets
    assert "(no info)" not in text


def test_staleness_response_table_no_info_row():
    import numpy as np

    from repro.experiments import staleness_response_table

    staleness = np.array([1e-4, np.nan, np.nan])
    resp = np.array([0.01, 0.02, 0.03])
    text = staleness_response_table(staleness, resp)
    assert "(no info)" in text


def test_staleness_response_table_empty():
    import numpy as np

    from repro.experiments import staleness_response_table

    empty = np.array([])
    assert "no measured requests" in staleness_response_table(empty, empty)


def test_staleness_response_table_validation():
    import numpy as np

    from repro.experiments import staleness_response_table

    with pytest.raises(ValueError):
        staleness_response_table(np.zeros(2), np.zeros(3))
    with pytest.raises(ValueError):
        staleness_response_table(np.zeros(2), np.zeros(2), n_bins=0)
