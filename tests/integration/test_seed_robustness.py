"""Seed robustness: the headline claims must hold across seeds.

Single-seed shape tests can pass by luck; these re-check the decisive
orderings over three independent seeds (marked slow)."""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.runner import full_load_rho_for

SEEDS = (101, 202, 303)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_poll2_beats_random_every_seed_simulation(seed):
    base = SimulationConfig(workload="poisson_exp", load=0.9, n_servers=16,
                            n_requests=6000, seed=seed)
    random_rt = run_simulation(base.with_updates(policy="random")).mean_response_time
    poll2_rt = run_simulation(
        base.with_updates(policy="polling", policy_params={"poll_size": 2})
    ).mean_response_time
    ideal_rt = run_simulation(base.with_updates(policy="ideal")).mean_response_time
    assert ideal_rt < poll2_rt < 0.6 * random_rt


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_fig6c_crossover_every_seed(seed):
    base = SimulationConfig(workload="fine_grain", load=0.9, n_servers=16,
                            n_requests=8000, seed=seed, model="prototype")
    base = base.with_updates(full_load_rho=full_load_rho_for(base))
    random_rt = run_simulation(base.with_updates(policy="random")).mean_response_time
    poll3_rt = run_simulation(
        base.with_updates(policy="polling", policy_params={"poll_size": 3})
    ).mean_response_time
    poll8_rt = run_simulation(
        base.with_updates(policy="polling", policy_params={"poll_size": 8})
    ).mean_response_time
    assert poll3_rt < random_rt
    assert poll8_rt > 1.5 * poll3_rt
    assert poll8_rt > 0.9 * random_rt  # at or beyond the random crossover


@pytest.mark.slow
def test_discard_gain_positive_mean_across_seeds():
    gains = []
    for seed in SEEDS:
        base = SimulationConfig(workload="fine_grain", load=0.9, n_servers=16,
                                n_requests=8000, seed=seed, model="prototype")
        base = base.with_updates(full_load_rho=full_load_rho_for(base))
        original = run_simulation(
            base.with_updates(policy="polling", policy_params={"poll_size": 3})
        ).mean_response_time
        optimized = run_simulation(
            base.with_updates(
                policy="polling",
                policy_params={"poll_size": 3, "discard_slow": True},
            )
        ).mean_response_time
        gains.append(1.0 - optimized / original)
    assert np.mean(gains) > 0.02
    assert sum(g > 0 for g in gains) >= 2
