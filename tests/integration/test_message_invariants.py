"""Message-conservation invariants across policies.

Every control protocol has exact message-count identities; violating
any of them indicates a routing or lifecycle bug that summary
statistics would hide.
"""

import numpy as np
import pytest

from repro.cluster import ServiceCluster
from repro.core import make_policy
from repro.net import MessageKind


def run(policy, n_requests=1200, seed=71, n_servers=6, n_clients=3, load=0.8):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy, seed=seed, n_clients=n_clients
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    cluster.run()
    return cluster


def test_request_response_identity_all_policies():
    for name, params in [
        ("random", {}),
        ("polling", {"poll_size": 2}),
        ("broadcast", {"mean_interval": 0.05}),
        ("manager", {}),
        ("jiq", {}),
    ]:
        cluster = run(make_policy(name, **params))
        counts = cluster.network.message_counts
        assert counts[MessageKind.REQUEST] == 1200, name
        assert counts[MessageKind.RESPONSE] == 1200, name


def test_poll_reply_identity():
    policy = make_policy("polling", poll_size=3)
    cluster = run(policy)
    counts = cluster.network.message_counts
    assert counts[MessageKind.POLL] == counts[MessageKind.POLL_REPLY]
    assert counts[MessageKind.POLL] == 3 * 1200


def test_manager_query_reply_identity():
    cluster = run(make_policy("manager"))
    counts = cluster.network.message_counts
    assert counts[MessageKind.MANAGER_QUERY] == counts[MessageKind.MANAGER_REPLY]
    assert counts[MessageKind.MANAGER_QUERY] == 1200
    # Notifications: one per completed response, minus any still in
    # flight when the run stopped.
    assert 1200 - 5 <= counts[MessageKind.MANAGER_NOTIFY] <= 1200


def test_broadcast_fanout_identity():
    policy = make_policy("broadcast", mean_interval=0.02)
    cluster = run(policy, n_clients=4)
    counts = cluster.network.message_counts
    assert counts[MessageKind.BROADCAST] == policy.broadcasts_sent * 4


def test_total_messages_equals_sum_of_kinds():
    cluster = run(make_policy("polling", poll_size=2))
    counts = cluster.network.message_counts
    assert cluster.network.total_messages() == sum(counts.values())


def test_availability_publish_fanout():
    policy = make_policy("random")
    cluster = ServiceCluster(
        n_servers=4, policy=policy, seed=3, n_clients=2,
        availability=True, availability_refresh=0.05,
    )
    rng = np.random.default_rng(3)
    gaps = rng.exponential(0.002, 800)
    services = rng.exponential(0.004, 800)
    cluster.load_workload(gaps, services)
    cluster.run()
    counts = cluster.network.message_counts
    publishes = counts[MessageKind.PUBLISH]
    total_published = sum(p.publish_count for p in cluster.publishers.values())
    assert publishes == total_published * 2  # fan-out to 2 clients


def test_simulation_model_sends_no_stray_kinds():
    cluster = run(make_policy("random"))
    kinds = set(cluster.network.message_counts)
    assert kinds == {MessageKind.REQUEST, MessageKind.RESPONSE}
