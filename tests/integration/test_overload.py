"""Static-bound vs adaptive overload control under identical arrivals.

The acceptance claim for the overload subsystem (ISSUE 5, DESIGN.md
§12): at 2× offered load under bursty MMPP arrivals, a fixed-seed run
with overload control ON shows strictly higher goodput AND a strictly
lower p95-of-successes than the naive static-bound configuration under
the *same* arrival schedule. Arrival/service schedules derive from seed
substreams the overload layer never touches, so both legs see identical
offered work; the difference is purely what the servers do with it —
the static leg buffers 3.2 s of work per server, fails the deep entries
at their retry deadline, and then serves them anyway (wasted capacity),
while the adaptive leg sheds early and keeps admitted sojourns short.
"""

import numpy as np
import pytest

from repro.cluster import OverloadPolicy, ServiceCluster
from repro.core import make_policy
from repro.experiments.overload import (
    overload_cluster_params,
    overload_control_params,
)
from repro.sim.rng import RngHub
from repro.workload import make_workload

N_SERVERS = 8
N_REQUESTS = 2_000
OFFERED_LOAD = 2.0
MEAN_SERVICE = 0.05  # the mmpp_exp default (POISSON_EXP_MEAN_SERVICE)


def run_leg(overload, seed):
    hub = RngHub(seed)
    workload = make_workload("mmpp_exp")
    gaps, services = workload.generate(hub.stream("workload"), N_REQUESTS)
    # Rescale arrivals to the offered load on N_SERVERS unit-speed
    # servers — identically for both legs (same substream, same scale).
    gaps = gaps * ((MEAN_SERVICE / (N_SERVERS * OFFERED_LOAD)) / float(gaps.mean()))
    params = overload_cluster_params()
    cluster = ServiceCluster(
        N_SERVERS, make_policy("random"), seed=seed,
        availability=params["availability"],
        availability_refresh=params["availability_refresh"],
        availability_ttl=params["availability_ttl"],
        request_timeout=params["request_timeout"],
        max_retries=params["max_retries"],
        server_max_queue=params["server_max_queue"],
        overload=overload,
    )
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    responses = metrics.response_time[np.isfinite(metrics.response_time)]
    return {
        # goodput and tail over *all* successes, warmup included — the
        # whole run is the overload episode under test
        "goodput": (N_REQUESTS - int(metrics.failed.sum())) / N_REQUESTS,
        "p95": float(np.percentile(responses, 95)),
        "arrivals": gaps,
        "cluster": cluster,
    }


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_adaptive_beats_static_at_twice_capacity(seed):
    static = run_leg(None, seed)
    adaptive = run_leg(OverloadPolicy(**overload_control_params()), seed)
    counters = adaptive["cluster"].overload_counters()
    # The mechanisms actually engaged.
    assert counters["requests_shed"] > 0
    assert counters["rejects_sent"] > 0
    assert counters["overload_withdrawals"] > 0
    # The acceptance claim: strictly higher goodput AND strictly lower
    # p95 over the successes, same arrival schedule.
    assert adaptive["goodput"] > static["goodput"], (
        f"seed {seed}: adaptive goodput {adaptive['goodput']:.3f} not above "
        f"static {static['goodput']:.3f}"
    )
    assert adaptive["p95"] < static["p95"], (
        f"seed {seed}: adaptive p95 {adaptive['p95']:.3f} not below "
        f"static {static['p95']:.3f}"
    )


@pytest.mark.slow
def test_identical_arrival_schedules_across_modes():
    """Both legs must see the same offered work — otherwise the
    comparison above proves nothing."""
    static = run_leg(None, seed=0)
    adaptive = run_leg(OverloadPolicy(**overload_control_params()), seed=0)
    np.testing.assert_array_equal(static["arrivals"], adaptive["arrivals"])
    # The static leg never sheds, NACKs, or withdraws.
    assert static["cluster"].overload_counters() == {
        "requests_rejected": float(
            sum(s.rejected_count for s in static["cluster"].servers)
        )
    }


def test_overload_control_params_shape():
    """The canonical adaptive parameters: CoDel-style admission with
    probe jitter and availability withdrawal (fast_reject stays at its
    default True) — the integration claim above is tied to these."""
    params = overload_control_params()
    assert set(params) == {
        "sojourn_target", "interval", "ewma_alpha", "shed_jitter",
        "withdraw_after",
    }
    policy = OverloadPolicy(**params)
    assert policy.enabled and policy.fast_reject
