"""Execute the docs/api-walkthrough.md snippets (keeps the docs honest).

Each section of the walkthrough is reproduced here as a test; if an API
in the doc drifts, these fail.
"""

import numpy as np
import pytest


def test_section1_kernel():
    from repro.sim import Process, RngHub, Simulator

    sim = Simulator()
    log = []

    def heartbeat():
        for _ in range(3):
            yield 1.0
            log.append(sim.now)

    Process(sim, heartbeat())
    sim.run()
    assert log == [1.0, 2.0, 3.0]

    hub = RngHub(seed=7)
    assert hub.stream("arrivals") is hub.stream("arrivals")


def test_section2_workloads():
    from repro.sim import RngHub
    from repro.workload import (
        FINE_GRAIN_SPEC,
        extract_peak_portion,
        make_workload,
        synthesize_trace,
        synthesize_weekly_trace,
    )

    hub = RngHub(7)
    workload = make_workload("fine_grain")
    gaps, services = workload.generate(hub.stream("w"), 10_000)
    assert gaps.shape == (10_000,)

    trace = synthesize_trace(FINE_GRAIN_SPEC, n=50_000, rng=hub.stream("t"))
    scaled = trace.scaled_to_load(n_servers=16, load=0.9)
    assert scaled.offered_load(16) == pytest.approx(0.9)

    week = synthesize_weekly_trace(FINE_GRAIN_SPEC, hub.stream("wk"), scale=0.02)
    peak = extract_peak_portion(week)
    assert len(peak) < len(week)


def test_section3_experiment():
    from repro.experiments import SimulationConfig, parallel_sweep, replicate, run_simulation

    config = SimulationConfig(
        policy="polling", policy_params={"poll_size": 2, "discard_slow": True},
        workload="fine_grain", load=0.9, n_servers=16, n_requests=1500,
        seed=1, model="prototype", full_load_rho=0.99,
    )
    result = run_simulation(config)
    assert result.mean_response_time_ms > 0
    assert "poll" in result.message_counts

    results = parallel_sweep(
        [config.with_updates(seed=s, n_requests=400) for s in range(2)],
        parallel=False,
    )
    assert len(results) == 2
    interval = replicate(config.with_updates(n_requests=400), n_replications=2,
                         parallel=False)
    assert interval.mean > 0


def test_section4_cluster_control():
    from repro.cluster import FailureInjector, ServiceCluster
    from repro.core import make_policy
    from repro.sim import RngHub

    hub = RngHub(7)
    workload_gaps = np.random.default_rng(0).exponential(0.002, 5000)
    services = np.random.default_rng(1).exponential(0.004, 5000)
    cluster = ServiceCluster(
        n_servers=4,
        policy=make_policy("polling", poll_size=2, discard_slow=True),
        seed=3, availability=True, request_timeout=1.0,
    )
    cluster.load_workload(workload_gaps, services)
    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=2.0)
    injector.schedule_recovery(1, at=6.0)
    metrics = cluster.run()
    assert metrics.summary()["mean_response_time"] > 0
    del hub


def test_section5_application():
    from repro.cluster import ApplicationCluster, ServiceSpec, call, compute

    app = ApplicationCluster(n_nodes=6, seed=1, poll_size=2)

    def backend(ctx, request):
        yield compute(0.004)
        return request.payload * 2

    def front(ctx, request):
        yield compute(0.002)
        doubled = yield call("backend", partition=request.payload % 2,
                             payload=request.payload)
        return doubled + 1

    app.place_service(ServiceSpec("backend", n_partitions=2, replication=2),
                      node_ids=[0, 1, 2, 3], handler=backend)
    app.place_service(ServiceSpec("front", replication=2),
                      node_ids=[4, 5], handler=front, workers=32)
    signal = app.async_call(app.client_ids[0], "front", 0, payload=10)
    app.sim.run()
    assert signal.value == 21


def test_section6_analysis():
    from repro.analysis import (
        eq1_upperbound,
        mm1_mean_response_time,
        supermarket_mean_response_time,
    )

    assert eq1_upperbound(0.9) == pytest.approx(9.4737, abs=1e-3)
    assert supermarket_mean_response_time(0.9, 2) == pytest.approx(2.615, abs=0.01)
    assert mm1_mean_response_time(0.9, 0.05) == pytest.approx(0.5)


def test_section7_figures():
    from repro.experiments import figures

    data = figures.figure4_pollsize(
        loads=(0.9,), workloads=("poisson_exp",), poll_sizes=(2,),
        n_requests=1000, parallel=False,
    )
    assert "Figure 4" in data.render()
