"""Deterministic chaos regression: fixed seed, fixed numbers, both engines.

A fixed-seed crash-storm + partition + straggler campaign must produce
bit-identical metrics under the heap and calendar engines, on repeat
runs, and — with sufficient ``max_retries`` — complete every request
despite the injected faults.
"""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.chaos import chaos_cluster_params
from repro.experiments.parity import COMPARED_FIELDS, _values_equal

CHAOS_PARAMS = {
    "loss": 0.08,
    "duplicate": 0.04,
    "jitter_mean": 0.0005,
    "stragglers": 1,
    "straggle_factor": 4.0,
    "partitions": 1,
    "partition_servers": 2,
    "storms": 1,
    "storm_size": 2,
}

POLICIES = [
    ("polling", {"poll_size": 3, "discard_slow": True}),
    ("broadcast", {"mean_interval": 0.05}),
]


def chaos_config(policy, policy_params, engine="heap"):
    return SimulationConfig(
        policy=policy,
        policy_params=policy_params,
        workload="poisson_exp",
        load=0.9,
        n_servers=8,
        n_requests=1500,
        seed=42,
        engine=engine,
        cluster_params=chaos_cluster_params(max_retries=60),
        chaos_params=dict(CHAOS_PARAMS),
    )


@pytest.mark.parametrize("policy,policy_params", POLICIES)
def test_chaos_run_is_bit_identical_across_engines(policy, policy_params):
    heap = run_simulation(chaos_config(policy, policy_params, engine="heap"))
    calendar = run_simulation(chaos_config(policy, policy_params, engine="calendar"))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), (
            f"{policy}: field {name!r} differs between engines: "
            f"heap={getattr(heap, name)!r} calendar={getattr(calendar, name)!r}"
        )


@pytest.mark.parametrize("policy,policy_params", POLICIES)
def test_chaos_run_is_repeatable(policy, policy_params):
    first = run_simulation(chaos_config(policy, policy_params))
    second = run_simulation(chaos_config(policy, policy_params))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(first, name), getattr(second, name)), (
            f"{policy}: field {name!r} differs between identical runs"
        )


@pytest.mark.parametrize("policy,policy_params", POLICIES)
def test_chaos_faults_fired_and_all_requests_complete(policy, policy_params):
    result = run_simulation(chaos_config(policy, policy_params))
    counters = result.chaos_counters
    # The campaign actually injected faults...
    assert counters["messages_lost"] > 0
    assert counters["messages_duplicated"] > 0
    assert counters["n_chaos_events"] == 3  # straggle + partition + storm
    assert counters["request_timeouts_fired"] > 0
    # ...and with max_retries=60 the loss-recovery machinery absorbed
    # every one of them: nothing lost forever.
    assert result.n_failed == 0
    assert counters["requests_lost"] == 0
    assert np.isfinite(result.mean_response_time)
    assert counters["recovery_max_s"] > 0
