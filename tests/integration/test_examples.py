"""Smoke-run every example script end-to-end (reduced sizes via env)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "IDEAL oracle" in out
    assert "polling d=2" in out


@pytest.mark.slow
def test_search_engine_trace():
    out = run_example("search_engine_trace.py")
    assert "Fine-Grain trace" in out
    assert "prototype_ms" in out


@pytest.mark.slow
def test_photo_album_cluster():
    out = run_example("photo_album_cluster.py")
    assert "end-to-end page" in out
    assert "image_store/p1" in out


@pytest.mark.slow
def test_multitier_service():
    out = run_example("multitier_service.py")
    assert "photo_album" in out and "image_store" in out
    assert "completed" in out


@pytest.mark.slow
def test_failure_resilience():
    out = run_example("failure_resilience.py")
    assert "<- crash" in out
    assert "<- recovery" in out
    assert "failed requests: 0" in out
