"""Acceptance tests for the dispatcher tier + autoscaler (ISSUE 9).

Two fixed-seed claims, each checked on both exact engines at seeds
0/1/2:

1. **Failover beats static assignment under dispatcher crashes** — with
   a 3-dispatcher tier and a crash storm taking a dispatcher down for a
   quarter of the run (twice), goodput with failover assignment is
   strictly above the same run with static (pinned) assignment.

2. **Autoscaling beats static provisioning on efficiency at 2× load** —
   under bursty MMPP arrivals at 2× mean offered load (phases long
   enough for the 100 ms control loop to track), goodput per
   provisioned server with the closed-loop autoscaler is strictly
   above the static full-pool run. Both modes carry the overload
   subsystem's adaptive admission: past saturation an unprotected pool
   melts into retry ping-pong either way, so the capacity question is
   only meaningful on the hardened baseline.
"""

from functools import lru_cache

import pytest

from repro.experiments.autoscale import (
    autoscale_cluster_params,
    autoscale_dispatcher_params,
    autoscale_scaling_params,
)
from repro.experiments.config import SimulationConfig
from repro.experiments.overload import overload_control_params
from repro.experiments.runner import run_simulation

N_SERVERS = 16
N_REQUESTS = 4_000
ENGINES = ("heap", "calendar")
SEEDS = (0, 1, 2)

#: one dispatcher down for a quarter of the run, twice
CRASH_STORM = {
    "dispatcher_storms": 2,
    "dispatcher_storm_size": 1,
    "dispatcher_storm_frac": 0.25,
}

#: MMPP phases that rescale to ~1–2 s of simulated time — trackable by
#: the 100 ms control loop, with lulls deep enough to park into
TRACKABLE_BURSTS = {"sojourn": 80.0, "burst_ratio": 9.0}


@lru_cache(maxsize=None)
def run_failover_leg(assignment, seed, engine):
    config = SimulationConfig(
        policy="random",
        workload="mmpp_exp",
        load=0.8,
        n_servers=N_SERVERS,
        n_requests=N_REQUESTS,
        seed=seed,
        engine=engine,
        cluster_params=autoscale_cluster_params(),
        overload_params=overload_control_params(),
        dispatcher_params={
            "count": 3,
            "assignment": assignment,
            "suspect_cooldown": 0.5,
        },
        chaos_params=dict(CRASH_STORM),
    )
    result = run_simulation(config)
    return {
        "goodput": (N_REQUESTS - result.n_failed) / N_REQUESTS,
        "failovers": result.chaos_counters.get("dispatcher_failovers", 0.0),
    }


@lru_cache(maxsize=None)
def run_efficiency_leg(autoscaled, seed, engine):
    config = SimulationConfig(
        policy="random",
        workload="mmpp_exp",
        workload_params=dict(TRACKABLE_BURSTS),
        load=2.0,
        n_servers=N_SERVERS,
        n_requests=N_REQUESTS,
        seed=seed,
        engine=engine,
        cluster_params=autoscale_cluster_params(),
        overload_params=overload_control_params(),
        dispatcher_params=autoscale_dispatcher_params(),
        autoscaler_params=(
            autoscale_scaling_params(N_SERVERS) if autoscaled else {}
        ),
    )
    result = run_simulation(config)
    counters = result.chaos_counters
    completed = N_REQUESTS - result.n_failed
    mean_active = counters.get("autoscale_mean_active", float(N_SERVERS))
    return {
        "completed": completed,
        "mean_active": mean_active,
        "goodput_per_server": completed / mean_active,
        "ups": counters.get("autoscale_ups", 0.0),
    }


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_failover_beats_static_assignment_under_dispatcher_crash(seed, engine):
    static = run_failover_leg("static", seed, engine)
    failover = run_failover_leg("failover", seed, engine)
    assert failover["failovers"] > 0
    assert static["failovers"] == 0
    assert failover["goodput"] > static["goodput"], (
        f"seed {seed} {engine}: failover goodput {failover['goodput']:.1%} "
        f"not above static-assignment {static['goodput']:.1%}"
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_autoscaler_beats_static_pool_on_efficiency_at_2x(seed, engine):
    static = run_efficiency_leg(False, seed, engine)
    scaled = run_efficiency_leg(True, seed, engine)
    # the control loop actually ran (ramped up from the min pool) and
    # the run was cheaper than static provisioning
    assert scaled["ups"] > 0
    assert scaled["mean_active"] < N_SERVERS
    assert scaled["goodput_per_server"] > static["goodput_per_server"], (
        f"seed {seed} {engine}: autoscaled {scaled['goodput_per_server']:.1f} "
        f"req/server not above static {static['goodput_per_server']:.1f}"
    )


def test_both_engines_agree_bit_identically():
    """The tier + autoscaler event patterns order identically on the
    heap and calendar engines (spot check on the acceptance configs)."""
    for seed in SEEDS:
        a = run_efficiency_leg(True, seed, "heap")
        b = run_efficiency_leg(True, seed, "calendar")
        assert a == b
        x = run_failover_leg("failover", seed, "heap")
        y = run_failover_leg("failover", seed, "calendar")
        assert x == y
