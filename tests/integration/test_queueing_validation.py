"""Validate the cluster simulator against closed-form queueing theory.

These are the ground-truth checks that make the figure reproductions
trustworthy: a single simulated server fed Poisson/Exp must behave like
M/M/1; the supermarket model must predict the polling policy's scaling.
Network latency constants are subtracted where theory excludes them.
"""

import numpy as np
import pytest

from repro.analysis import (
    mg1_mean_response_time,
    mm1_mean_response_time,
    supermarket_mean_response_time,
)
from repro.cluster import ServiceCluster
from repro.core import make_policy
from repro.net import PAPER_NET


def run_cluster(policy, n_servers, load, n_requests, seed, service_cv=1.0,
                mean_service=0.02, **kwargs):
    cluster = ServiceCluster(n_servers=n_servers, policy=policy, seed=seed, **kwargs)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    if service_cv == 0.0:
        services = np.full(n_requests, mean_service)
    elif service_cv == 1.0:
        services = rng.exponential(mean_service, n_requests)
    else:
        from repro.workload.distributions import lognormal_from_moments

        services = lognormal_from_moments(mean_service, service_cv * mean_service).sample(
            rng, n_requests
        )
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    mask = metrics.measurement_slice(0.2)
    mean_response = float(metrics.response_time[mask].mean())
    return mean_response - PAPER_NET.request_response_total  # strip network


@pytest.mark.parametrize("rho", [0.5, 0.8])
def test_single_server_matches_mm1(rho):
    measured = run_cluster(
        make_policy("random"), n_servers=1, load=rho, n_requests=60_000, seed=101
    )
    expected = mm1_mean_response_time(rho, 0.02)
    assert measured == pytest.approx(expected, rel=0.08)


def test_single_server_md1_pollaczek_khinchine():
    rho = 0.8
    measured = run_cluster(
        make_policy("random"), n_servers=1, load=rho, n_requests=60_000,
        seed=103, service_cv=0.0,
    )
    expected = mg1_mean_response_time(rho, 0.02, service_scv=0.0)
    assert measured == pytest.approx(expected, rel=0.08)


def test_single_server_heavy_tail_pollaczek_khinchine():
    rho = 0.7
    cv = 2.0
    measured = run_cluster(
        make_policy("random"), n_servers=1, load=rho, n_requests=150_000,
        seed=105, service_cv=cv,
    )
    expected = mg1_mean_response_time(rho, 0.02, service_scv=cv * cv)
    assert measured == pytest.approx(expected, rel=0.15)


def test_random_on_cluster_is_parallel_mm1():
    """Random split of Poisson arrivals over k servers = k independent
    M/M/1 queues at the same rho."""
    rho = 0.8
    measured = run_cluster(
        make_policy("random"), n_servers=8, load=rho, n_requests=80_000, seed=107
    )
    expected = mm1_mean_response_time(rho, 0.02)
    assert measured == pytest.approx(expected, rel=0.08)


@pytest.mark.parametrize("d", [2, 3])
def test_polling_close_to_supermarket_mean_field(d):
    """Finite-n (16 servers) polling sits near the n→∞ mean field.

    The poll RTT (290 µs) and 145 µs-stale queue reads bias the
    simulation slightly above theory; accept a one-sided band."""
    rho = 0.9
    measured = run_cluster(
        make_policy("polling", poll_size=d),
        n_servers=16, load=rho, n_requests=60_000, seed=109 + d,
    )
    theory = supermarket_mean_response_time(rho, d, 0.02)
    assert theory * 0.9 < measured < theory * 1.6


def test_ideal_dominates_every_distributed_policy():
    rho, seed = 0.9, 113
    ideal = run_cluster(make_policy("ideal"), 8, rho, 30_000, seed)
    for name, params in [
        ("random", {}),
        ("polling", {"poll_size": 2}),
        ("broadcast", {"mean_interval": 0.05}),
        ("least_connections", {}),
    ]:
        other = run_cluster(make_policy(name, **params), 8, rho, 30_000, seed)
        assert ideal <= other * 1.05, f"{name} beat the oracle"


def test_response_scales_with_load():
    means = [
        run_cluster(make_policy("random"), 4, rho, 20_000, seed=127)
        for rho in (0.3, 0.6, 0.9)
    ]
    assert means[0] < means[1] < means[2]
