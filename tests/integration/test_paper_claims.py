"""End-to-end checks of the paper's headline claims (reduced sizes).

Each test reproduces one conclusion from §6 / the evaluation sections.
The full-size regenerations live in ``benchmarks/``; these run the same
drivers at sizes small enough for the test suite.
"""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, parallel_sweep, run_simulation
from repro.experiments.runner import full_load_rho_for


def sim_config(**kwargs):
    defaults = dict(workload="poisson_exp", load=0.9, n_servers=16,
                    n_requests=8000, seed=303)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def sim_results():
    """One shared sweep for the simulation-model claims."""
    specs = {
        "random": ("random", {}),
        "poll2": ("polling", {"poll_size": 2}),
        "poll3": ("polling", {"poll_size": 3}),
        "poll8": ("polling", {"poll_size": 8}),
        "ideal": ("ideal", {}),
        "broadcast_slow": ("broadcast", {"mean_interval": 1.0}),
        "broadcast_fast": ("broadcast", {"mean_interval": 0.005}),
    }
    configs = [
        sim_config(policy=p, policy_params=pp, label=k) for k, (p, pp) in specs.items()
    ]
    results = parallel_sweep(configs, parallel=False)
    return {r.config.label: r.mean_response_time for r in results}


def test_claim1_polling_well_suited(sim_results):
    """Conclusion 1: random polling is competitive with IDEAL across the
    board — within a small factor at 90% load."""
    assert sim_results["poll2"] < 2.5 * sim_results["ideal"]
    assert sim_results["poll2"] < 0.5 * sim_results["random"]


def test_claim2_small_poll_size_sufficient(sim_results):
    """Conclusion 2 (simulation half): poll size 2 captures most of the
    gain; larger polls add little."""
    gain_2 = sim_results["random"] - sim_results["poll2"]
    gain_8_over_2 = sim_results["poll2"] - sim_results["poll8"]
    assert gain_8_over_2 < 0.25 * gain_2


def test_claim2_large_poll_degrades_on_prototype():
    """Conclusion 2 (prototype half): poll size 8 degrades for
    fine-grain services — below even the random policy (Fig 6C)."""
    base = SimulationConfig(workload="fine_grain", load=0.9, n_servers=16,
                            n_requests=8000, seed=307, model="prototype")
    base = base.with_updates(full_load_rho=full_load_rho_for(base))
    random_result = run_simulation(base.with_updates(policy="random"))
    poll2 = run_simulation(
        base.with_updates(policy="polling", policy_params={"poll_size": 2})
    )
    poll8 = run_simulation(
        base.with_updates(policy="polling", policy_params={"poll_size": 8})
    )
    assert poll2.mean_response_time < random_result.mean_response_time
    assert poll8.mean_response_time > 2.0 * poll2.mean_response_time
    assert poll8.mean_response_time > random_result.mean_response_time


def test_claim3_discard_improves_fine_grain():
    """Conclusion 3: discarding slow polls helps fine-grain services
    (paper: up to 8.3%); the gain is much smaller/absent for the
    heavy-tailed medium-grain trace."""
    improvements = {}
    for workload in ("fine_grain", "medium_grain"):
        base = SimulationConfig(workload=workload, load=0.9, n_servers=16,
                                n_requests=10_000, seed=311, model="prototype")
        base = base.with_updates(full_load_rho=full_load_rho_for(base))
        original = run_simulation(
            base.with_updates(policy="polling", policy_params={"poll_size": 3})
        )
        optimized = run_simulation(
            base.with_updates(
                policy="polling",
                policy_params={"poll_size": 3, "discard_slow": True},
            )
        )
        improvements[workload] = (
            1.0 - optimized.mean_response_time / original.mean_response_time
        )
    assert improvements["fine_grain"] > 0.02
    assert improvements["fine_grain"] > improvements["medium_grain"] - 0.01


def test_broadcast_frequency_tradeoff(sim_results):
    """§2.2: 1s broadcast intervals are an order of magnitude worse than
    IDEAL at 90% load for fine-grain workloads; very fast broadcasts are
    close to IDEAL."""
    assert sim_results["broadcast_slow"] > 5.0 * sim_results["ideal"]
    assert sim_results["broadcast_fast"] < 1.7 * sim_results["ideal"]


def test_manager_emulates_ideal_on_prototype():
    """§4: the centralized manager tracks IDEAL within the TCP RTT."""
    base = SimulationConfig(workload="poisson_exp", load=0.7, n_servers=16,
                            n_requests=8000, seed=313, model="prototype")
    base = base.with_updates(full_load_rho=full_load_rho_for(base))
    manager = run_simulation(base.with_updates(policy="manager"))
    sim_ideal = run_simulation(
        base.with_updates(policy="ideal", model="simulation",
                          load=base.load * base.full_load_rho)
    )
    assert manager.mean_response_time < sim_ideal.mean_response_time * 1.5 + 1e-3


def test_poll_profile_matches_paper_section32():
    """§3.2: at d=3 and 90% load, ≈8.1% of polls exceed 10 ms and ≈5.6%
    exceed 20 ms."""
    from repro.experiments.figures import poll_profile_section32

    profile, _ = poll_profile_section32(n_requests=10_000, seed=317)
    assert profile.frac_over_10ms == pytest.approx(0.081, abs=0.035)
    assert profile.frac_over_20ms == pytest.approx(0.056, abs=0.030)
    assert profile.frac_over_20ms < profile.frac_over_10ms
