"""Behavioral regression: compare against the committed baseline.

If a refactor legitimately changes the numbers (different RNG
consumption with the same distributions), regenerate the archive:

    python -c "from repro.experiments.regression import write_baseline; write_baseline()"

and review the drift in the diff of benchmarks/baselines/canonical.json.
"""

import pytest

from repro.experiments.regression import (
    DEFAULT_BASELINE,
    canonical_configs,
    compare_to_baseline,
)


def test_baseline_archive_exists():
    assert DEFAULT_BASELINE.exists(), (
        "no committed baseline; run write_baseline()"
    )


def test_canonical_configs_cover_policy_families():
    labels = {config.label for config in canonical_configs()}
    assert {"random", "ideal", "poll2", "broadcast50ms", "jiq",
            "proto_manager"} <= labels
    models = {config.model for config in canonical_configs()}
    assert models == {"simulation", "prototype"}


@pytest.mark.slow
def test_no_behavioral_drift():
    comparisons = compare_to_baseline(tolerance=0.25)
    assert len(comparisons) == len(canonical_configs())
    # Identical code + identical seeds should in fact be exact.
    for comparison in comparisons:
        assert abs(comparison.drift) < 1e-9, comparison.row()
