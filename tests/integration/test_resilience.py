"""Naive vs hardened reliability under identical fault schedules.

The acceptance claim for the reliability layer (ISSUE 4, DESIGN.md §11):
with hedging + circuit breakers enabled, a fixed-seed chaos run shows a
lower p95 response time AND fewer terminal failures than the naive
timeout/retry lifecycle under the *same* fault schedule. Fault schedules
derive from seed substreams the reliability layer never touches, so the
two legs see identical crashes, storms, partitions, and message loss.
"""

import numpy as np
import pytest

from repro.cluster import (
    ChaosInjector,
    ChaosSpec,
    ReliabilityPolicy,
    ServiceCluster,
)
from repro.core import make_policy
from repro.experiments.chaos import hardened_reliability_params
from repro.sim.rng import RngHub
from repro.workload import make_workload

#: moderately hostile, fixed fault mix: 5% loss, two crash storms,
#: one partition episode — the regime the hardened layer targets
CHAOS = dict(
    loss=0.05, duplicate=0.01, storms=2, storm_size=3,
    storm_frac=0.12, partitions=1,
)


def run_leg(reliability, seed):
    hub = RngHub(seed)
    workload = make_workload("poisson_exp", mean_service=0.005)
    gaps, services = workload.generate(hub.stream("workload"), 4_000)
    # Rescale arrivals to 80% offered load on 8 unit-speed servers.
    gaps = gaps * ((0.005 / (8 * 0.8)) / float(gaps.mean()))
    cluster = ServiceCluster(
        8, make_policy("random"), seed=seed,
        request_timeout=0.25, max_retries=4,
        availability=True, availability_refresh=0.2, availability_ttl=0.6,
        reliability=reliability,
    )
    cluster.load_workload(gaps, services)
    cluster.chaos = ChaosInjector(cluster, spec=ChaosSpec(**CHAOS))
    metrics = cluster.run()
    summary = metrics.summary()
    return {
        "p95": summary["p95_response_time"],
        "failed": int(metrics.failed.sum()),
        "cluster": cluster,
    }


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 23])
def test_hardened_beats_naive_under_identical_faults(seed):
    naive = run_leg(None, seed)
    hardened = run_leg(ReliabilityPolicy(**hardened_reliability_params()), seed)
    engine = hardened["cluster"].reliability
    # The mechanisms actually engaged.
    assert engine.hedges_launched > 0
    assert engine.hedge_wins > 0
    assert engine.breaker_opens() > 0
    # The acceptance claim: lower tail latency AND fewer terminal losses.
    assert hardened["p95"] < naive["p95"], (
        f"seed {seed}: hardened p95 {hardened['p95']:.3f} not below "
        f"naive {naive['p95']:.3f}"
    )
    assert hardened["failed"] <= naive["failed"], (
        f"seed {seed}: hardened lost {hardened['failed']} requests, "
        f"naive lost {naive['failed']}"
    )


@pytest.mark.slow
def test_identical_fault_schedules_across_modes():
    """Both legs must see the same injected fault events — otherwise the
    comparison above proves nothing."""
    naive = run_leg(None, seed=3)
    hardened = run_leg(ReliabilityPolicy(**hardened_reliability_params()), seed=3)
    assert naive["cluster"].chaos.events == hardened["cluster"].chaos.events
    assert naive["cluster"].chaos.crash_log == hardened["cluster"].chaos.crash_log


def test_hardened_params_shape():
    """The canonical hardened parameters stay hedging + breakers only
    (deadline/backoff knobs are opt-in extras, not part of the tuned
    default) — the integration claim above is tied to these values."""
    params = hardened_reliability_params()
    assert set(params) == {"hedge_quantile", "breaker_threshold", "breaker_cooldown"}
    policy = ReliabilityPolicy(**params)
    assert policy.enabled and policy.deadline is None
