"""InvariantOracle: zero-overhead when off, bit-identical when on.

The oracle is a pure observer — it draws no randomness and schedules no
events — so the acceptance bar is strict: a verify-enabled run must be
bit-identical to the same config with the oracle off, and bit-identical
across the heap and calendar engines. The lifecycle checks themselves
are unit-tested against hand-driven state.
"""

import inspect

import pytest

from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.config import _VERIFY_PARAM_KEYS
from repro.experiments.parity import COMPARED_FIELDS, _values_equal
from repro.experiments.runner import build_cluster
from repro.verify import InvariantOracle, InvariantViolation

#: a fully-composed config: every subsystem the oracle scans is live
COMPOSED = SimulationConfig(
    policy="least_connections",
    load=1.0,
    n_servers=6,
    n_requests=400,
    seed=7,
    cluster_params={
        "availability": True,
        "availability_refresh": 0.2,
        "availability_ttl": 0.6,
        "request_timeout": 0.3,
        "max_retries": 3,
    },
    chaos_params={"loss": 0.05, "jitter_mean": 0.002},
    reliability_params={"breaker_threshold": 3, "hedge_quantile": 0.95},
    overload_params={"sojourn_target": 0.1, "interval": 0.05},
    dispatcher_params={"count": 2, "assignment": "failover"},
)


def _run(config):
    return run_simulation(config)


def test_oracle_off_by_default():
    cluster, _horizon = build_cluster(SimulationConfig(n_requests=10))
    assert cluster.oracle is None


def test_verify_params_match_oracle_signature():
    """The config whitelist and the oracle constructor must agree, so a
    valid config can never blow up inside the runner."""
    params = inspect.signature(InvariantOracle).parameters
    assert _VERIFY_PARAM_KEYS == set(params) - {"cluster"}


def test_enabled_false_leaves_cluster_unhooked():
    cluster, _horizon = build_cluster(
        SimulationConfig(n_requests=10, verify_params={"enabled": False})
    )
    assert cluster.oracle is None


def test_check_interval_must_be_positive():
    cluster, _horizon = build_cluster(SimulationConfig(n_requests=10))
    with pytest.raises(ValueError):
        InvariantOracle(cluster, check_interval=0)


def test_oracle_on_is_bit_identical_to_off():
    base = COMPOSED
    plain = _run(base)
    checked = _run(base.with_updates(verify_params={"enabled": True, "check_interval": 2}))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(plain, name), getattr(checked, name)), name


def test_oracle_on_is_engine_invariant():
    on = COMPOSED.with_updates(verify_params={"enabled": True, "check_interval": 4})
    heap = _run(on.with_updates(engine="heap"))
    calendar = _run(on.with_updates(engine="calendar"))
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), name


def test_verify_params_rejected_by_fast_engine():
    from repro.sim.fastpath import fastpath_violations

    config = COMPOSED.with_updates(verify_params={"enabled": True})
    assert any("verify" in v for v in fastpath_violations(config))


def test_verify_params_participate_in_cache_key():
    from repro.experiments.cache import config_key

    base = SimulationConfig(n_requests=50)
    on = base.with_updates(verify_params={"enabled": True})
    assert config_key(base) != config_key(on)


# ----------------------------------------------------------------------
# lifecycle checks, hand-driven
# ----------------------------------------------------------------------


class _Handle:
    """Minimal stand-in for :class:`repro.sim.engine.EventHandle`."""

    def __init__(self, seq, cancelled=False):
        self.seq = seq
        self.cancelled = cancelled


def _fresh_oracle(n_requests=10):
    cluster, _horizon = build_cluster(SimulationConfig(n_requests=n_requests))
    return InvariantOracle(cluster, check_interval=10_000)


def _request(cluster, index=0):
    from repro.cluster.request import Request

    return Request(index=index, client_id=0, service_time=0.05, arrival_time=0.0)


def test_clock_backwards_raises():
    oracle = _fresh_oracle()
    oracle._on_event(1.0, _Handle(seq=1))
    with pytest.raises(InvariantViolation, match="time ran backwards"):
        oracle._on_event(0.5, _Handle(seq=2))


def test_clock_tie_break_order_enforced():
    oracle = _fresh_oracle()
    oracle._on_event(1.0, _Handle(seq=5))
    with pytest.raises(InvariantViolation, match="tie-break"):
        oracle._on_event(1.0, _Handle(seq=4))
    # strictly later time resets the seq watermark
    oracle2 = _fresh_oracle()
    oracle2._on_event(1.0, _Handle(seq=5))
    oracle2._on_event(2.0, _Handle(seq=1))


def test_cancelled_event_execution_raises():
    oracle = _fresh_oracle()
    with pytest.raises(InvariantViolation, match="cancelled event"):
        oracle._on_event(1.0, _Handle(seq=1, cancelled=True))


def test_double_arrival_raises():
    oracle = _fresh_oracle()
    request = _request(oracle.cluster)
    oracle.on_arrival(request)
    with pytest.raises(InvariantViolation, match="arrived twice"):
        oracle.on_arrival(request)


def test_double_terminal_raises():
    oracle = _fresh_oracle()
    request = _request(oracle.cluster)
    oracle.on_arrival(request)
    request.done = True
    request.response_time = 0.01
    oracle.on_terminal(request, failed=False)
    with pytest.raises(InvariantViolation, match="second\\s+terminal"):
        oracle.on_terminal(request, failed=False)


def test_dispatch_after_terminal_raises():
    oracle = _fresh_oracle()
    request = _request(oracle.cluster)
    oracle.on_arrival(request)
    request.done = True
    request.failed = True
    oracle.on_terminal(request, failed=True)
    with pytest.raises(InvariantViolation, match="after\\s+terminal"):
        oracle.on_dispatch(request, server_id=0)


def test_dispatch_out_of_range_raises():
    oracle = _fresh_oracle()
    request = _request(oracle.cluster)
    oracle.on_arrival(request)
    with pytest.raises(InvariantViolation, match="out-of-range"):
        oracle.on_dispatch(request, server_id=oracle.cluster.n_servers)


def test_terminal_without_arrival_raises():
    oracle = _fresh_oracle()
    request = _request(oracle.cluster)
    request.done = True
    request.response_time = 0.01
    with pytest.raises(InvariantViolation, match="without arriving"):
        oracle.on_terminal(request, failed=False)


def test_trace_hook_chains_not_clobbers():
    cluster, _horizon = build_cluster(SimulationConfig(n_requests=10))
    calls = []
    cluster.sim.trace = lambda now, handle: calls.append(now)
    oracle = InvariantOracle(cluster, check_interval=10_000)
    cluster.sim.trace(1.5, _Handle(seq=1))
    assert calls == [1.5]
    assert oracle.events_seen == 1
