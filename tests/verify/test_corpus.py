"""Reproducer corpus regression: every shipped spec replays clean.

Each JSON under ``tests/verify/corpus/`` is a shrunk reproducer for a
violation the fuzzer found against earlier code (the ``note`` field
records the original failure). Replaying them here keeps the fixes
honest: a regression re-surfaces as a deterministic
:class:`InvariantViolation` with the exact message recorded in the note,
on both engines.
"""

from pathlib import Path

import pytest

from repro.verify import fuzz

CORPUS = sorted(
    (Path(__file__).parent / "corpus").glob("*.json"), key=lambda p: p.name
)


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 3


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_spec_is_well_formed(path):
    assert fuzz.validate_spec_file(path) == []
    spec = fuzz.load_spec(path)
    # provenance: every corpus entry records what it reproduced
    assert "note" in spec and spec["note"], path


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_replays_clean_on_both_engines(path):
    outcome = fuzz.replay(path)
    assert outcome.ok, f"{path.name}: {outcome.status} {outcome.message}"
