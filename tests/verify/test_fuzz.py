"""Fault-schedule fuzzer: deterministic sampling, validation, shrinking.

The fuzzer's guarantees are structural: a spec is a pure function of
``(seed, case)``; malformed specs are rejected with named problems
before any simulation runs; and the shrinker reduces a failing schedule
to a minimal reproducer while preserving the failure class. All three
are testable without finding a real bug — the shrinker test injects a
synthetic ``run_fn`` whose failure condition is known exactly.
"""

import json

import pytest

from repro.verify import fuzz


def test_sample_case_is_deterministic():
    a = fuzz.sample_case(0, 7)
    b = fuzz.sample_case(0, 7)
    assert a == b
    assert fuzz.sample_case(0, 8) != a
    assert fuzz.sample_case(1, 7) != a


def test_sample_case_json_round_trips_exactly():
    spec = fuzz.sample_case(3, 11)
    assert json.loads(json.dumps(spec)) == spec


def test_sampled_specs_validate():
    for case in range(30):
        spec = fuzz.sample_case(0, case)
        assert fuzz.validate_spec(spec) == [], (case, fuzz.validate_spec(spec))


def test_sampled_specs_exclude_manager_policy():
    """The manager policy's count drift under timeout retries is a known
    exclusion (see fuzz.py) — it must never enter the sampled pool."""
    policies = {
        fuzz.sample_case(0, case)["config"].get("policy") for case in range(60)
    }
    assert "manager" not in policies
    assert len(policies) >= 3  # the pool is actually being explored


@pytest.mark.parametrize(
    "mutate, expected",
    [
        (lambda s: s.update(schema=99), "schema"),
        (lambda s: s.update(config="nope"), "config"),
        (lambda s: s["config"].update(engine="heap"), "engine"),
        (lambda s: s["config"].update(verify_params={"enabled": True}), "verify_params"),
        (lambda s: s.update(check_interval=0), "check_interval"),
        (lambda s: s["schedule"].append({"kind": "meteor", "at_frac": 0.5}), "kind"),
        (lambda s: s["schedule"].append({"kind": "crash", "at_frac": 2.0, "node": 0}), "at_frac"),
        (lambda s: s["schedule"].append({"kind": "crash", "at_frac": 0.5}), "node"),
        (lambda s: s["config"].update(chaos_params={"bogus_knob": 1}), "config rejected"),
    ],
)
def test_validate_spec_names_the_problem(mutate, expected):
    spec = fuzz.sample_case(0, 0)
    mutate(spec)
    problems = fuzz.validate_spec(spec)
    assert problems, f"mutation not caught ({expected})"
    assert any(expected in p for p in problems), problems


def test_load_spec_raises_on_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": 1}')
    with pytest.raises(ValueError, match="config"):
        fuzz.load_spec(path)
    assert fuzz.validate_spec_file(path)
    assert fuzz.validate_spec_file(tmp_path / "missing.json")


def test_save_load_round_trip(tmp_path):
    spec = fuzz.sample_case(0, 2)
    path = fuzz.save_spec(spec, tmp_path / "spec.json")
    assert fuzz.load_spec(path) == spec


def test_run_spec_is_deterministic():
    spec = fuzz.sample_case(0, 1)
    spec["config"]["n_requests"] = 80
    first = fuzz.run_spec(spec)
    second = fuzz.run_spec(spec)
    assert first == second
    assert first.status == "ok", first


def test_outcome_signature_extracts_category():
    outcome = fuzz.CaseOutcome(
        status="violation",
        message="[t=1.000000000] conservation: request 5 arrived twice",
        engine="heap",
    )
    assert fuzz.outcome_signature(outcome) == ("violation", "conservation")
    assert fuzz.outcome_signature(fuzz.CaseOutcome(status="ok")) == ("ok",)


# ----------------------------------------------------------------------
# shrinker
# ----------------------------------------------------------------------


def _synthetic_spec(n_events=24):
    """A hand-built spec whose 'violation' is fully under test control."""
    return {
        "schema": fuzz.SPEC_SCHEMA,
        "fuzz_seed": 0,
        "case": 0,
        "check_interval": 8,
        "config": {
            "policy": "random",
            "load": 1.0,
            "n_servers": 8,
            "n_requests": 400,
            "seed": 0,
            "cluster_params": {},
            "chaos_params": {"loss": 0.01},
            "overload_params": {"sojourn_target": 0.1},
        },
        "schedule": [
            {"kind": "crash", "at_frac": i / n_events, "node": i % 4}
            for i in range(n_events)
        ],
    }


def test_ddmin_finds_single_culprit():
    # fails iff item 13 is present — ddmin must isolate exactly it
    result = fuzz._ddmin(list(range(24)), lambda items: 13 in items)
    assert result == [13]


def test_shrinker_hits_25_percent_bound():
    """ISSUE acceptance: for a synthetic violation triggered by one
    specific schedule event, the shrunk schedule is <= 25% of the
    original length (here: 1 of 24 events survives)."""
    spec = _synthetic_spec(n_events=24)
    culprit = spec["schedule"][13]

    def run_fn(candidate):
        # the "violation" fires iff the culprit event survives AND the
        # overload subsystem is still configured (so phase 3 can only
        # drop the other optional dicts)
        triggered = any(e == culprit for e in candidate.get("schedule", []))
        if triggered and "overload_params" in candidate["config"]:
            return ("violation", "synthetic")
        return ("ok",)

    result = fuzz.shrink_spec(spec, run_fn=run_fn)
    assert result.original_events == 24
    assert result.final_events == 1
    assert result.final_events <= 0.25 * result.original_events
    assert result.spec["schedule"] == [culprit]
    # phases 2-4 shrank the rest of the spec too
    assert result.final_requests < result.original_requests
    assert result.spec["config"]["n_servers"] < 8
    assert "chaos_params" not in result.spec["config"]
    assert "overload_params" in result.spec["config"]
    assert result.steps > 0


def test_shrinker_preserves_failure_signature_not_any_failure():
    """A candidate that fails *differently* must not be accepted."""
    spec = _synthetic_spec(n_events=8)

    def run_fn(candidate):
        events = candidate.get("schedule", [])
        if not events:
            return ("violation", "different-category")
        return ("violation", "target") if len(events) >= 2 else ("ok",)

    result = fuzz.shrink_spec(spec, run_fn=run_fn, target=("violation", "target"))
    assert result.final_events == 2
    assert fuzz.outcome_signature  # signature helper stays importable


def test_fuzz_campaign_smoke(tmp_path):
    report = fuzz.fuzz_campaign(seed=0, budget=3, out_dir=tmp_path)
    assert report.clean, report.render()
    assert report.n_ok == 3
    assert "3 clean" in report.render()
    assert not list(tmp_path.glob("*.json"))  # no findings -> no files
