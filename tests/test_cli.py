"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["fig4", "--requests", "500", "--seed", "2"])
    assert args.command == "fig4"
    assert args.requests == 500
    assert args.seed == 2


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig2", "fig3", "fig4", "fig6", "table2"):
        assert name in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Fine-Grain trace" in out
    assert "regenerated in" in out


def test_fig2_command_small(capsys):
    assert main(["fig2", "--requests", "30000"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "Eq.1" in out


def test_fig4_command_small(capsys):
    assert main(["fig4", "--requests", "2000", "--serial"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "poll-2" in out


def test_profile_command_small(capsys):
    assert main(["profile", "--requests", "3000"]) == 0
    out = capsys.readouterr().out
    assert ">10ms" in out


def test_compare_command_small(capsys):
    assert main(["compare", "--requests", "600", "--replications", "2",
                 "--serial", "--load", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "ideal" in out and "±" in out
    # Sorted ascending: the oracle line comes before random's.
    assert out.index("ideal") < out.index("random")
