"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["fig4", "--requests", "500", "--seed", "2"])
    assert args.command == "fig4"
    assert args.requests == 500
    assert args.seed == 2


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig2", "fig3", "fig4", "fig6", "table2"):
        assert name in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Fine-Grain trace" in out
    assert "regenerated in" in out


def test_fig2_command_small(capsys):
    assert main(["fig2", "--requests", "30000"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "Eq.1" in out


def test_fig4_command_small(capsys):
    assert main(["fig4", "--requests", "2000", "--serial"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "poll-2" in out


def test_profile_command_small(capsys):
    assert main(["profile", "--requests", "3000"]) == 0
    out = capsys.readouterr().out
    assert ">10ms" in out


def test_compare_command_small(capsys):
    assert main(["compare", "--requests", "600", "--replications", "2",
                 "--serial", "--load", "0.8", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "ideal" in out and "±" in out
    # Sorted ascending: the oracle line comes before random's.
    assert out.index("ideal") < out.index("random")


def test_parser_engine_and_cache_flags():
    parser = build_parser()
    args = parser.parse_args(["fig3", "--engine", "calendar",
                              "--cache-dir", "/tmp/x", "--no-cache", "--quick"])
    assert args.engine == "calendar"
    assert args.cache_dir == "/tmp/x"
    assert args.no_cache and args.quick
    with pytest.raises(SystemExit):
        parser.parse_args(["fig3", "--engine", "splay"])


def test_quick_sets_default_requests_only(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["fig4", "--quick", "--requests", "800", "--serial"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out  # --requests wins over --quick


def test_quick_without_preset_warns(capsys):
    """--quick on a command with no preset size says so instead of
    silently running at the publication size."""
    assert main(["table1", "--quick", "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "no preset for 'table1'" in captured.err
    assert "Table 1" in captured.out  # command still runs


def test_cache_round_trip_via_cli(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["fig4", "--requests", "600", "--serial"]) == 0
    first = capsys.readouterr().out
    assert "cache: 0 hits" in first
    assert main(["fig4", "--requests", "600", "--serial"]) == 0
    second = capsys.readouterr().out
    assert "0 misses" in second  # fully served from the cache
    # identical table either way
    table = lambda s: [l for l in s.splitlines() if "poll-" in l]  # noqa: E731
    assert table(first) == table(second)


def test_no_cache_flag_disables_cache(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["fig4", "--requests", "600", "--serial", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "cache:" not in out
    assert not any(tmp_path.iterdir())


def test_engine_flag_changes_nothing_numerically(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    outputs = []
    for engine in ("heap", "calendar"):
        assert main(["fig4", "--requests", "600", "--serial",
                     "--no-cache", "--engine", engine]) == 0
        out = capsys.readouterr().out
        outputs.append([l for l in out.splitlines() if "poll-" in l])
    assert outputs[0] == outputs[1]


def test_parity_command_small(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["parity", "--requests", "300", "--serial"]) == 0
    out = capsys.readouterr().out
    assert "engine parity: OK" in out


def test_policy_param_parsing():
    from repro.cli import _parse_policy_params

    params = _parse_policy_params(
        ["poll_size=3", "discard_slow=true", "mean_interval=0.1", "name=x"]
    )
    assert params == {
        "poll_size": 3, "discard_slow": True, "mean_interval": 0.1, "name": "x",
    }
    with pytest.raises(SystemExit):
        _parse_policy_params(["oops"])


def test_trace_command_small(capsys, tmp_path):
    out_dir = tmp_path / "telemetry"
    assert main(["trace", "--requests", "200", "--seed", "0", "--no-cache",
                 "--export-dir", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "request-lifecycle telemetry" in out
    assert "staleness" in out
    assert "schema validated" in out
    assert (out_dir / "spans.jsonl").exists()
    assert (out_dir / "series.csv").exists()
    assert (out_dir / "accounting.json").exists()


def test_resilience_command_small(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["resilience", "--requests", "300", "--serial", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "naive" in out and "hardened" in out
    assert "per-cell deltas (identical fault schedules)" in out
    assert "hardened vs naive" in out


def test_trace_command_policy_params(capsys):
    assert main(["trace", "--requests", "200", "--seed", "1", "--no-cache",
                 "--policy", "broadcast",
                 "--policy-param", "mean_interval=0.05"]) == 0
    out = capsys.readouterr().out
    assert "broadcast(mean_interval=0.05)" in out
    assert "broadcasts_sent" in out


def test_scenario_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["scenario", "--spec", "grid.yaml", "--validate"])
    assert args.command == "scenario"
    assert args.spec == "grid.yaml"
    assert args.validate


def test_scenario_validate_builtin(capsys):
    assert main(["scenario", "--validate", "--quick", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "scenario OK" in out and "32 cells" in out
    assert "replay-bursty" in out  # the trace-replay axis is in the grid


def test_scenario_validate_names_the_offending_axis(tmp_path, capsys):
    spec = tmp_path / "bad.yaml"
    spec.write_text(
        "name: bad\n"
        "policies:\n"
        "  - label: x\n"
        "    policy: no_such_policy\n"
    )
    with pytest.raises(SystemExit) as err:
        main(["scenario", "--spec", str(spec), "--validate", "--no-cache"])
    message = str(err.value)
    assert "FAILED" in message
    assert "axis 'policies'" in message and "no_such_policy" in message


def test_scenario_runs_a_spec_file(tmp_path, capsys):
    import json

    spec = tmp_path / "tiny.json"
    spec.write_text(json.dumps({
        "name": "tiny",
        "n_requests": 200,
        "n_servers": 4,
        "loads": [0.5, 0.8],
        "policies": [{"label": "rnd", "policy": "random"}],
    }))
    archive = tmp_path / "results.json"
    assert main(["scenario", "--spec", str(spec), "--serial", "--no-cache",
                 "--export-dir", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "Scenario 'tiny': 2 cells" in out
    assert "goodput_pct" in out
    from repro.experiments import load_results

    assert len(load_results(archive)) == 2


def test_scenario_cache_round_trip(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import json

    spec = tmp_path / "tiny.json"
    spec.write_text(json.dumps({
        "name": "tiny", "n_requests": 200, "n_servers": 4,
        "policies": [{"label": "rnd", "policy": "random"}],
    }))
    assert main(["scenario", "--spec", str(spec), "--serial"]) == 0
    first = capsys.readouterr().out
    assert "cache: 0 hits, 1 misses" in first
    assert main(["scenario", "--spec", str(spec), "--serial"]) == 0
    second = capsys.readouterr().out
    assert "cache: 1 hits, 0 misses" in second
