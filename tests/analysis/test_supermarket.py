"""Unit tests for the supermarket mean-field model."""

import numpy as np
import pytest

from repro.analysis import (
    mm1_mean_queue_length,
    mm1_mean_response_time,
    supermarket_fixed_point,
    supermarket_mean_queue_length,
    supermarket_mean_response_time,
    supermarket_ode_trajectory,
)


def test_fixed_point_d1_is_geometric():
    rho = 0.8
    s = supermarket_fixed_point(rho, 1, k_max=10)
    assert np.allclose(s, rho ** np.arange(11))


def test_fixed_point_d2_doubly_exponential():
    rho = 0.9
    s = supermarket_fixed_point(rho, 2, k_max=6)
    expected = rho ** (2.0 ** np.arange(7) - 1.0)
    assert np.allclose(s, expected)


def test_fixed_point_monotone_decreasing():
    s = supermarket_fixed_point(0.95, 3, k_max=20)
    assert (np.diff(s) <= 1e-12).all()
    assert s[0] == 1.0


def test_fixed_point_zero_load():
    s = supermarket_fixed_point(0.0, 2, k_max=4)
    assert s.tolist() == [1.0, 0.0, 0.0, 0.0, 0.0]


def test_fixed_point_no_overflow_large_k():
    s = supermarket_fixed_point(0.99, 8, k_max=200)
    assert np.isfinite(s).all()
    assert s[-1] == 0.0


def test_mean_queue_length_d1_matches_mm1():
    for rho in (0.3, 0.7, 0.9):
        assert supermarket_mean_queue_length(rho, 1) == pytest.approx(
            mm1_mean_queue_length(rho), rel=1e-9
        )


def test_mean_response_time_d1_matches_mm1():
    for rho in (0.3, 0.7, 0.9):
        assert supermarket_mean_response_time(rho, 1, 0.05) == pytest.approx(
            mm1_mean_response_time(rho, 0.05), rel=1e-9
        )


def test_poll_size_two_captures_most_benefit():
    """Mitzenmacher's headline (and the paper's conclusion #2):
    d=2 is an exponential improvement; d>2 adds much less."""
    rho = 0.9
    t1 = supermarket_mean_response_time(rho, 1)
    t2 = supermarket_mean_response_time(rho, 2)
    t3 = supermarket_mean_response_time(rho, 3)
    t8 = supermarket_mean_response_time(rho, 8)
    assert t1 / t2 > 3.0                      # huge gain from d=1 to d=2
    assert t2 / t3 < 1.35                     # modest gain from 2 to 3
    assert (t3 - t8) < 0.1 * (t1 - t2)        # gains beyond 3 are marginal
    assert t8 >= 1.0                          # bounded below by service time


def test_response_time_decreasing_in_d():
    rho = 0.95
    values = [supermarket_mean_response_time(rho, d) for d in (1, 2, 3, 4, 8)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_ode_converges_to_fixed_point():
    rho, d = 0.9, 2
    _, trajectory = supermarket_ode_trajectory(rho, d, t_max=200.0, k_max=32)
    final = trajectory[-1]
    expected = supermarket_fixed_point(rho, d, k_max=32)
    assert np.allclose(final, expected, atol=5e-4)


def test_ode_starts_empty():
    _, trajectory = supermarket_ode_trajectory(0.5, 2, t_max=1.0, k_max=8)
    assert trajectory[0, 0] == 1.0
    assert np.allclose(trajectory[0, 1:], 0.0)


def test_ode_tail_stays_in_unit_interval():
    _, trajectory = supermarket_ode_trajectory(0.95, 4, t_max=50.0, k_max=16)
    assert (trajectory >= -1e-9).all()
    assert (trajectory <= 1.0 + 1e-9).all()


def test_validation():
    with pytest.raises(ValueError):
        supermarket_fixed_point(1.0, 2)
    with pytest.raises(ValueError):
        supermarket_fixed_point(0.5, 0)
    with pytest.raises(ValueError):
        supermarket_mean_response_time(0.5, 2, mean_service=0.0)
    with pytest.raises(ValueError):
        supermarket_ode_trajectory(0.5, 2, t_max=0.0)
    with pytest.raises(ValueError):
        supermarket_ode_trajectory(0.5, 2, t_max=1.0, k_max=4, initial=np.zeros(3))
