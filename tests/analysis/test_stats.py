"""Unit tests for streaming statistics."""

import math

import numpy as np
import pytest

from repro.analysis import OnlineStats, P2Quantile, batch_means_ci, summarize


def test_online_stats_matches_numpy():
    rng = np.random.default_rng(0)
    values = rng.lognormal(0.0, 1.0, 10_000)
    stats = OnlineStats()
    stats.push_many(values)
    assert stats.n == 10_000
    assert stats.mean == pytest.approx(values.mean(), rel=1e-12)
    assert stats.variance == pytest.approx(values.var(ddof=1), rel=1e-10)
    assert stats.min == values.min()
    assert stats.max == values.max()


def test_online_stats_empty():
    stats = OnlineStats()
    assert math.isnan(stats.mean)
    assert math.isnan(stats.variance)
    assert math.isnan(stats.std)


def test_online_stats_single_value():
    stats = OnlineStats()
    stats.push(3.0)
    assert stats.mean == 3.0
    assert math.isnan(stats.variance)


def test_online_stats_merge_equals_sequential():
    rng = np.random.default_rng(1)
    a_values = rng.normal(0, 1, 5000)
    b_values = rng.normal(10, 2, 3000)
    a, b, both = OnlineStats(), OnlineStats(), OnlineStats()
    a.push_many(a_values)
    b.push_many(b_values)
    both.push_many(np.concatenate([a_values, b_values]))
    merged = a.merge(b)
    assert merged.n == both.n
    assert merged.mean == pytest.approx(both.mean, rel=1e-12)
    assert merged.variance == pytest.approx(both.variance, rel=1e-10)
    assert merged.min == both.min and merged.max == both.max


def test_online_stats_merge_with_empty():
    a = OnlineStats()
    a.push(1.0)
    merged = a.merge(OnlineStats())
    assert merged.n == 1 and merged.mean == 1.0


@pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
def test_p2_quantile_close_to_numpy(p):
    rng = np.random.default_rng(3)
    values = rng.exponential(1.0, 50_000)
    estimator = P2Quantile(p)
    for value in values:
        estimator.push(float(value))
    exact = np.quantile(values, p)
    assert estimator.value == pytest.approx(exact, rel=0.08)


def test_p2_quantile_few_samples():
    estimator = P2Quantile(0.5)
    assert math.isnan(estimator.value)
    for value in [5.0, 1.0, 3.0]:
        estimator.push(value)
    assert estimator.value in (1.0, 3.0, 5.0)


def test_p2_validation():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_batch_means_ci_covers_iid_mean():
    rng = np.random.default_rng(4)
    values = rng.normal(5.0, 2.0, 20_000)
    ci = batch_means_ci(values, n_batches=20)
    assert ci.low < 5.0 < ci.high
    assert ci.mean == pytest.approx(values[: (20_000 // 20) * 20].mean())
    assert ci.half_width > 0


def test_batch_means_ci_narrows_with_more_data():
    rng = np.random.default_rng(5)
    narrow = batch_means_ci(rng.normal(0, 1, 100_000), n_batches=20)
    wide = batch_means_ci(rng.normal(0, 1, 1_000), n_batches=20)
    assert narrow.half_width < wide.half_width


def test_batch_means_validation():
    values = np.ones(100)
    with pytest.raises(ValueError):
        batch_means_ci(values, n_batches=1)
    with pytest.raises(ValueError):
        batch_means_ci(values, confidence=1.5)
    with pytest.raises(ValueError):
        batch_means_ci(np.ones(10), n_batches=20)


def test_summarize_keys_and_values():
    out = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
    assert out["n"] == 4
    assert out["mean"] == 2.5
    assert out["min"] == 1.0 and out["max"] == 4.0
    assert out["p50"] == 2.5


def test_summarize_empty():
    out = summarize(np.array([]))
    assert out["n"] == 0
    assert math.isnan(out["mean"])
