"""Unit tests for queueing formulas."""

import numpy as np
import pytest

from repro.analysis import (
    erlang_c,
    mg1_mean_response_time,
    mm1_mean_queue_length,
    mm1_mean_response_time,
    mm1_mean_waiting_time,
    mm1_queue_length_pmf,
    mmk_mean_response_time,
)


def test_pmf_sums_to_one():
    pmf = mm1_queue_length_pmf(0.9, 2000)
    assert pmf.sum() == pytest.approx(1.0, abs=1e-10)


def test_pmf_matches_formula():
    pmf = mm1_queue_length_pmf(0.5, 5)
    expected = 0.5 * np.array([1, 0.5, 0.25, 0.125, 0.0625, 0.03125])
    assert np.allclose(pmf, expected)


def test_pmf_validation():
    with pytest.raises(ValueError):
        mm1_queue_length_pmf(1.0, 5)
    with pytest.raises(ValueError):
        mm1_queue_length_pmf(0.5, -1)


def test_mean_queue_length():
    assert mm1_mean_queue_length(0.5) == pytest.approx(1.0)
    assert mm1_mean_queue_length(0.9) == pytest.approx(9.0)
    assert mm1_mean_queue_length(0.0) == 0.0


def test_mean_queue_length_from_pmf():
    rho = 0.8
    pmf = mm1_queue_length_pmf(rho, 5000)
    assert (pmf * np.arange(5001)).sum() == pytest.approx(
        mm1_mean_queue_length(rho), abs=1e-8
    )


def test_response_and_waiting_consistent():
    rho, s = 0.7, 0.05
    assert mm1_mean_response_time(rho, s) == pytest.approx(
        mm1_mean_waiting_time(rho, s) + s
    )


def test_mm1_little_law():
    rho, s = 0.6, 0.02
    lam = rho / s
    assert lam * mm1_mean_response_time(rho, s) == pytest.approx(
        mm1_mean_queue_length(rho)
    )


def test_mg1_reduces_to_mm1_for_exponential():
    rho, s = 0.8, 0.05
    assert mg1_mean_response_time(rho, s, service_scv=1.0) == pytest.approx(
        mm1_mean_response_time(rho, s)
    )


def test_mg1_deterministic_halves_waiting():
    rho, s = 0.8, 0.05
    md1_wait = mg1_mean_response_time(rho, s, 0.0) - s
    mm1_wait = mm1_mean_response_time(rho, s) - s
    assert md1_wait == pytest.approx(mm1_wait / 2.0)


def test_mg1_heavy_tail_worse():
    rho, s = 0.9, 0.0289
    medium_scv = (0.0629 / 0.0289) ** 2
    assert mg1_mean_response_time(rho, s, medium_scv) > 3 * mm1_mean_response_time(
        rho, s
    ) / 2


def test_mg1_validation():
    with pytest.raises(ValueError):
        mg1_mean_response_time(0.5, 1.0, -1.0)


def test_erlang_c_single_server_equals_rho():
    # For k=1, P(wait) = rho.
    assert erlang_c(1, 0.7) == pytest.approx(0.7)


def test_erlang_c_bounds():
    for k, a in [(2, 1.0), (16, 14.4), (4, 3.9)]:
        p = erlang_c(k, a)
        assert 0.0 < p < 1.0


def test_erlang_c_zero_load():
    assert erlang_c(8, 0.0) == 0.0


def test_erlang_c_validation():
    with pytest.raises(ValueError):
        erlang_c(0, 0.5)
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)


def test_mmk_reduces_to_mm1():
    rho, s = 0.75, 0.05
    assert mmk_mean_response_time(1, rho, s) == pytest.approx(
        mm1_mean_response_time(rho, s)
    )


def test_mmk_queue_length_little_law():
    from repro.analysis.mm1 import mmk_mean_queue_length

    k, rho, s = 4, 0.8, 0.05
    lam = rho * k / s
    assert mmk_mean_queue_length(k, rho) == pytest.approx(
        lam * mmk_mean_response_time(k, rho, s)
    )
    # k=1 reduces to M/M/1.
    assert mmk_mean_queue_length(1, 0.6) == pytest.approx(
        mm1_mean_queue_length(0.6)
    )


def test_mmk_pooling_beats_separate_queues():
    """M/M/16 at rho=0.9 must be far better than 16 separate M/M/1s."""
    rho, s = 0.9, 0.05
    pooled = mmk_mean_response_time(16, rho, s)
    separate = mm1_mean_response_time(rho, s)
    assert pooled < separate / 3.0
    assert pooled > s  # but never better than bare service time
