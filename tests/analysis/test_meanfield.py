"""Mean-field/fluid solver tests (tier 3 of the validation ladder).

The fixed-seed regression values are the supermarket model's known
stationary quantities: at d=1 the system is M/M/1 (sojourn 1/(1-rho)
service times); at d>=2 the integrated fixed point must agree with the
analytic ``s_k = rho^{(d^k-1)/(d-1)}`` tail to solver accuracy.
"""

import numpy as np
import pytest

from repro.analysis.meanfield import (
    MeanFieldUnsupportedError,
    meanfield_prediction,
    solve_stationary,
)
from repro.experiments.config import SimulationConfig
from repro.net.latency import PAPER_NET


# ----------------------------------------------------------------------
# solver regression values
# ----------------------------------------------------------------------
def test_d1_reduces_to_mm1():
    # k_max must cover the geometric tail: truncating at k_max models
    # M/M/1/k_max, which undershoots 1/(1-rho) by ~rho^k_max/(1-rho).
    for rho in (0.3, 0.5, 0.9):
        solution = solve_stationary(rho, 1, k_max=256)
        assert solution.mean_sojourn == pytest.approx(1.0 / (1.0 - rho), rel=1e-4)


def test_supermarket_regression_values():
    # Known stationary sojourns (service-time units), pinned to guard
    # the solver against silent drift.
    assert solve_stationary(0.9, 2).mean_sojourn == pytest.approx(
        2.6140573, rel=1e-5
    )
    assert solve_stationary(0.7, 3).mean_sojourn == pytest.approx(
        1.3568422, rel=1e-5
    )


def test_integrated_fixed_point_matches_closed_form():
    for rho, d in [(0.5, 2), (0.9, 2), (0.8, 4), (0.99, 2)]:
        solution = solve_stationary(rho, d)
        assert solution.fixed_point_gap < 1e-5
        assert solution.residual <= 1e-8


def test_tail_shape_and_monotonicity():
    solution = solve_stationary(0.9, 2, k_max=32)
    assert solution.tail.shape == (33,)
    assert solution.tail[0] == 1.0
    assert np.all(np.diff(solution.tail) <= 1e-12)
    # Doubly-exponential decay: deep tail is numerically zero.
    assert solution.tail[-1] < 1e-12


def test_zero_load_is_trivially_empty():
    solution = solve_stationary(0.0, 2)
    assert solution.mean_queue_length == 0.0
    assert solution.mean_sojourn == 1.0


def test_invalid_parameters_raise():
    with pytest.raises(ValueError, match="rho"):
        solve_stationary(1.0, 2)
    with pytest.raises(ValueError, match="rho"):
        solve_stationary(-0.1, 2)
    with pytest.raises(ValueError, match="d"):
        solve_stationary(0.5, 0)


# ----------------------------------------------------------------------
# config -> prediction mapping
# ----------------------------------------------------------------------
def _config(**overrides):
    defaults = dict(
        policy="random",
        workload="poisson_exp",
        load=0.8,
        n_servers=1000,
        n_requests=1000,
        seed=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_prediction_degrees_and_offsets():
    random = meanfield_prediction(_config())
    assert random.d == 1
    assert random.latency_offset == pytest.approx(2.0 * PAPER_NET.request_one_way)
    assert random.mean_sojourn == pytest.approx(
        5.0 * 50e-3, rel=1e-4
    )  # M/M/1 at rho=0.8: 5 service times of 50 ms

    polling = meanfield_prediction(
        _config(policy="polling", policy_params={"poll_size": 3})
    )
    assert polling.d == 3
    assert polling.latency_offset == pytest.approx(
        PAPER_NET.udp_rtt + 2.0 * PAPER_NET.request_one_way
    )
    assert polling.mean_response_time < random.mean_response_time


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (dict(policy="broadcast", policy_params={"mean_interval": 0.01}), "policy"),
        (dict(policy="stale_jsq", policy_params={"update_interval": 0.02}), "policy"),
        (
            dict(policy="polling", policy_params={"poll_size": 3, "discard_slow": True}),
            "discard_slow",
        ),
        (dict(workload="poisson_uniform"), "workload"),
        (dict(load=1.2), "load"),
        (dict(model="prototype"), "model"),
    ],
)
def test_unmappable_configs_raise(overrides, fragment):
    with pytest.raises(MeanFieldUnsupportedError, match=fragment):
        meanfield_prediction(_config(**overrides))
