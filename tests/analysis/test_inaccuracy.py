"""Unit tests for the Eq. 1 bound and the FIFO queue-length machinery."""

import numpy as np
import pytest

from repro.analysis import (
    eq1_upperbound,
    eq1_upperbound_series,
    fifo_queue_length_steps,
    measure_inaccuracy,
)


def test_eq1_values_from_paper():
    # The paper's Figure 2 quotes an upper bound of 1.33 at 50% load.
    assert eq1_upperbound(0.5) == pytest.approx(4.0 / 3.0)
    assert eq1_upperbound(0.9) == pytest.approx(2 * 0.9 / (1 - 0.81))
    assert eq1_upperbound(0.0) == 0.0


def test_eq1_validation():
    with pytest.raises(ValueError):
        eq1_upperbound(1.0)
    with pytest.raises(ValueError):
        eq1_upperbound_series(-0.1)


@pytest.mark.parametrize("rho", [0.1, 0.5, 0.9])
def test_eq1_series_matches_closed_form(rho):
    """The brute-force double sum verifies the paper's algebra."""
    assert eq1_upperbound_series(rho) == pytest.approx(eq1_upperbound(rho), rel=1e-6)


def test_fifo_steps_single_job():
    times, queue = fifo_queue_length_steps(np.array([1.0]), np.array([2.0]))
    assert times.tolist() == [1.0, 3.0]
    assert queue.tolist() == [1.0, 0.0]


def test_fifo_steps_back_to_back():
    # Job 2 arrives while job 1 in service: departures at 3 and 5.
    times, queue = fifo_queue_length_steps(
        np.array([1.0, 2.0]), np.array([2.0, 2.0])
    )
    assert times.tolist() == [1.0, 2.0, 3.0, 5.0]
    assert queue.tolist() == [1.0, 2.0, 1.0, 0.0]


def test_fifo_steps_idle_gap():
    times, queue = fifo_queue_length_steps(
        np.array([0.0, 10.0]), np.array([1.0, 1.0])
    )
    assert times.tolist() == [0.0, 1.0, 10.0, 11.0]
    assert queue.tolist() == [1.0, 0.0, 1.0, 0.0]


def test_fifo_departure_before_arrival_at_tie():
    """A job arriving exactly at a departure sees the freed server."""
    times, queue = fifo_queue_length_steps(
        np.array([0.0, 1.0]), np.array([1.0, 1.0])
    )
    # Q never reaches 2: at t=1 the first departs as the second arrives.
    assert queue.max() == 1.0


def test_fifo_queue_never_negative_and_ends_zero():
    rng = np.random.default_rng(2)
    arrivals = np.cumsum(rng.exponential(1.0, 5000))
    services = rng.exponential(0.9, 5000)
    _, queue = fifo_queue_length_steps(arrivals, services)
    assert (queue >= 0).all()
    assert queue[-1] == 0.0


def test_fifo_validation():
    with pytest.raises(ValueError):
        fifo_queue_length_steps(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
    with pytest.raises(ValueError):
        fifo_queue_length_steps(np.array([1.0]), np.array([1.0, 2.0]))


def test_fifo_mm1_mean_queue_matches_theory():
    """Long M/M/1 run: time-average queue length ≈ rho/(1-rho)."""
    rng = np.random.default_rng(7)
    n = 400_000
    rho = 0.7
    arrivals = np.cumsum(rng.exponential(1.0, n))
    services = rng.exponential(rho, n)
    times, queue = fifo_queue_length_steps(arrivals, services)
    durations = np.diff(times)
    time_avg = float((queue[:-1] * durations).sum() / durations.sum())
    assert time_avg == pytest.approx(rho / (1 - rho), rel=0.05)


def test_measure_inaccuracy_zero_delay_is_zero():
    rng = np.random.default_rng(3)
    arrivals = np.cumsum(rng.exponential(1.0, 20_000))
    services = rng.exponential(0.5, 20_000)
    times, queue = fifo_queue_length_steps(arrivals, services)
    out = measure_inaccuracy(times, queue, np.array([0.0]), rng)
    assert out[0] == 0.0


def test_measure_inaccuracy_monotone_to_bound():
    """Inaccuracy grows with delay and approaches the Eq. 1 bound."""
    rng = np.random.default_rng(4)
    n = 300_000
    rho = 0.5
    arrivals = np.cumsum(rng.exponential(1.0, n))
    services = rng.exponential(rho, n)
    times, queue = fifo_queue_length_steps(arrivals, services)
    delays = np.array([0.5, 2.0, 50.0, 500.0]) * rho  # in service-time units
    out = measure_inaccuracy(times, queue, delays, rng, n_samples=50_000)
    assert out[0] < out[1] < out[2]
    assert out[3] == pytest.approx(eq1_upperbound(rho), rel=0.1)
    assert out[2] <= eq1_upperbound(rho) * 1.15


def test_measure_inaccuracy_validation():
    times = np.array([0.0, 1.0])
    queue = np.array([1.0, 0.0])
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        measure_inaccuracy(times, queue, np.array([-1.0]), rng)
    with pytest.raises(ValueError):
        measure_inaccuracy(times, queue, np.array([100.0]), rng)
