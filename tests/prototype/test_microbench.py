"""Tests for the CPU-spinning microbenchmark."""

import pytest

from repro.prototype import SpinCalibration, calibrate_spin, spin_for


def test_calibrate_validation():
    with pytest.raises(ValueError):
        calibrate_spin(0.0)


def test_calibration_measures_positive_rate():
    calibration = calibrate_spin(target_seconds=0.02)
    assert calibration.iterations_per_second > 1e5
    assert calibration.calibration_seconds >= 0.02


def test_iterations_for_scaling():
    calibration = SpinCalibration(iterations_per_second=1e6, calibration_seconds=0.05)
    assert calibration.iterations_for(0.01) == 10_000
    assert calibration.iterations_for(0.0) == 1
    with pytest.raises(ValueError):
        calibration.iterations_for(-1.0)


def test_spin_for_burns_requested_time():
    calibration = calibrate_spin(target_seconds=0.02)
    measured = spin_for(0.02, calibration)
    # Open-loop emulation: allow generous scheduling noise.
    assert 0.008 < measured < 0.1
