"""Tests for the 98%-under-2s full-load calibration."""

import pytest

from repro.prototype import calibrate_full_load
from repro.workload import make_workload


@pytest.fixture(scope="module")
def calibrations():
    out = {}
    for name in ("fine_grain", "poisson_exp", "medium_grain"):
        out[name] = calibrate_full_load(make_workload(name), n_requests=4000, seed=5)
    return out


def test_full_load_below_or_at_nominal_saturation(calibrations):
    for calibration in calibrations.values():
        assert 0.4 < calibration.nominal_rho_at_full_load <= 1.02


def test_fine_grain_has_least_headroom(calibrations):
    """Near-deterministic service -> the 2s criterion trips only near
    nominal saturation; heavy-tailed Medium-Grain trips much earlier.
    This ordering is what makes Figure 6C (and not 6A) collapse at d=8."""
    fine = calibrations["fine_grain"].nominal_rho_at_full_load
    poisson = calibrations["poisson_exp"].nominal_rho_at_full_load
    medium = calibrations["medium_grain"].nominal_rho_at_full_load
    # The robust invariant: fine-grain calibrates near saturation, the
    # variable-service workloads well below it. (The poisson/medium
    # ordering is noisy at short calibration runs, so not asserted.)
    assert fine > poisson and fine > medium
    assert fine > 0.95
    assert poisson < 0.96 and medium < 0.96


def test_achieved_fraction_near_target(calibrations):
    for calibration in calibrations.values():
        assert calibration.achieved_completion_fraction == pytest.approx(0.98, abs=0.015)


def test_nominal_scaling(calibrations):
    calibration = calibrations["poisson_exp"]
    assert calibration.nominal(0.5) == pytest.approx(
        0.5 * calibration.nominal_rho_at_full_load
    )
    with pytest.raises(ValueError):
        calibration.nominal(0.0)


def test_calibration_deterministic():
    a = calibrate_full_load(make_workload("poisson_exp"), n_requests=2000, seed=7)
    b = calibrate_full_load(make_workload("poisson_exp"), n_requests=2000, seed=7)
    assert a.nominal_rho_at_full_load == b.nominal_rho_at_full_load


def test_target_fraction_validation():
    with pytest.raises(ValueError):
        calibrate_full_load(make_workload("poisson_exp"), target_fraction=1.0)
    with pytest.raises(ValueError):
        calibrate_full_load(make_workload("poisson_exp"), rho_bounds=(1.0, 0.5))
