"""Tests for poll-delay profiling (§3.2 reproduction machinery)."""

import numpy as np
import pytest

from repro.cluster import ServiceCluster
from repro.core import make_policy
from repro.prototype import PrototypeOverheadModel, profile_poll_delays


def build(load=0.9, n_requests=2500, seed=3, poll_size=3):
    cluster = ServiceCluster(
        n_servers=8,
        policy=make_policy("polling", poll_size=poll_size),
        seed=seed,
        overhead=PrototypeOverheadModel(),
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.0222
    gaps = rng.exponential(mean_service / (8 * load), n_requests)
    services = np.full(n_requests, mean_service)
    cluster.load_workload(gaps, services)
    return cluster


def test_profile_counts_every_poll():
    cluster = build(n_requests=500)
    tap = profile_poll_delays(cluster)
    cluster.run()
    profile = tap.profile()
    assert profile.n_polls == 500 * 3


def test_profile_before_any_polls_raises():
    cluster = build()
    tap = profile_poll_delays(cluster)
    with pytest.raises(RuntimeError):
        tap.profile()


def test_profile_high_load_shows_slow_polls():
    cluster = build(load=0.92, n_requests=3000)
    tap = profile_poll_delays(cluster)
    cluster.run()
    profile = tap.profile()
    assert 0.02 < profile.frac_over_10ms < 0.20
    assert 0.0 < profile.frac_over_20ms <= profile.frac_over_10ms
    assert profile.mean_rtt > 290e-6


def test_profile_low_load_mostly_fast():
    cluster = build(load=0.2, n_requests=2000)
    tap = profile_poll_delays(cluster)
    cluster.run()
    profile = tap.profile()
    assert profile.frac_over_10ms < 0.04


def test_profile_row_renders():
    cluster = build(n_requests=300)
    tap = profile_poll_delays(cluster)
    cluster.run()
    row = tap.profile().row()
    assert ">10ms" in row and "mean RTT" in row
