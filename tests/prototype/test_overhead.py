"""Unit tests for the prototype overhead model."""

import numpy as np
import pytest

from repro.cluster import Request, ServerNode
from repro.prototype import PAPER_PROFILE, PollDelayModel, PrototypeOverheadModel
from repro.sim import Simulator


def test_delay_model_weight_validation():
    with pytest.raises(ValueError):
        PollDelayModel(fast_weight=0.5, one_quantum_weight=0.1, multi_quantum_weight=0.1)
    with pytest.raises(ValueError):
        PollDelayModel(fast_weight=1.2, one_quantum_weight=-0.1, multi_quantum_weight=-0.1)
    with pytest.raises(ValueError):
        PollDelayModel(quantum=0.0, fast_weight=1.0, one_quantum_weight=0.0,
                       multi_quantum_weight=0.0)


def test_delay_model_modes():
    """Samples fall in the three mode supports."""
    model = PollDelayModel()
    rng = np.random.default_rng(0)
    samples = np.array([model.sample_busy(rng) for _ in range(50_000)])
    fast = samples <= model.fast_max
    one_quantum = (samples >= model.quantum) & (samples <= 2 * model.quantum)
    multi = samples >= 2 * model.quantum
    assert (fast | one_quantum | multi).all()
    assert fast.mean() == pytest.approx(model.fast_weight, abs=0.01)
    assert multi.mean() == pytest.approx(model.multi_quantum_weight, abs=0.01)


def test_exceed_probabilities_match_paper_profile():
    """At ~90% busy probability the defaults hit the published 8.1%/5.6%."""
    model = PollDelayModel()
    over10, over20 = model.exceed_probabilities(busy_probability=0.9)
    assert over10 == pytest.approx(PAPER_PROFILE[0], abs=0.002)
    assert over20 == pytest.approx(PAPER_PROFILE[1], abs=0.002)


def test_exceed_probabilities_validation():
    with pytest.raises(ValueError):
        PollDelayModel().exceed_probabilities(1.5)


def test_overhead_model_validation():
    with pytest.raises(ValueError):
        PrototypeOverheadModel(poll_cpu_cost=-1.0)


def test_sample_reply_delay_idle_server_is_zero():
    sim = Simulator()
    server = ServerNode(sim, 0)
    model = PrototypeOverheadModel()
    rng = np.random.default_rng(0)
    assert model.sample_reply_delay(server, rng) == 0.0


def test_sample_reply_delay_busy_server_positive_sometimes_slow():
    sim = Simulator()
    server = ServerNode(sim, 0)
    server.on_complete = lambda s, r: None
    server.enqueue(Request(0, 9, service_time=100.0, arrival_time=0.0))
    model = PrototypeOverheadModel()
    rng = np.random.default_rng(1)
    samples = np.array([model.sample_reply_delay(server, rng) for _ in range(20_000)])
    assert (samples >= 0).all()
    assert (samples > 10e-3).mean() == pytest.approx(0.09, abs=0.01)


def test_model_is_hashable_for_caching():
    """The runner caches calibrations keyed by the (frozen) model."""
    a, b = PrototypeOverheadModel(), PrototypeOverheadModel()
    assert hash(a) == hash(b)
    assert a == b
    assert {a: 1}[b] == 1
