"""Telemetry export round-trips: spans JSONL, series CSV, validation."""

import json
import math

import numpy as np
import pytest

from repro.experiments.io import (
    load_series_csv,
    load_spans_jsonl,
    save_series_csv,
    save_spans_jsonl,
    save_telemetry,
    validate_telemetry_dir,
)
from repro.telemetry import SPAN_FIELDS, RequestSpan


def span(index=0, staleness=1.5e-4, **overrides):
    values = dict(
        index=index, client_id=16, server_id=3,
        t_created=0.0, t_selected=0.001, t_enqueued=0.0015,
        t_start=0.002, t_completed=0.01, t_response=0.0101,
        service_time=0.008, response_time=0.0101, poll_time=0.001,
        queue_wait=0.0005, perceived_load=2.0, staleness=staleness,
        retries=0, failed=False, rejects=0,
    )
    values.update(overrides)
    return RequestSpan(**values)


def test_spans_jsonl_roundtrip(tmp_path):
    spans = [span(0), span(1, staleness=math.nan, perceived_load=math.nan)]
    path = tmp_path / "spans.jsonl"
    save_spans_jsonl(spans, path)
    loaded = load_spans_jsonl(path)
    assert len(loaded) == 2
    assert loaded[0] == spans[0].to_dict()
    # nan round-trips through JSON null back to nan
    assert math.isnan(loaded[1]["staleness"])
    assert math.isnan(loaded[1]["perceived_load"])
    assert loaded[1]["index"] == 1  # int fields untouched by null mapping


def test_spans_jsonl_header_carries_schema(tmp_path):
    from repro.experiments.io import TELEMETRY_SCHEMA_VERSION

    path = tmp_path / "spans.jsonl"
    save_spans_jsonl([span()], path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header["kind"] == "repro.telemetry.spans"
    assert header["schema_version"] == TELEMETRY_SCHEMA_VERSION == 2
    assert header["fields"] == list(SPAN_FIELDS)
    assert "rejects" in SPAN_FIELDS


def test_spans_jsonl_v1_loads_with_rejects_defaulted(tmp_path):
    """v1 exports predate the per-span rejects count; they must still
    load, with the field defaulted to 0 (back-compat contract)."""
    path = tmp_path / "spans.jsonl"
    save_spans_jsonl([span(rejects=7)], path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    record = json.loads(lines[1])
    header["schema_version"] = 1
    del record["rejects"]
    path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
    loaded = load_spans_jsonl(path)
    assert loaded[0]["rejects"] == 0


def test_spans_jsonl_v2_requires_rejects(tmp_path):
    """Current-version records missing the rejects field are malformed."""
    path = tmp_path / "spans.jsonl"
    save_spans_jsonl([span()], path)
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    del record["rejects"]
    path.write_text(lines[0] + "\n" + json.dumps(record) + "\n")
    with pytest.raises(ValueError, match="rejects"):
        load_spans_jsonl(path)


def test_spans_jsonl_rejects_malformed(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text('{"kind": "something-else"}\n')
    with pytest.raises(ValueError, match="header"):
        load_spans_jsonl(path)

    save_spans_jsonl([span()], path)
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    del record["staleness"]
    path.write_text("\n".join([lines[0], json.dumps(record)]) + "\n")
    with pytest.raises(ValueError, match="staleness"):
        load_spans_jsonl(path)


def test_spans_jsonl_rejects_newer_schema(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text(
        json.dumps({"kind": "repro.telemetry.spans", "schema_version": 999,
                    "fields": []}) + "\n"
    )
    with pytest.raises(ValueError, match="newer"):
        load_spans_jsonl(path)


def test_series_csv_roundtrip(tmp_path):
    series = {
        "time": np.array([0.0, 0.05, 0.1]),
        "server0.queue": np.array([0.0, 3.0, 1.0]),
        "net.inflight": np.array([0.0, 2.0, 0.0]),
    }
    path = tmp_path / "series.csv"
    save_series_csv(series, path)
    loaded = load_series_csv(path)
    assert set(loaded) == set(series)
    for name in series:
        np.testing.assert_array_equal(loaded[name], series[name])


def test_series_csv_requires_time_and_alignment(tmp_path):
    with pytest.raises(ValueError, match="time"):
        save_series_csv({"x": np.zeros(3)}, tmp_path / "series.csv")
    with pytest.raises(ValueError, match="length"):
        save_series_csv(
            {"time": np.zeros(3), "x": np.zeros(2)}, tmp_path / "series.csv"
        )


def test_save_telemetry_and_validate(tmp_path):
    from repro.experiments import SimulationConfig
    from repro.experiments.runner import run_with_telemetry

    _, report = run_with_telemetry(
        SimulationConfig(policy="polling", policy_params={"poll_size": 2},
                         n_requests=150, seed=1)
    )
    paths = save_telemetry(report, tmp_path / "out")
    assert all(p.exists() for p in paths.values())
    checked = validate_telemetry_dir(tmp_path / "out")
    assert checked["spans"] == 150
    assert checked["series"] == len(report.series["time"])
    assert checked["series_columns"] == len(report.series) - 1

    # Corrupting any artifact makes validation fail loudly.
    (tmp_path / "out" / "accounting.json").write_text('{"kind": "nope"}')
    with pytest.raises(ValueError, match="kind"):
        validate_telemetry_dir(tmp_path / "out")


# ----------------------------------------------------------------------
# attempt records (reliability layer): attempts.jsonl
# ----------------------------------------------------------------------

def attempt(index=0, **overrides):
    from repro.telemetry import AttemptRecord

    values = dict(
        index=index, attempt=0, kind="primary", server_id=2,
        t_dispatch=0.001, breaker_state="closed",
    )
    values.update(overrides)
    return AttemptRecord(**values)


def test_attempts_jsonl_roundtrip(tmp_path):
    from repro.experiments.io import load_attempts_jsonl, save_attempts_jsonl
    from repro.telemetry import ATTEMPT_FIELDS

    records = [attempt(0), attempt(1, kind="hedge", breaker_state="half_open")]
    path = tmp_path / "attempts.jsonl"
    save_attempts_jsonl(records, path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header["kind"] == "repro.telemetry.attempts"
    assert header["fields"] == list(ATTEMPT_FIELDS)
    loaded = load_attempts_jsonl(path)
    assert loaded == [r.to_dict() for r in records]


def test_attempts_jsonl_rejects_malformed(tmp_path):
    from repro.experiments.io import load_attempts_jsonl, save_attempts_jsonl

    path = tmp_path / "attempts.jsonl"
    path.write_text('{"kind": "something-else"}\n')
    with pytest.raises(ValueError, match="header"):
        load_attempts_jsonl(path)

    save_attempts_jsonl([attempt()], path)
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    del record["breaker_state"]
    path.write_text("\n".join([lines[0], json.dumps(record)]) + "\n")
    with pytest.raises(ValueError, match="breaker_state"):
        load_attempts_jsonl(path)

    path.write_text(
        json.dumps({"kind": "repro.telemetry.attempts", "schema_version": 999,
                    "fields": []}) + "\n"
    )
    with pytest.raises(ValueError, match="newer"):
        load_attempts_jsonl(path)


def test_attempts_file_absent_without_reliability(tmp_path):
    """Non-hardened telemetry runs keep the legacy export layout: no
    attempts.jsonl at all (absent, not empty)."""
    from repro.experiments import SimulationConfig
    from repro.experiments.runner import run_with_telemetry

    _, report = run_with_telemetry(SimulationConfig(n_requests=100, seed=2))
    assert report.attempts == ()
    save_telemetry(report, tmp_path / "out")
    assert not (tmp_path / "out" / "attempts.jsonl").exists()
    assert "attempts" not in validate_telemetry_dir(tmp_path / "out")


def test_attempts_exported_and_validated_for_hardened_run(tmp_path):
    from repro.experiments import SimulationConfig
    from repro.experiments.chaos import hardened_reliability_params
    from repro.experiments.io import load_attempts_jsonl
    from repro.experiments.runner import run_with_telemetry

    _, report = run_with_telemetry(
        SimulationConfig(
            n_requests=150, seed=2,
            cluster_params={"request_timeout": 0.25, "max_retries": 4},
            reliability_params=hardened_reliability_params(),
        )
    )
    # Every request dispatched at least one primary attempt.
    assert len(report.attempts) >= 150
    assert {a.kind for a in report.attempts} <= {"primary", "hedge"}
    paths = save_telemetry(report, tmp_path / "out")
    assert paths["attempts"].exists()
    checked = validate_telemetry_dir(tmp_path / "out")
    assert checked["attempts"] == len(report.attempts)
    loaded = load_attempts_jsonl(paths["attempts"])
    assert loaded[0] == report.attempts[0].to_dict()
