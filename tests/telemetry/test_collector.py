"""Request-lifecycle telemetry: spans, staleness, series, guarantees.

The two load-bearing guarantees (DESIGN.md §10) are asserted here:
zero overhead when off (no recorders installed, no annotations made)
and bit-identical simulation results when on (the collector schedules
no events and draws no randomness).
"""

import inspect
import math

import numpy as np
import pytest

from repro.experiments import SimulationConfig, build_cluster, run_simulation
from repro.experiments.config import _TELEMETRY_PARAM_KEYS
from repro.experiments.runner import run_with_telemetry
from repro.telemetry import SPAN_FIELDS, TelemetryCollector, sample_series


def config(n=300, telemetry=None, **kw):
    kw.setdefault("policy", "polling")
    kw.setdefault("policy_params", {"poll_size": 2})
    return SimulationConfig(
        n_requests=n, seed=3, telemetry=telemetry or {}, **kw
    )


# ----------------------------------------------------------------------
# zero overhead when off
# ----------------------------------------------------------------------
def test_telemetry_off_by_default():
    cluster, _ = build_cluster(config())
    assert cluster.telemetry is None
    assert all(s.queue_recorder is None for s in cluster.servers)
    assert cluster.network.inflight_recorder is None
    assert cluster.network.drops_recorder is None


def test_no_decision_annotation_when_off(monkeypatch):
    from repro.cluster.system import ClusterMetrics

    seen = []
    orig = ClusterMetrics.record
    monkeypatch.setattr(
        ClusterMetrics, "record",
        lambda self, req: (seen.append(req), orig(self, req))[1],
    )
    cluster, _ = build_cluster(config(n=100))
    cluster.run()
    assert len(seen) == 100
    assert all(r.decision is None for r in seen)


def test_result_summary_empty_when_off():
    result = run_simulation(config(n=100))
    assert result.telemetry_summary == {}


# ----------------------------------------------------------------------
# bit-identical when on
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_bit_identical_with_telemetry_on(engine):
    base = config(n=600, engine=engine)
    off = run_simulation(base)
    on = run_simulation(base.with_updates(telemetry={"spans": True}))
    assert off.mean_response_time == on.mean_response_time
    assert off.p99_response_time == on.p99_response_time
    assert off.events_executed == on.events_executed
    assert off.message_counts == on.message_counts
    assert off.server_counts == on.server_counts


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_span_per_request_with_lifecycle_ordering():
    result, report = run_with_telemetry(config(n=300))
    assert len(report.spans) == 300
    assert sorted(s.index for s in report.spans) == list(range(300))
    for span in report.spans:
        assert span.t_created <= span.t_selected <= span.t_enqueued
        assert span.t_enqueued <= span.t_start <= span.t_completed
        assert span.t_completed <= span.t_response
        assert span.response_time == pytest.approx(span.t_response - span.t_created)
    assert result.telemetry_summary["n_spans"] == 300


def test_polling_staleness_is_reply_flight_time():
    # With a constant-latency network the polled queue length is read at
    # the server one reply-flight before the decision: staleness is the
    # same small positive constant for every request.
    _, report = run_with_telemetry(config(n=200))
    staleness = report.staleness()
    assert np.isfinite(staleness).all()
    assert (staleness > 0).all()
    assert (staleness < 1e-3).all()
    assert staleness.max() - staleness.min() < 1e-9


def test_ideal_policy_staleness_zero():
    _, report = run_with_telemetry(
        config(n=100, policy="ideal", policy_params={})
    )
    assert (report.staleness() == 0.0).all()


def test_broadcast_staleness_nonnegative_and_finite():
    _, report = run_with_telemetry(
        config(n=300, policy="broadcast", policy_params={"mean_interval": 0.05})
    )
    staleness = report.staleness()
    assert np.isfinite(staleness).all()
    assert (staleness >= 0).all()
    # Announcements age between broadcasts, so staleness must vary.
    assert staleness.max() > staleness.min()


def test_random_policy_has_no_decision_info():
    _, report = run_with_telemetry(
        config(n=100, policy="random", policy_params={})
    )
    assert np.isnan(report.staleness()).all()
    assert all(math.isnan(s.perceived_load) for s in report.spans)


def test_max_spans_cap():
    _, report = run_with_telemetry(
        config(n=200, telemetry={"spans": True, "max_spans": 50})
    )
    assert len(report.spans) == 50
    assert report.spans_dropped == 150


def test_spans_disabled_still_samples_series():
    _, report = run_with_telemetry(config(n=100, telemetry={"spans": False}))
    assert report.spans == ()
    assert len(report.series["time"]) > 1


# ----------------------------------------------------------------------
# series
# ----------------------------------------------------------------------
def test_series_shapes_and_bounds():
    cfg = config(n=400, telemetry={"spans": True, "sample_interval": 0.02})
    _, report = run_with_telemetry(cfg)
    series = report.series
    n = len(series["time"])
    assert all(len(v) == n for v in series.values())
    assert np.all(np.diff(series["time"]) > 0)
    for i in range(cfg.n_servers):
        queue = series[f"server{i}.queue"]
        util = series[f"server{i}.utilization"]
        assert (queue >= 0).all()
        assert ((0 <= util) & (util <= 1)).all()
    assert (series["net.inflight"] >= 0).all()
    # No chaos installed: nothing may be dropped.
    assert (series["net.dropped"] == 0).all()


def test_resampling_is_exact():
    # The series are post-run evaluations of exact step functions, so a
    # finer grid agrees with the coarse one wherever they share points.
    cluster, _ = build_cluster(config(n=200, telemetry={"spans": True}))
    cluster.run()
    coarse = sample_series(cluster, 0.1)
    fine = sample_series(cluster, 0.05)
    shared = np.isin(fine["time"], coarse["time"])
    for name in coarse:
        np.testing.assert_array_equal(fine[name][shared], coarse[name])


def test_sample_interval_validation():
    cluster, _ = build_cluster(config(n=100, telemetry={"spans": True}))
    with pytest.raises(ValueError):
        sample_series(cluster, 0.0)


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def test_accounting_matches_network_counters():
    _, report = run_with_telemetry(config(n=200))
    accounting = report.accounting
    assert accounting["messages"]["request"] == 200
    assert accounting["messages"]["poll"] == 400  # poll_size=2
    assert accounting["policy"]["polls_sent"] == 400
    assert accounting["dropped"] == {}


# ----------------------------------------------------------------------
# knob validation
# ----------------------------------------------------------------------
def test_config_rejects_unknown_telemetry_key():
    with pytest.raises(ValueError, match="telemetry"):
        config(telemetry={"spanz": True})


def test_collector_knob_validation():
    cluster, _ = build_cluster(config(n=100))
    with pytest.raises(ValueError):
        TelemetryCollector(cluster, sample_interval=0.0)
    with pytest.raises(ValueError):
        TelemetryCollector(cluster, max_spans=0)


def test_telemetry_param_keys_mirror_collector_signature():
    # _TELEMETRY_PARAM_KEYS is a literal mirror of the collector's
    # keyword knobs (kept literal so config.py stays import-light).
    params = inspect.signature(TelemetryCollector.__init__).parameters
    knobs = {name for name in params if name not in ("self", "cluster")}
    assert knobs == set(_TELEMETRY_PARAM_KEYS)


def test_span_fields_cover_request_lifecycle():
    for expected in ("t_created", "t_selected", "t_enqueued", "t_start",
                     "t_completed", "t_response", "staleness",
                     "perceived_load"):
        assert expected in SPAN_FIELDS


# ----------------------------------------------------------------------
# attempt records (reliability layer)
# ----------------------------------------------------------------------
def _hardened(n=300, telemetry=None, **kw):
    from repro.experiments.chaos import hardened_reliability_params

    kw.setdefault("cluster_params", {"request_timeout": 0.25, "max_retries": 4})
    kw.setdefault("reliability_params", hardened_reliability_params())
    return config(n=n, telemetry=telemetry or {"spans": True}, **kw)


def test_no_attempts_without_reliability():
    _, report = run_with_telemetry(config(n=100))
    assert report.attempts == ()
    assert "n_attempts" not in run_simulation(
        config(n=100, telemetry={"spans": True})
    ).telemetry_summary


def test_attempts_one_primary_per_dispatch():
    result, report = run_with_telemetry(_hardened(n=200))
    primaries = [a for a in report.attempts if a.kind == "primary"]
    # One primary record per dispatch: requests + retried dispatches.
    assert len(primaries) >= 200
    assert all(a.breaker_state in ("closed", "open", "half_open")
               for a in report.attempts)
    assert all(a.t_dispatch >= 0.0 for a in report.attempts)
    summary = result.telemetry_summary
    assert summary["n_attempts"] == float(len(report.attempts))
    assert summary["n_hedge_attempts"] == float(
        sum(1 for a in report.attempts if a.kind == "hedge")
    )


def test_attempts_capture_hedge_copies():
    from repro.experiments.chaos import (
        chaos_cluster_params,
        chaos_params_for,
        hardened_reliability_params,
    )

    _, report = run_with_telemetry(
        SimulationConfig(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            load=0.8, n_servers=4, n_requests=800, seed=23,
            cluster_params=chaos_cluster_params(),
            chaos_params=chaos_params_for(1.0, n_servers=4),
            reliability_params=hardened_reliability_params(),
            telemetry={"spans": True},
        )
    )
    kinds = {a.kind for a in report.attempts}
    assert kinds == {"primary", "hedge"}
    # Hedge copies carry the same index as a primary attempt.
    primary_indices = {a.index for a in report.attempts if a.kind == "primary"}
    assert all(
        a.index in primary_indices for a in report.attempts if a.kind == "hedge"
    )


def test_attempts_share_max_spans_cap():
    _, report = run_with_telemetry(
        _hardened(n=200, telemetry={"spans": True, "max_spans": 40})
    )
    assert len(report.attempts) <= 40


def test_bit_identical_with_telemetry_on_hardened_run():
    """Telemetry stays observation-only with the reliability layer on."""
    base = _hardened(n=400, telemetry={})
    off = run_simulation(base)
    on = run_simulation(base.with_updates(telemetry={"spans": True}))
    assert off.mean_response_time == on.mean_response_time
    assert off.events_executed == on.events_executed
