"""Property-based invariants of the chaos subsystem.

Whatever faults are injected, three things must hold:

1. no message is ever delivered to a crashed node or across an active
   partition (the delivery-gate invariant);
2. duplicated deliveries never produce duplicate completions — each
   request is recorded exactly once;
3. conservation: every issued request either completes or fails
   terminally, exactly once (completed + lost == issued).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ChaosInjector,
    ChaosSpec,
    ClusterMetrics,
    ReliabilityPolicy,
    ServiceCluster,
)
from repro.core import make_policy

policy_strategy = st.sampled_from(
    [
        ("random", {}),
        ("polling", {"poll_size": 2, "discard_slow": True}),
        ("broadcast", {"mean_interval": 0.05}),
    ]
)

spec_strategy = st.builds(
    ChaosSpec,
    loss=st.floats(min_value=0.0, max_value=0.25),
    duplicate=st.floats(min_value=0.0, max_value=0.3),
    jitter_mean=st.floats(min_value=0.0, max_value=0.002),
    stragglers=st.integers(0, 2),
    straggle_factor=st.floats(min_value=1.5, max_value=8.0),
    partitions=st.integers(0, 1),
    storms=st.integers(0, 1),
    storm_size=st.integers(1, 2),
)


def run_chaos_cluster(policy, spec, seed, n=120, reliability=None):
    name, params = policy
    cluster = ServiceCluster(
        n_servers=4,
        n_clients=2,
        policy=make_policy(name, **params),
        seed=seed,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=0.15,
        request_timeout=0.2,
        max_retries=60,
        reliability=reliability,
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * 0.6), n)
    services = rng.exponential(mean_service, n) + 1e-9
    cluster.load_workload(gaps, services)
    injector = ChaosInjector(cluster, spec=spec)
    return cluster, injector


@given(policy=policy_strategy, spec=spec_strategy, seed=st.integers(0, 2**31))
@settings(max_examples=12, deadline=None)
def test_no_delivery_to_crashed_or_partitioned_node(policy, spec, seed):
    cluster, injector = run_chaos_cluster(policy, spec, seed)
    faults = injector.faults

    def assert_deliverable(message):
        assert message.dst not in injector.dead, (
            f"delivered {message!r} to crashed node {message.dst}"
        )
        assert message.src not in injector.dead, (
            f"delivered {message!r} from crashed node {message.src}"
        )
        assert not faults.severed(message.src, message.dst), (
            f"delivered {message!r} across an active partition"
        )

    cluster.network.deliver_trace = assert_deliverable
    metrics = cluster.run()

    # Conservation: every request completes XOR fails, exactly once.
    finite = np.isfinite(metrics.response_time)
    assert (finite ^ metrics.failed).all()
    assert int(finite.sum()) + int(metrics.failed.sum()) == metrics.n


@given(policy=policy_strategy, seed=st.integers(0, 2**31))
@settings(max_examples=12, deadline=None)
def test_duplicated_deliveries_never_duplicate_completions(policy, seed):
    """Heavy duplication, zero loss: everything completes, once each."""
    spec = ChaosSpec(duplicate=0.5)
    cluster, injector = run_chaos_cluster(policy, spec, seed)

    recorded: list[int] = []
    original_record = ClusterMetrics.record

    def counting_record(self, request):
        recorded.append(request.index)
        original_record(self, request)

    ClusterMetrics.record = counting_record
    try:
        metrics = cluster.run()
    finally:
        ClusterMetrics.record = original_record

    assert np.isfinite(metrics.response_time).all()
    assert metrics.failed.sum() == 0
    assert sorted(recorded) == list(range(metrics.n)), "a request was recorded twice"
    # With duplicate=0.5 over hundreds of messages, duplicates certainly
    # happened — and every one was discarded, not double-completed.
    assert injector.faults.total_duplicated() > 0
    assert (
        cluster.duplicate_deliveries_ignored + cluster.stale_responses_ignored > 0
    )


reliability_strategy = st.sampled_from(
    [
        # hedging + breakers (the canonical hardened combination)
        ReliabilityPolicy(
            hedge_quantile=0.9, hedge_min_samples=16,
            breaker_threshold=4, breaker_cooldown=0.3,
        ),
        # deadline budget + jittered backoff + retry budget
        ReliabilityPolicy(deadline=1.5, backoff_base=0.002, retry_budget=100),
        # everything at once
        ReliabilityPolicy(
            deadline=2.0, backoff_base=0.001, retry_budget=200,
            hedge_quantile=0.8, hedge_min_samples=16,
            breaker_threshold=3, breaker_cooldown=0.2,
        ),
    ]
)


@given(
    policy=policy_strategy,
    spec=spec_strategy,
    reliability=reliability_strategy,
    seed=st.integers(0, 2**31),
)
@settings(max_examples=12, deadline=None)
def test_reliability_layer_preserves_exactly_once_conservation(
    policy, spec, reliability, seed
):
    """Hedge copies, fail-fast paths, and breaker ejections must never
    break the core invariant: one terminal outcome per request."""
    cluster, injector = run_chaos_cluster(policy, spec, seed, reliability=reliability)
    del injector
    metrics = cluster.run()
    finite = np.isfinite(metrics.response_time)
    assert (finite ^ metrics.failed).all()
    assert int(finite.sum()) + int(metrics.failed.sum()) == metrics.n
    # The engine's per-request state fully drains at terminal outcomes.
    assert cluster.reliability is not None
    assert not cluster.reliability._states
