"""Property-based end-to-end invariants of the cluster simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ServiceCluster
from repro.core import make_policy
from repro.net import PAPER_NET

policy_strategy = st.sampled_from(
    [
        ("random", {}),
        ("round_robin", {}),
        ("ideal", {}),
        ("polling", {"poll_size": 2}),
        ("polling", {"poll_size": 3, "discard_slow": True}),
        ("broadcast", {"mean_interval": 0.05}),
        ("manager", {}),
        ("least_connections", {}),
    ]
)


@given(
    policy=policy_strategy,
    n_servers=st.integers(1, 12),
    n_clients=st.integers(1, 6),
    load=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_every_policy_completes_all_requests(policy, n_servers, n_clients, load, seed):
    name, params = policy
    cluster = ServiceCluster(
        n_servers=n_servers,
        policy=make_policy(name, **params),
        seed=seed,
        n_clients=n_clients,
    )
    rng = np.random.default_rng(seed)
    n = 150
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (n_servers * load), n)
    services = rng.exponential(mean_service, n) + 1e-9
    cluster.load_workload(gaps, services)
    metrics = cluster.run()

    # Invariant 1: conservation — every request completes exactly once.
    assert np.isfinite(metrics.response_time).all()
    assert metrics.failed.sum() == 0
    assert metrics.server_counts(n_servers, warmup_fraction=0.0).sum() == n

    # Invariant 2: response time >= service + request/response network.
    floor = cluster._service_times + PAPER_NET.request_response_total
    assert (metrics.response_time >= floor - 1e-12).all()

    # Invariant 3: poll time is non-negative and response includes it.
    assert (metrics.poll_time >= -1e-15).all()
    assert (metrics.response_time >= metrics.poll_time).all()

    # Invariant 4: all servers idle at the end.
    assert all(server.queue_length == 0 for server in cluster.servers)

    # Invariant 5: per-request timestamps are ordered.
    # (dispatch <= enqueue <= start <= completion along the final path)
    assert (metrics.queue_wait >= -1e-12).all()
