"""Property-based tests for statistics and distributions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import OnlineStats, eq1_upperbound, summarize
from repro.analysis.mm1 import mm1_queue_length_pmf
from repro.analysis.supermarket import supermarket_fixed_point
from repro.workload.distributions import (
    lognormal_from_moments,
    pareto_from_moments,
    weibull_from_moments,
)

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
samples = hnp.arrays(np.float64, st.integers(1, 300), elements=finite_floats)


@given(samples)
def test_online_stats_equals_numpy(values):
    stats = OnlineStats()
    stats.push_many(values)
    assert np.isclose(stats.mean, values.mean(), rtol=1e-9, atol=1e-6)
    if values.size > 1:
        assert np.isclose(stats.variance, values.var(ddof=1), rtol=1e-6, atol=1e-4)
    assert stats.min == values.min() and stats.max == values.max()


@given(samples, st.integers(1, 299))
def test_online_stats_merge_associative(values, split):
    split = min(split, values.size)
    left, right = OnlineStats(), OnlineStats()
    left.push_many(values[:split])
    right.push_many(values[split:])
    merged = left.merge(right)
    direct = OnlineStats()
    direct.push_many(values)
    assert np.isclose(merged.mean, direct.mean, rtol=1e-9, atol=1e-6)
    assert merged.n == direct.n


@given(samples)
def test_summarize_bounds(values):
    out = summarize(values)
    assert out["min"] <= out["p50"] <= out["p99"] <= out["max"]
    # 1-ulp slack: the arithmetic mean of identical values can exceed
    # them by one rounding step.
    span = max(abs(out["min"]), abs(out["max"]), 1.0)
    assert out["min"] - 1e-9 * span <= out["mean"] <= out["max"] + 1e-9 * span


moments = st.tuples(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    st.floats(min_value=1e-4, max_value=1e3, allow_nan=False),
)


@given(moments)
@settings(max_examples=60)
def test_lognormal_moment_fit_roundtrip(mean_std):
    mean, std = mean_std
    dist = lognormal_from_moments(mean, std)
    assert np.isclose(dist.mean(), mean, rtol=1e-9)
    assert np.isclose(dist.std(), std, rtol=1e-6)


@given(moments)
@settings(max_examples=40)
def test_weibull_moment_fit_roundtrip(mean_std):
    mean, std = mean_std
    # Weibull shape solver covers CV in (0.105, ~4500); clamp the draw.
    cv = max(0.12, min(std / mean, 10.0))
    dist = weibull_from_moments(mean, cv * mean)
    assert np.isclose(dist.mean(), mean, rtol=1e-6)
    assert np.isclose(dist.std(), cv * mean, rtol=1e-4)


@given(moments)
@settings(max_examples=60)
def test_pareto_moment_fit_roundtrip(mean_std):
    mean, std = mean_std
    # At extreme CV alpha approaches 2 and the variance formula's
    # 1/(alpha-2) amplifies float error; cap the CV like real fits do.
    std = min(std, 100.0 * mean)
    dist = pareto_from_moments(mean, std)
    assert np.isclose(dist.mean(), mean, rtol=1e-9)
    assert np.isclose(dist.std(), std, rtol=1e-5)


rhos = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)


@given(rhos)
def test_mm1_pmf_is_distribution(rho):
    pmf = mm1_queue_length_pmf(rho, 4000)
    assert (pmf >= 0).all()
    assert pmf.sum() <= 1.0 + 1e-9


@given(rhos)
def test_eq1_upperbound_nonnegative_increasing(rho):
    value = eq1_upperbound(rho)
    assert value >= 0.0
    if rho < 0.98:
        assert eq1_upperbound(min(rho + 0.01, 0.99)) >= value


@given(rhos, st.integers(1, 8))
def test_supermarket_tail_monotone(rho, d):
    tail = supermarket_fixed_point(rho, d, k_max=32)
    assert tail[0] == 1.0
    assert (np.diff(tail) <= 1e-12).all()
    assert (tail >= 0).all() and (tail <= 1).all()


@given(rhos, st.integers(2, 8))
def test_supermarket_more_choices_thinner_tail(rho, d):
    with_d = supermarket_fixed_point(rho, d, k_max=16)
    with_one = supermarket_fixed_point(rho, 1, k_max=16)
    assert (with_d <= with_one + 1e-12).all()
