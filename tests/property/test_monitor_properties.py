"""Property-based invariants of the StepRecorder.

``time_average`` is an analytic integral over the recorded step
function; ``value_at`` is a pointwise evaluation of the same function.
For any breakpoints and any window, the integral must equal the
duration-weighted dot product of pointwise evaluations at segment
midpoints — exact for step functions, no discretization error.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import StepRecorder

# Breakpoint times on a coarse lattice keep the arithmetic exact enough
# for approx comparison while still exploring coincident times, windows
# landing exactly on breakpoints, and empty-window-segment shapes.
times_strategy = st.lists(
    st.integers(0, 400).map(lambda i: i / 4.0), min_size=0, max_size=20
)
values_strategy = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@settings(max_examples=200, deadline=None)
@given(
    times=times_strategy,
    values=st.lists(values_strategy, min_size=20, max_size=20),
    initial=values_strategy,
    window=st.tuples(st.integers(0, 400), st.integers(1, 100)),
)
def test_time_average_equals_midpoint_dot_product(times, values, initial, window):
    rec = StepRecorder(initial=initial)
    for t, v in zip(sorted(times), values):
        rec.record(t, v)
    t0 = window[0] / 4.0
    t1 = t0 + window[1] / 4.0

    cuts = np.unique(
        np.concatenate(([t0, t1], [t for t in sorted(times) if t0 < t < t1]))
    )
    mids = (cuts[:-1] + cuts[1:]) / 2
    expected = float(np.dot(rec.value_at(mids), np.diff(cuts)) / (t1 - t0))

    assert np.isclose(rec.time_average(t0, t1), expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    times=times_strategy,
    values=st.lists(values_strategy, min_size=20, max_size=20),
    initial=values_strategy,
    queries=st.lists(st.integers(-40, 440).map(lambda i: i / 4.0),
                     min_size=1, max_size=10),
)
def test_value_at_matches_scalar_scan(times, values, initial, queries):
    # Vectorized value_at agrees with a brute-force scan of breakpoints.
    rec = StepRecorder(initial=initial)
    pairs = list(zip(sorted(times), values))
    for t, v in pairs:
        rec.record(t, v)

    def scalar(q):
        best = initial
        for t, v in pairs:
            if t <= q:
                best = v
            else:
                break
        return best

    got = rec.value_at(np.array(queries))
    assert got.tolist() == [scalar(q) for q in queries]
