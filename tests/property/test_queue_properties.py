"""Property-based tests for queueing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import fifo_queue_length_steps
from repro.cluster import Request, ServerNode
from repro.sim import Simulator

positive_floats = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)

job_arrays = st.integers(2, 120).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.float64, n, elements=st.floats(min_value=0.0, max_value=50.0)),
        hnp.arrays(np.float64, n, elements=positive_floats),
    )
)


@given(job_arrays)
@settings(max_examples=80)
def test_fifo_steps_invariants(arrays):
    gaps, services = arrays
    arrivals = np.cumsum(gaps)
    times, queue = fifo_queue_length_steps(arrivals, services)
    # Non-negative, integer-valued, ends empty, bounded by n.
    assert (queue >= 0).all()
    assert queue[-1] == 0
    assert queue.max() <= len(gaps)
    assert np.allclose(queue, np.round(queue))
    # Breakpoint times non-decreasing.
    assert (np.diff(times) >= -1e-12).all()


@given(job_arrays)
@settings(max_examples=60)
def test_fifo_departure_times_work_conserving(arrays):
    """Total busy time equals total service time (single server)."""
    gaps, services = arrays
    arrivals = np.cumsum(gaps)
    times, queue = fifo_queue_length_steps(arrivals, services)
    durations = np.diff(times)
    busy_time = durations[queue[:-1] > 0].sum()
    assert busy_time == np.float64(busy_time)
    assert abs(busy_time - services.sum()) < 1e-6 * max(1.0, services.sum())


@given(job_arrays)
@settings(max_examples=60)
def test_server_node_matches_vectorized_fifo(arrays):
    """The event-driven ServerNode and the vectorized FIFO recursion
    compute identical departure times."""
    gaps, services = arrays
    arrivals = np.cumsum(gaps)
    sim = Simulator()
    server = ServerNode(sim, 0)
    completions = {}
    server.on_complete = lambda s, r: completions.setdefault(r.index, sim.now)
    for i, (arrival, service) in enumerate(zip(arrivals, services)):
        request = Request(i, 99, float(service), float(arrival))
        sim.at(float(arrival), server.enqueue, request)
    sim.run()
    cum = np.cumsum(services)
    slack = arrivals.copy()
    slack[1:] -= cum[:-1]
    expected = cum + np.maximum.accumulate(slack)
    actual = np.array([completions[i] for i in range(len(gaps))])
    assert np.allclose(actual, expected, rtol=1e-12, atol=1e-9)


@given(
    st.lists(positive_floats, min_size=1, max_size=60),
    st.integers(1, 4),
)
@settings(max_examples=60)
def test_multi_worker_completions_conserve_work(service_list, workers):
    """With k workers and simultaneous arrivals, makespan >= total/k and
    every job completes."""
    sim = Simulator()
    server = ServerNode(sim, 0, workers=workers)
    done = []
    server.on_complete = lambda s, r: done.append(r.index)
    for i, service in enumerate(service_list):
        server.enqueue(Request(i, 99, service, 0.0))
    sim.run()
    assert sorted(done) == list(range(len(service_list)))
    assert sim.now >= sum(service_list) / workers - 1e-9
    assert sim.now >= max(service_list) - 1e-12
