"""Property-based tier-2 agreement: fast path vs heap engine.

For any seed and any supported policy, the batch engine must produce
the *same response-time distribution* as the exact heap engine — the
whole contract of ``--engine fast``. Hypothesis drives (seed, policy,
load) over small cells where the exact engine is cheap; agreement is
measured exactly as in :func:`repro.experiments.parity.
distribution_parity` but with thresholds widened for the short runs
(KS noise floor at n≈900 post-warmup samples is ~0.065 alone).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import distribution_distance, ks_statistic
from repro.experiments.config import SimulationConfig
from repro.experiments.parity import fast_distribution, heap_distribution

_POLICY_PARAMS = {
    "random": {},
    "polling": {"poll_size": 2},
    "broadcast": {"mean_interval": 0.01},
    "stale_jsq": {"update_interval": 0.02},
}

KS_THRESHOLD = 0.12
OCCUPANCY_THRESHOLD = 0.12


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**16),
    policy=st.sampled_from(sorted(_POLICY_PARAMS)),
    load=st.sampled_from([0.5, 0.8]),
)
def test_fastpath_distribution_matches_heap(seed, policy, load):
    config = SimulationConfig(
        policy=policy,
        policy_params=_POLICY_PARAMS[policy],
        workload="poisson_exp",
        load=load,
        n_servers=6,
        n_requests=1_000,
        seed=seed,
    )
    heap_responses, heap_occupancy = heap_distribution(config)
    fast_responses, fast_occupancy = fast_distribution(config)

    ks = ks_statistic(heap_responses, fast_responses)
    occ = distribution_distance(heap_occupancy, fast_occupancy)
    assert ks <= KS_THRESHOLD, (
        f"{policy} seed={seed} load={load}: response-time KS {ks:.4f}"
    )
    assert occ <= OCCUPANCY_THRESHOLD, (
        f"{policy} seed={seed} load={load}: occupancy distance {occ:.4f}"
    )
