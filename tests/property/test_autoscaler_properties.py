"""Property-based invariants of the dispatcher tier + autoscaler.

Whatever scaling policy the controller runs — however aggressively it
parks and activates servers, and whether or not routing goes through a
dispatcher tier — two things must hold:

1. conservation / exactly-once: every issued request either completes
   or fails terminally, exactly once (scale-down never loses in-flight
   work — parking actuates through publish withdrawal, not preemption);
2. the active pool never leaves the policy's [min, max] bounds.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster import AutoscalerPolicy, DispatcherPolicy, ServiceCluster
from repro.core import make_policy

scaling_strategy = st.builds(
    AutoscalerPolicy,
    interval=st.floats(min_value=0.01, max_value=0.2),
    min_servers=st.integers(1, 2),
    initial_servers=st.integers(0, 4),
    shed_high=st.floats(min_value=0.0, max_value=0.2),
    p95_high=st.one_of(st.none(), st.floats(min_value=0.02, max_value=0.5)),
    util_low=st.floats(min_value=0.0, max_value=1.0),
    step_up=st.integers(1, 4),
    step_down=st.integers(1, 4),
    cooldown=st.floats(min_value=0.0, max_value=0.3),
)

tier_strategy = st.one_of(
    st.none(),
    st.builds(
        DispatcherPolicy,
        count=st.integers(1, 3),
        assignment=st.sampled_from(["static", "failover"]),
    ),
)


@given(
    scaling=scaling_strategy,
    dispatcher=tier_strategy,
    load=st.floats(min_value=0.1, max_value=2.0),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_scaling_conserves_requests_and_respects_bounds(
    scaling, dispatcher, load, seed
):
    # the cluster constructor rejects an initial pool below the floor
    assume((scaling.initial_servers or scaling.min_servers) >= scaling.min_servers)
    n = 150
    cluster = ServiceCluster(
        n_servers=4,
        n_clients=2,
        policy=make_policy("random"),
        seed=seed,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=0.15,
        request_timeout=0.2,
        max_retries=10,
        autoscaler=scaling,
        dispatcher=dispatcher,
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * load), n)
    services = rng.exponential(mean_service, n) + 1e-9
    cluster.load_workload(gaps, services)

    lo = scaling.min_servers
    hi = scaling.max_servers or 4
    bounds_seen = []
    original_tick = cluster.autoscaler._tick

    def watched_tick():
        original_tick()
        bounds_seen.append(cluster.autoscaler.n_active)

    cluster.autoscaler._tick = watched_tick
    metrics = cluster.run()

    # 1. conservation: every request terminal exactly once
    finished = np.isfinite(metrics.response_time)
    assert int(finished.sum()) + int(metrics.failed.sum()) == n
    assert not np.any(finished & metrics.failed)

    # 2. pool bounds hold at every control tick (and at the end)
    assert all(lo <= seen <= hi for seen in bounds_seen)
    assert lo <= cluster.autoscaler.n_active <= hi
