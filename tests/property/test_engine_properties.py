"""Property-based tests for the DES kernel."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired = []
    for d in ds:
        sim.after(d, fired.append, d)
    sim.run()
    times = sorted(ds)
    assert fired == times


@given(delays)
def test_clock_ends_at_max_delay(ds):
    sim = Simulator()
    for d in ds:
        sim.after(d, lambda: None)
    sim.run()
    assert sim.now == max(ds)


@given(delays, st.data())
def test_cancellation_removes_exactly_the_cancelled(ds, data):
    sim = Simulator()
    handles = [sim.after(d, lambda: None) for d in ds]
    to_cancel = data.draw(
        st.lists(st.integers(0, len(ds) - 1), unique=True, max_size=len(ds))
    )
    for index in to_cancel:
        sim.cancel(handles[index])
    assert sim.pending == len(ds) - len(to_cancel)
    executed_before = sim.events_executed
    sim.run()
    assert sim.events_executed - executed_before == len(ds) - len(to_cancel)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            st.integers(0, 1000),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_fifo_tiebreak_matches_schedule_order(entries):
    """At equal times, events fire in scheduling order — same as a
    stable sort of (time, seq)."""
    sim = Simulator()
    fired = []
    for seq, (t, payload) in enumerate(entries):
        sim.at(t, fired.append, (t, seq, payload))
    sim.run()
    expected = sorted(
        [(t, seq, payload) for seq, (t, payload) in enumerate(entries)],
        key=lambda item: (item[0], item[1]),
    )
    assert fired == expected


@given(delays, st.integers(1, 50))
@settings(max_examples=50)
def test_run_in_chunks_equals_run_at_once(ds, chunk):
    once = Simulator()
    fired_once = []
    for d in ds:
        once.after(d, fired_once.append, d)
    once.run()

    chunked = Simulator()
    fired_chunked = []
    for d in ds:
        chunked.after(d, fired_chunked.append, d)
    while chunked.pending:
        chunked.run(max_events=chunk)
    assert fired_once == fired_chunked
    assert once.now == chunked.now


@given(delays)
def test_peek_is_heap_min(ds):
    sim = Simulator()
    for d in ds:
        sim.after(d, lambda: None)
    assert sim.peek() == min(ds)
    heapq  # silence linters; heap property is exercised through the API
