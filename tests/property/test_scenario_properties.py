"""Property-based invariants of scenario expansion (ISSUE 7 satellite).

Expansion must be a pure function of the spec: expanding twice yields
identical configs (hence identical content-addressed cache keys), and
no two distinct cells may ever collide on a cache key — a collision
would silently serve one cell's cached result for another.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import config_key
from repro.experiments.scenario import (
    FaultAxis,
    ModeAxis,
    PolicyAxis,
    ScaleAxis,
    ScenarioSpec,
    WorkloadAxis,
)

_POLICY_POOL = [
    PolicyAxis("rnd", "random"),
    PolicyAxis("rr", "round_robin"),
    PolicyAxis("p2", "polling", {"poll_size": 2}),
    PolicyAxis("p3d", "polling", {"poll_size": 3, "discard_slow": True}),
    PolicyAxis("bc", "broadcast", {"mean_interval": 0.05}),
    PolicyAxis("lc", "least_connections"),
    PolicyAxis("jiq", "jiq"),
]

_WORKLOAD_POOL = [
    WorkloadAxis("pexp", "poisson_exp"),
    WorkloadAxis("pdet", "poisson_deterministic"),
    WorkloadAxis("burst", "replay_bursty", {"burst_ratio": 5.0}),
    WorkloadAxis("diurnal", "replay_diurnal", {"peak_to_trough": 3.0}),
]

_MODE_POOL = [
    ModeAxis("naive"),
    ModeAxis("hedge", reliability={"hedge_quantile": 0.9}),
    ModeAxis("shed", overload={"sojourn_target": 0.1}),
    ModeAxis("telem", telemetry={"sample_interval": 0.1}),
]

_FAULT_POOL = [
    FaultAxis("f0", {"loss": 0.0}),
    FaultAxis("loss", {"loss": 0.05}),
    FaultAxis("dup", {"duplicate": 0.05}),
]

_SCALE_POOL = [
    ScaleAxis("s4", 4),
    ScaleAxis("s8", 8, 300),
    ScaleAxis("s16", 16),
]


def _axis_subset(pool):
    return st.lists(
        st.sampled_from(range(len(pool))), min_size=1, max_size=len(pool), unique=True
    ).map(lambda idx: tuple(pool[i] for i in idx))


spec_strategy = st.builds(
    ScenarioSpec,
    name=st.just("prop"),
    policies=_axis_subset(_POLICY_POOL),
    workloads=_axis_subset(_WORKLOAD_POOL),
    loads=st.lists(
        st.sampled_from([0.3, 0.5, 0.7, 0.9, 1.2]), min_size=1, max_size=3,
        unique=True,
    ).map(tuple),
    modes=_axis_subset(_MODE_POOL),
    faults=_axis_subset(_FAULT_POOL),
    scales=_axis_subset(_SCALE_POOL),
    n_requests=st.sampled_from([100, 250]),
    seed=st.integers(0, 1000),
)


@given(spec=spec_strategy)
@settings(max_examples=40, deadline=None)
def test_expansion_is_deterministic(spec):
    first = spec.expand()
    second = spec.expand()
    assert [c.config for c in first] == [c.config for c in second]
    assert [c.config.label for c in first] == [c.config.label for c in second]


@given(spec=spec_strategy)
@settings(max_examples=40, deadline=None)
def test_cache_keys_stable_and_collision_free(spec):
    cells = spec.expand()
    keys = [config_key(c.config) for c in cells]
    # stable: a second expansion hashes identically (cache hits survive
    # re-expansion of the same spec)
    assert keys == [config_key(c.config) for c in spec.expand()]
    # collision-free: distinct cells never share a content address
    assert len(set(keys)) == len(cells)
    # cell count is exactly the axis product
    expected = (
        len(spec.modes) * len(spec.workloads) * len(spec.policies)
        * len(spec.loads) * len(spec.faults) * len(spec.scales)
    )
    assert len(cells) == expected


@given(spec=spec_strategy, n_servers=st.sampled_from([4, 8]))
@settings(max_examples=20, deadline=None)
def test_scale_axis_overrides_apply_per_cell(spec, n_servers):
    spec = ScenarioSpec(
        **{**spec.__dict__, "n_servers": n_servers, "scales": spec.scales}
    )
    for cell in spec.expand():
        scale = next(s for s in spec.scales if s.label == cell.scale)
        expected_servers = (
            scale.n_servers if scale.n_servers is not None else n_servers
        )
        assert cell.config.n_servers == expected_servers
        if scale.n_requests is not None:
            assert cell.config.n_requests == scale.n_requests
