"""Race parity: the sim's delivery-race invariants, on real sockets.

The simulation suite proves exactly-once completion accounting under
late responses, duplicated requests, and crash retries. These tests
port the same invariants to the asyncio runtime with injected datagram
loss/delay/duplication (:class:`~repro.live.faults.LoopbackFaults`) —
wall-clock interleavings vary run to run, which is exactly the point:
the stale-delivery guards must hold under *any* interleaving.
"""

import asyncio

import numpy as np

from repro.cluster.system import ClusterMetrics
from repro.core.registry import make_policy
from repro.live.client import LiveCluster
from repro.live.clock import WallClock
from repro.live.faults import LoopbackFaults
from repro.live.server import LiveServer


class CountingMetrics(ClusterMetrics):
    """ClusterMetrics that counts record() calls per request index."""

    def __init__(self, n):
        super().__init__(n)
        self.record_counts = {}

    def record(self, request):
        self.record_counts[request.index] = (
            self.record_counts.get(request.index, 0) + 1
        )
        super().record(request)


async def _loopback(n_servers, clock_holder, server_kwargs=None, cluster_kwargs=None,
                    n_requests=8, gap=0.005, service=0.001):
    """Start servers + cluster, return (servers, cluster, transports)."""
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    clock_holder.append(clock)
    servers, transports = [], []
    for i in range(n_servers):
        server = LiveServer(i, clock, mode="sleep", **(server_kwargs or {}))
        transport, _ = await loop.create_datagram_endpoint(
            lambda s=server: s, local_addr=("127.0.0.1", 0)
        )
        servers.append(server)
        transports.append(transport)
    cluster = LiveCluster(
        {s.node_id: s.address for s in servers},
        make_policy("random"),
        clock,
        n_clients=2,
        **(cluster_kwargs or {}),
    )
    transport, _ = await loop.create_datagram_endpoint(
        lambda: cluster, local_addr=("127.0.0.1", 0)
    )
    transports.append(transport)
    cluster.load_workload(np.full(n_requests, gap), np.full(n_requests, service))
    cluster.metrics = CountingMetrics(n_requests)
    return servers, cluster, transports


def test_late_response_after_terminal_failure_is_ignored():
    """Attempt times out and fails terminally; the response then lands
    late (injected delay) and must not be double-recorded."""

    async def scenario():
        clocks = []
        rng = np.random.default_rng(1)
        servers, cluster, transports = await _loopback(
            1, clocks,
            server_kwargs={"faults": LoopbackFaults(rng, delay_min=0.08,
                                                    delay_max=0.1)},
            cluster_kwargs={"request_timeout": 0.01, "max_retries": 0},
            n_requests=5,
        )
        try:
            metrics = await asyncio.wait_for(cluster.run(), timeout=20)
            summary = metrics.summary(0.0)
            assert summary["n_failed"] == 5  # every attempt timed out
            assert cluster.request_timeouts_fired == 5
            # Now let the delayed responses land on finished requests.
            await asyncio.sleep(0.2)
            assert cluster.stale_responses_ignored >= 1
            # Exactly-once accounting: one record per request, ever.
            assert cluster.metrics.record_counts == {i: 1 for i in range(5)}
        finally:
            for server in servers:
                server.close()
            for transport in transports:
                transport.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=30))


def test_duplicate_requests_are_served_at_most_once():
    """Client-side duplication: the server reply cache / queued-id guard
    must keep service execution at-most-once per attempt."""

    async def scenario():
        clocks = []
        rng = np.random.default_rng(2)
        servers, cluster, transports = await _loopback(
            2, clocks,
            cluster_kwargs={
                "request_timeout": 2.0,
                "faults": LoopbackFaults(rng, duplicate=0.9),
            },
            n_requests=10,
        )
        try:
            metrics = await asyncio.wait_for(cluster.run(), timeout=20)
            summary = metrics.summary(0.0)
            assert summary["n_failed"] == 0
            # Let duplicated datagrams (and cached re-responses) land.
            await asyncio.sleep(0.1)
            served = sum(s.completed_count for s in servers)
            assert served == 10  # at-most-once: never re-executed
            dups = sum(s.duplicates_ignored for s in servers)
            assert dups >= 1
            assert cluster.metrics.record_counts == {i: 1 for i in range(10)}
        finally:
            for server in servers:
                server.close()
            for transport in transports:
                transport.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=30))


def test_crash_mid_run_retries_to_survivor_exactly_once():
    """One of two servers crashes mid-run; timed-out attempts retry and
    every request is recorded exactly once, completed or failed."""

    async def scenario():
        clocks = []
        servers, cluster, transports = await _loopback(
            2, clocks,
            cluster_kwargs={"request_timeout": 0.05, "max_retries": 10},
            n_requests=10, gap=0.01,
        )
        try:
            loop = asyncio.get_running_loop()
            loop.call_later(0.02, servers[0].close)  # crash mid-run
            metrics = await asyncio.wait_for(cluster.run(), timeout=20)
            summary = metrics.summary(0.0)
            assert summary["n_measured"] + summary["n_failed"] == 10
            assert summary["n_measured"] >= 1  # the survivor served work
            # Requests routed at the dead server timed out and retried.
            if summary["n_measured"] < 10 or cluster.request_timeouts_fired:
                assert cluster.request_timeouts_fired >= 1
            assert cluster.metrics.record_counts == {i: 1 for i in range(10)}
            # Every measured request was executed somewhere (a retried
            # request may even execute on both servers — the client-side
            # guard, not the server, is what keeps recording exactly-once).
            served = servers[0].completed_count + servers[1].completed_count
            assert served >= int(summary["n_measured"])
        finally:
            for server in servers:
                server.close()
            for transport in transports:
                transport.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=30))
