"""Clock seam contract: ManualClock, WallClock, and protocol conformance."""

import asyncio

import pytest

from repro.live.clock import WallClock
from repro.sim.clock import Clock, ClockHandle, ManualClock
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# protocol conformance
# ----------------------------------------------------------------------
def test_simulator_satisfies_clock_protocol():
    assert isinstance(Simulator(), Clock)


def test_manual_clock_satisfies_clock_protocol():
    clock = ManualClock()
    assert isinstance(clock, Clock)
    assert isinstance(clock.after(1.0, lambda: None), ClockHandle)


def test_wall_clock_satisfies_clock_protocol():
    loop = asyncio.new_event_loop()
    try:
        assert isinstance(WallClock(loop), Clock)
    finally:
        loop.close()


# ----------------------------------------------------------------------
# ManualClock
# ----------------------------------------------------------------------
def test_manual_clock_fires_in_time_then_seq_order():
    clock = ManualClock()
    fired = []
    clock.at(2.0, fired.append, "late")
    clock.at(1.0, fired.append, "early-first")
    clock.at(1.0, fired.append, "early-second")
    assert clock.advance(3.0) == 3
    assert fired == ["early-first", "early-second", "late"]
    assert clock.now == 3.0


def test_manual_clock_now_is_fire_time_inside_callback():
    clock = ManualClock(origin=100.0)
    seen = []
    clock.after(0.5, lambda: seen.append(clock.now))
    clock.advance(2.0)
    assert seen == [100.5]
    assert clock.now == 102.0


def test_manual_clock_nonzero_origin():
    clock = ManualClock(origin=1.7e9)
    assert clock.now == 1.7e9
    handle = clock.after(0.25, lambda: None)
    assert handle.time == 1.7e9 + 0.25


def test_manual_clock_cancel_is_idempotent_and_skips_fire():
    clock = ManualClock()
    fired = []
    handle = clock.after(1.0, fired.append, "x")
    clock.cancel(handle)
    clock.cancel(handle)
    handle.cancel()
    assert clock.advance(2.0) == 0
    assert fired == []
    assert clock.pending == 0


def test_manual_clock_call_soon_is_not_synchronous():
    clock = ManualClock(origin=5.0)
    fired = []
    clock.call_soon(fired.append, "soon")
    assert fired == []  # never runs inline
    clock.advance(0.0)
    assert fired == ["soon"]


def test_manual_clock_rejects_past_and_negative():
    clock = ManualClock(origin=10.0)
    with pytest.raises(ValueError):
        clock.at(9.0, lambda: None)
    with pytest.raises(ValueError):
        clock.after(-0.1, lambda: None)
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_manual_clock_sentinel_arg_convention():
    clock = ManualClock()
    calls = []
    clock.after(1.0, lambda: calls.append("no-arg"))
    clock.after(1.0, calls.append, "with-arg")
    clock.advance(1.0)
    assert calls == ["no-arg", "with-arg"]


# ----------------------------------------------------------------------
# WallClock
# ----------------------------------------------------------------------
def _run(coro):
    return asyncio.run(coro)


def test_wall_clock_now_starts_near_zero_and_advances():
    async def scenario():
        clock = WallClock()
        first = clock.now
        assert first < 1.0  # origin defaults to construction time
        await asyncio.sleep(0.02)
        assert clock.now > first
        return True

    assert _run(scenario())


def test_wall_clock_after_fires_and_cancel_suppresses():
    async def scenario():
        clock = WallClock()
        fired = []
        clock.after(0.01, fired.append, "kept")
        doomed = clock.after(0.01, fired.append, "cancelled")
        clock.cancel(doomed)
        clock.cancel(doomed)  # idempotent
        await asyncio.sleep(0.05)
        return fired

    assert _run(scenario()) == ["kept"]


def test_wall_clock_rejects_negative_delay():
    async def scenario():
        clock = WallClock()
        with pytest.raises(ValueError):
            clock.after(-0.5, lambda: None)

    _run(scenario())


def test_wall_clock_at_in_the_past_clamps_to_now():
    async def scenario():
        clock = WallClock()
        fired = []
        clock.at(clock.now - 10.0, fired.append, "late")
        await asyncio.sleep(0.02)
        return fired

    assert _run(scenario()) == ["late"]


def test_wall_clock_explicit_origin_offsets_now():
    async def scenario():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, origin=loop.time() - 1.7e9)
        return clock.now

    assert _run(scenario()) >= 1.7e9
