"""Datagram codec: round-trips, validation, versioning."""

import json

import pytest

from repro.live.wire import KINDS, WIRE_VERSION, WireError, decode_message, encode_message

_EXAMPLES = {
    "request": {"id": 7, "attempt": 0, "client": 4, "service": 0.01},
    "response": {"id": 7, "attempt": 0, "server": 1, "enq": 1.0, "start": 1.1, "done": 1.2},
    "reject": {"id": 7, "attempt": 1, "server": 2},
    "poll": {"pid": 33},
    "poll_reply": {"pid": 33, "server": 0, "q": 2, "at": 5.5},
    "publish": {"server": 3, "entries": [["svc", 0]], "at": 2.0},
    "subscribe": {"client": 9},
}


def test_every_kind_round_trips():
    assert set(_EXAMPLES) == set(KINDS)
    for kind, fields in _EXAMPLES.items():
        data = encode_message(kind, **fields)
        msg = decode_message(data)
        assert msg["k"] == kind
        assert msg["v"] == WIRE_VERSION
        for name, value in fields.items():
            assert msg[name] == value


def test_encode_rejects_unknown_kind_and_missing_fields():
    with pytest.raises(WireError, match="unknown wire kind"):
        encode_message("gossip", x=1)
    with pytest.raises(WireError, match="missing fields"):
        encode_message("request", id=1, attempt=0)


def test_decode_rejects_garbage():
    with pytest.raises(WireError, match="undecodable"):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(WireError, match="undecodable"):
        decode_message(b"{truncated")
    with pytest.raises(WireError, match="not an object"):
        decode_message(b"[1,2,3]")


def test_decode_rejects_wrong_version_and_missing_fields():
    blob = dict(v=WIRE_VERSION + 1, k="poll", pid=1)
    with pytest.raises(WireError, match="unsupported wire version"):
        decode_message(json.dumps(blob).encode())
    with pytest.raises(WireError, match="unknown wire kind"):
        decode_message(json.dumps(dict(v=WIRE_VERSION, k="nope")).encode())
    with pytest.raises(WireError, match="missing fields"):
        decode_message(json.dumps(dict(v=WIRE_VERSION, k="poll")).encode())


def test_datagrams_are_compact_single_objects():
    data = encode_message("poll", pid=123)
    assert b" " not in data  # compact separators
    assert len(data) < 64
