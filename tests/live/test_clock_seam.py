"""Seam audit regression tests (one per audited site).

The Clock protocol allows an arbitrary origin — ``loop.time()`` on a
wall clock can read anything. Every timed component under ``cluster/``
and ``net/`` is driven here with a :class:`ManualClock` anchored at an
epoch-scale (and, where it matters, a negative) origin to prove none of
them assume time starts at ``0.0``.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cluster.availability import ServiceMappingTable, ServicePublisher
from repro.cluster.overload import OverloadController, OverloadPolicy
from repro.cluster.reliability import CircuitBreaker, ReliabilityEngine, ReliabilityPolicy
from repro.core.polling import RandomPollingPolicy
from repro.net.message import Message, MessageKind
from repro.net.switch import SwitchedEthernet
from repro.sim.clock import ManualClock
from repro.telemetry.sampler import sample_series

EPOCH = 1.7e9


# ----------------------------------------------------------------------
# circuit breaker: lazy open/half-open transitions
# ----------------------------------------------------------------------
def test_breaker_transitions_at_epoch_origin():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    assert breaker.state(EPOCH) == "closed"
    breaker.record_failure(EPOCH)
    breaker.record_failure(EPOCH + 0.1)
    assert breaker.state(EPOCH + 0.1) == "open"
    assert not breaker.allows(EPOCH + 0.5)
    assert breaker.state(EPOCH + 1.2) == "half_open"
    assert breaker.allows(EPOCH + 1.2)
    breaker.record_success(EPOCH + 1.2)
    assert breaker.state(EPOCH + 1.2) == "closed"


def test_breaker_never_compares_against_zero():
    # A breaker opened at a negative-origin time must still be open
    # "now", not leak open-state from comparing against t=0.
    breaker = CircuitBreaker(threshold=1, cooldown=10.0)
    breaker.record_failure(-100.0)
    assert breaker.state(-95.0) == "open"
    assert breaker.state(-89.0) == "half_open"


# ----------------------------------------------------------------------
# overload controller: interval/withdraw timers
# ----------------------------------------------------------------------
def _completion(start_time):
    return SimpleNamespace(start_time=start_time)


def test_overload_interval_timing_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    policy = OverloadPolicy(sojourn_target=0.05, interval=0.1, ewma_alpha=1.0,
                            shed_jitter=0.0)
    controller = OverloadController(policy, clock, workers=1,
                                    rng=np.random.default_rng(0))
    # Teach the EWMA a 0.1s service time: delay estimate = q*0.1.
    controller.observe_completion(_completion(clock.now - 0.1), queue_length=0)
    assert controller.admit(1)  # 0.1 > target starts the above-target window
    assert not controller.shedding  # within the interval grace period
    clock.advance(0.2)
    assert not controller.admit(5)  # grace elapsed -> shedding
    assert controller.shedding


def test_overload_recovery_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    policy = OverloadPolicy(sojourn_target=0.5, interval=0.01, ewma_alpha=1.0,
                            shed_jitter=0.0)
    controller = OverloadController(policy, clock, workers=1,
                                    rng=np.random.default_rng(0))
    controller.observe_completion(_completion(clock.now - 0.9), queue_length=0)
    controller.admit(9)
    clock.advance(0.05)
    controller.admit(9)
    assert controller.shedding
    # A fast completion drops the estimate below target -> recover.
    controller.observe_completion(_completion(clock.now - 0.001), queue_length=0)
    assert not controller.shedding


# ----------------------------------------------------------------------
# soft-state TTL: mapping table + publisher refresh loop
# ----------------------------------------------------------------------
def test_mapping_table_ttl_expiry_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    table = ServiceMappingTable(clock, ttl=1.0)
    table._on_publish(SimpleNamespace(payload=(3, (("svc", 0),), clock.now)))
    assert table.available("svc") == [3]
    clock.advance(0.9)
    assert table.available("svc") == [3]
    clock.advance(0.2)
    assert table.available("svc") == []


def test_publisher_refresh_loop_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    published = []
    channel = SimpleNamespace(
        publish=lambda node_id, payload: published.append(payload)
    )
    publisher = ServicePublisher(
        clock, channel, node_id=1, entries=[("svc", 0)],
        mean_interval=0.5, rng=np.random.default_rng(0),
    )
    publisher.start()
    assert len(published) == 1
    assert published[0][2] == EPOCH  # stamped with the offset clock
    clock.advance(5.0)  # jittered refresh interval is in [0.25, 0.75]
    assert 7 <= len(published) <= 21
    publisher.stop()
    before = len(published)
    clock.advance(5.0)
    assert len(published) == before  # silent after stop


# ----------------------------------------------------------------------
# retry token bucket: fresh buckets are full *now*, not at t=0
# ----------------------------------------------------------------------
def _engine(clock, **policy_kwargs):
    cluster = SimpleNamespace(sim=clock, servers=[])
    return ReliabilityEngine(cluster, ReliabilityPolicy(**policy_kwargs))


def test_retry_budget_fresh_bucket_at_negative_origin():
    # Regression: the bucket's default last-refill time was 0.0, so a
    # clock reading below zero "un-filled" a brand-new bucket.
    clock = ManualClock(origin=-100.0)
    engine = _engine(clock, retry_budget=2.0, retry_budget_refill=0.001)
    assert engine._take_retry_token(client_id=7)
    assert engine._take_retry_token(client_id=7)
    assert not engine._take_retry_token(client_id=7)  # drained


def test_retry_budget_refills_with_elapsed_time_not_absolute_time():
    clock = ManualClock(origin=EPOCH)
    engine = _engine(clock, retry_budget=1.0, retry_budget_refill=1.0)
    assert engine._take_retry_token(client_id=0)
    assert not engine._take_retry_token(client_id=0)
    clock.advance(1.5)  # refill 1 token over 1.5s
    assert engine._take_retry_token(client_id=0)
    assert not engine._take_retry_token(client_id=0)


# ----------------------------------------------------------------------
# polling discard timer
# ----------------------------------------------------------------------
class _PollCtx:
    """Minimal policy context: records polls, lets the test answer them."""

    def __init__(self, clock, n_servers=4, discard_timeout=0.01):
        self.sim = clock
        self.constants = SimpleNamespace(discard_timeout=discard_timeout)
        self.telemetry = None
        self._servers = list(range(n_servers))
        self.pending = []  # (server_id, on_reply)
        self.dispatched = []

    def rng(self, name):
        return np.random.default_rng(0)

    def available_servers(self, client):
        return self._servers

    def poll_server(self, client, server_id, on_reply):
        self.pending.append((server_id, on_reply))

    def dispatch(self, client, request, server_id):
        self.dispatched.append(server_id)


def test_polling_discard_timer_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    ctx = _PollCtx(clock)
    policy = RandomPollingPolicy(poll_size=3, discard_slow=True)
    policy.bind(ctx)
    policy.select(client=None, request=None)
    assert len(ctx.pending) == 3
    # One reply arrives; the discard timer then decides on it alone.
    sid, on_reply = ctx.pending[0]
    on_reply(sid, 2, clock.now)
    assert ctx.dispatched == []
    clock.advance(0.02)
    assert policy.timeouts_fired == 1
    assert ctx.dispatched == [sid]
    # Late replies are discarded, not double-dispatched.
    for other_sid, late in ctx.pending[1:]:
        late(other_sid, 0, clock.now)
    assert policy.replies_discarded == 2
    assert ctx.dispatched == [sid]


def test_polling_full_reply_set_cancels_discard_timer():
    clock = ManualClock(origin=EPOCH)
    ctx = _PollCtx(clock, n_servers=2)
    policy = RandomPollingPolicy(poll_size=2, discard_slow=True)
    policy.bind(ctx)
    policy.select(client=None, request=None)
    for sid, on_reply in list(ctx.pending):
        on_reply(sid, 1, clock.now)
    assert len(ctx.dispatched) == 1
    clock.advance(0.05)
    assert policy.timeouts_fired == 0  # cancelled, never fires
    assert len(ctx.dispatched) == 1


# ----------------------------------------------------------------------
# telemetry sampler: grid must be anchorable at the run's start
# ----------------------------------------------------------------------
def _sampler_cluster(clock):
    return SimpleNamespace(
        sim=clock,
        servers=[],
        network=SimpleNamespace(inflight_recorder=None, drops_recorder=None),
    )


def test_sampler_default_grid_is_bit_identical_from_zero():
    clock = ManualClock()
    clock.advance(1.0)
    series = sample_series(_sampler_cluster(clock), interval=0.25)
    np.testing.assert_array_equal(
        series["time"], np.array([0.0, 0.25, 0.5, 0.75, 1.0])
    )


def test_sampler_start_anchors_grid_at_offset_origin():
    # Without `start`, a grid from 0 to an epoch-scale `now` would try
    # to materialize ~3.4e10 samples.
    clock = ManualClock(origin=EPOCH)
    clock.advance(1.0)
    series = sample_series(_sampler_cluster(clock), interval=0.25, start=EPOCH)
    assert series["time"].shape == (5,)
    np.testing.assert_allclose(series["time"] - EPOCH, [0.0, 0.25, 0.5, 0.75, 1.0])


def test_sampler_end_before_start_degenerates_to_one_sample():
    clock = ManualClock(origin=EPOCH)
    series = sample_series(
        _sampler_cluster(clock), interval=0.25, end_time=EPOCH - 5.0, start=EPOCH
    )
    np.testing.assert_array_equal(series["time"], np.array([EPOCH]))


# ----------------------------------------------------------------------
# switch egress ports: idle means idle at any origin
# ----------------------------------------------------------------------
def test_switch_idle_port_does_not_delay_at_negative_origin():
    # Regression: busy_until started at 0.0, so a clock reading below
    # zero made an idle port look busy until t=0.
    clock = ManualClock(origin=-50.0)
    switch = SwitchedEthernet(clock, n_ports=2, bandwidth_bps=100e6,
                              propagation=20e-6)
    message = Message(MessageKind.REQUEST, 0, 1, None, 512, clock.now)
    done = switch.transit(message, lambda m: None)
    expected = clock.now + 20e-6 + 512 * 8.0 / 100e6
    assert done == pytest.approx(expected)
    assert switch.port_backlog(1) > 0.0


def test_switch_fifo_serialization_at_epoch_origin():
    clock = ManualClock(origin=EPOCH)
    switch = SwitchedEthernet(clock, n_ports=2, bandwidth_bps=100e6,
                              propagation=20e-6)
    ser = 512 * 8.0 / 100e6
    first = switch.transit(Message(MessageKind.REQUEST, 0, 1, None, 512, clock.now),
                           lambda m: None)
    second = switch.transit(Message(MessageKind.REQUEST, 0, 1, None, 512, clock.now),
                            lambda m: None)
    assert first == pytest.approx(EPOCH + 20e-6 + ser)
    assert second == pytest.approx(first + ser)  # queued behind the first
