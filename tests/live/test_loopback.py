"""Loopback harness smoke tests (sleep mode: fast and deterministic)."""

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.live.clock import WallClock
from repro.live.harness import LiveRunConfig, generate_workload, run_loopback
from repro.live.server import LiveServer
from repro.net.message import MessageKind

#: small sleep-mode base config every test derives from
BASE = LiveRunConfig(
    policy="random",
    policy_params={},
    workload_params={"mean_service": 0.002},
    load=0.2,
    n_servers=3,
    n_clients=4,
    n_requests=40,
    seed=0,
    mode="sleep",
    request_timeout=2.0,
    time_limit=30.0,
)


def test_sleep_mode_smoke_run_completes_everything():
    result = run_loopback(BASE)
    summary = result.summary
    assert summary["n_failed"] == 0
    assert summary["n_measured"] == BASE.n_requests * (1 - BASE.warmup_fraction)
    assert summary["p50_response_time"] > 0.0
    served = sum(c["completed"] for c in result.server_counters)
    assert served == BASE.n_requests
    assert result.resilience_counters["wire_errors"] == 0
    assert result.arrival_epochs.shape == (BASE.n_requests,)
    assert result.arrival_epochs[0] > 1e9  # epoch-based, for --record-trace


def test_polling_policy_polls_real_servers():
    result = run_loopback(replace(BASE, policy="polling",
                                  policy_params={"poll_size": 2}))
    assert result.summary["n_failed"] == 0
    assert result.policy_counters["polls_sent"] == 2 * BASE.n_requests
    assert result.policy_counters["replies_received"] == 2 * BASE.n_requests
    assert result.summary["mean_poll_time"] > 0.0
    polls = sum(c["polls_served"] for c in result.server_counters)
    assert polls == 2 * BASE.n_requests


def test_workload_matches_sim_baseline_arrays():
    cfg = BASE
    gaps, services = generate_workload(cfg)
    assert gaps.shape == services.shape == (cfg.n_requests,)
    # The mean-based rescale targets n_servers * load exactly.
    target_interval = services.mean() / (cfg.n_servers * cfg.load)
    assert gaps.mean() == pytest.approx(target_interval)
    # Same seed -> bit-identical arrays (what makes sim-vs-real fair).
    gaps2, services2 = generate_workload(cfg)
    np.testing.assert_array_equal(gaps, gaps2)
    np.testing.assert_array_equal(services, services2)


def test_spin_overcommit_guard():
    with pytest.raises(ValueError, match="over-commits"):
        run_loopback(replace(BASE, mode="spin", load=0.5))  # 3 * 0.5 > 0.85


def test_unsupported_policy_rejected():
    with pytest.raises(ValueError, match="not supported by the live runtime"):
        run_loopback(replace(BASE, policy="broadcast"))


def test_hedging_rejected_live():
    with pytest.raises(ValueError, match="hedged requests are not supported"):
        run_loopback(replace(
            BASE, reliability_params={"hedge_quantile": 0.95, "deadline": 1.0}
        ))


def test_reliability_backoff_runs_live():
    result = run_loopback(replace(
        BASE,
        reliability_params={"deadline": 2.0, "backoff_base": 0.001,
                            "retry_budget": 10.0},
    ))
    assert result.summary["n_failed"] == 0
    assert "retries_spent" in result.resilience_counters or result.resilience_counters


def test_telemetry_flows_through_existing_collector():
    result = run_loopback(replace(BASE, telemetry=True, sample_interval=0.02))
    report = result.telemetry_report
    assert report is not None
    assert len(report.spans) == BASE.n_requests
    assert report.series["time"].size > 1
    accounting = report.accounting
    assert accounting["messages"][MessageKind.REQUEST.value] >= BASE.n_requests
    assert accounting["messages"][MessageKind.RESPONSE.value] == BASE.n_requests


def test_availability_soft_state_publishes_live():
    result = run_loopback(replace(
        BASE, availability=True, availability_refresh=0.1, availability_ttl=3.0
    ))
    assert result.summary["n_failed"] == 0


def test_static_bound_rejections_nack_and_fail():
    # max_queue=0 makes every server NACK every request: each request
    # burns its retries on rejects and fails terminally.
    cfg = replace(BASE, n_requests=6, server_max_queue=0, max_retries=2)
    result = run_loopback(cfg)
    assert result.summary["n_failed"] == cfg.n_requests
    rejected = sum(c["rejected"] for c in result.server_counters)
    assert rejected == cfg.n_requests * (cfg.max_retries + 1)


def test_overload_shed_sends_nack():
    async def scenario():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop)
        from repro.cluster.overload import OverloadPolicy

        server = LiveServer(
            0, clock, mode="sleep",
            overload=OverloadPolicy(sojourn_target=0.001, interval=0.001),
        )
        transport, _ = await loop.create_datagram_endpoint(
            lambda: server, local_addr=("127.0.0.1", 0)
        )
        received = []

        class Sink(asyncio.DatagramProtocol):
            def connection_made(self, t):
                self.transport = t

            def datagram_received(self, data, addr):
                from repro.live.wire import decode_message

                received.append(decode_message(data))

        sink_transport, sink = await loop.create_datagram_endpoint(
            Sink, local_addr=("127.0.0.1", 0)
        )
        try:
            from repro.live.wire import encode_message

            addr = server.address

            def send(req_id):
                sink.transport.sendto(
                    encode_message("request", id=req_id, attempt=0, client=9,
                                   service=0.5),
                    addr,
                )

            send(1)  # occupies the worker for 0.5s
            await asyncio.sleep(0.01)
            server.overload.ewma_service = 1.0  # learned slow services
            send(2)  # delay estimate 1.0 > target: starts the window
            await asyncio.sleep(0.01)  # longer than the grace interval
            send(3)  # now shedding -> REJECT NACK
            await asyncio.sleep(0.05)
            kinds = [m["k"] for m in received]
            assert kinds == ["reject"]
            assert received[0]["id"] == 3
            assert server.rejects_sent == 1
            assert server.overload.shed_count == 1
        finally:
            server.close()
            sink_transport.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=20))
