"""Tests for the overload-control subsystem (DESIGN.md §12).

Covers the policy value object, the per-server controller state machine
(EWMA estimator, grace interval, shed jitter, withdrawal/rejoin), the
fast-reject NACK flow end-to-end, the rejection-exclusion fix in
candidate filtering, REJECT-as-breaker-signal in the reliability layer,
the server_max_queue × reliability interplay (hedge copies never
double-count; a saturated cluster fails fast), and the zero-overhead
guarantee: a cluster built without a policy (or with the all-default
policy) is bit-identical to the pre-overload code paths.
"""

import math

import numpy as np
import pytest

from repro.cluster import (
    OverloadController,
    OverloadPolicy,
    ReliabilityPolicy,
    Request,
    ServiceCluster,
)
from repro.core import RandomPolicy
from repro.net.message import MessageKind
from repro.sim.calendar import make_simulator


def build(policy=None, n_servers=4, n_requests=200, load=0.5, seed=3,
          mean_service=0.01, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy or RandomPolicy(), seed=seed, **kwargs
    )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def enabled_policy(**overrides):
    values = dict(sojourn_target=0.05, interval=0.01)
    values.update(overrides)
    return OverloadPolicy(**values)


class FakeSim:
    """Just enough simulator for controller unit tests: a clock."""

    def __init__(self):
        self.now = 0.0


def controller(policy=None, workers=1, rng=None):
    return OverloadController(
        policy or enabled_policy(), FakeSim(), workers=workers, rng=rng
    )


def observe(ctrl, elapsed, queue_length=0):
    """Feed one completed service of duration ``elapsed`` into the EWMA."""
    request = Request(index=0, client_id=0, service_time=elapsed, arrival_time=0.0)
    request.start_time = ctrl.sim.now - elapsed
    ctrl.observe_completion(request, queue_length)


# ----------------------------------------------------------------------
# OverloadPolicy value object
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"sojourn_target": 0.0},
        {"sojourn_target": -0.1},
        {"sojourn_target": 0.1, "interval": 0.0},
        {"sojourn_target": 0.1, "ewma_alpha": 0.0},
        {"sojourn_target": 0.1, "ewma_alpha": 1.5},
        {"sojourn_target": 0.1, "shed_jitter": -0.1},
        {"sojourn_target": 0.1, "shed_jitter": 1.0},
        {"sojourn_target": 0.1, "withdraw_after": -1.0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        OverloadPolicy(**kwargs)


def test_default_policy_is_disabled():
    assert not OverloadPolicy().enabled


def test_sojourn_target_enables_the_policy():
    assert OverloadPolicy(sojourn_target=0.1).enabled


# ----------------------------------------------------------------------
# OverloadController state machine
# ----------------------------------------------------------------------

def test_controller_requires_enabled_policy():
    with pytest.raises(ValueError, match="enabled"):
        OverloadController(OverloadPolicy(), FakeSim())


def test_shed_jitter_requires_rng():
    with pytest.raises(ValueError, match="rng"):
        OverloadController(enabled_policy(shed_jitter=0.1), FakeSim())


def test_cold_estimator_admits_everything():
    ctrl = controller()
    assert ctrl.ewma_service == 0.0
    assert ctrl.admit(10_000)
    assert not ctrl.shedding


def test_ewma_seeds_then_smooths():
    ctrl = controller(enabled_policy(ewma_alpha=0.5))
    observe(ctrl, 0.02)
    assert ctrl.ewma_service == pytest.approx(0.02)
    observe(ctrl, 0.04)
    assert ctrl.ewma_service == pytest.approx(0.03)  # 0.02 + 0.5*(0.04-0.02)


def test_estimated_delay_scales_with_queue_and_workers():
    ctrl = controller(workers=2)
    observe(ctrl, 0.02)
    assert ctrl.estimated_delay(6) == pytest.approx(6 * 0.02 / 2)


def test_grace_interval_before_shedding():
    """The estimate must stay above target for `interval` first."""
    ctrl = controller(enabled_policy(sojourn_target=0.05, interval=0.01))
    observe(ctrl, 0.02)
    assert ctrl.admit(10)  # above target, but inside the grace interval
    assert not ctrl.shedding
    ctrl.sim.now += 0.02
    assert not ctrl.admit(10)  # sustained: shedding starts
    assert ctrl.shedding
    assert ctrl.shed_count == 1


def test_recovery_is_immediate_on_low_estimate():
    ctrl = controller(enabled_policy(sojourn_target=0.05, interval=0.01))
    observe(ctrl, 0.02)
    ctrl.admit(10)
    ctrl.sim.now += 0.02
    assert not ctrl.admit(10)
    assert ctrl.admit(1)  # estimate back under target: admit + reset
    assert not ctrl.shedding
    ctrl.sim.now += 0.001
    assert ctrl.admit(10)  # the grace interval starts over


def test_shed_jitter_admits_a_fraction():
    ctrl = OverloadController(
        enabled_policy(shed_jitter=0.5), FakeSim(),
        rng=np.random.default_rng(0),
    )
    observe(ctrl, 0.02)
    ctrl.admit(10)
    ctrl.sim.now += 0.02
    admitted = sum(ctrl.admit(10) for _ in range(400))
    assert ctrl.jitter_admits == admitted
    assert ctrl.shed_count == 400 - admitted
    assert 100 < admitted < 300  # ~50% probe traffic


def test_withdraw_after_sustained_shedding_then_rejoin():
    ctrl = controller(enabled_policy(
        sojourn_target=0.05, interval=0.01, withdraw_after=0.05,
    ))
    calls = []
    ctrl.on_withdraw = lambda: calls.append("withdraw")
    ctrl.on_rejoin = lambda: calls.append("rejoin")
    observe(ctrl, 0.02)
    ctrl.admit(10)
    ctrl.sim.now += 0.02
    assert not ctrl.admit(10)
    assert not ctrl.withdrawn  # shedding, but not long enough to withdraw
    ctrl.sim.now += 0.05
    assert not ctrl.admit(10)
    assert ctrl.withdrawn
    assert calls == ["withdraw"]
    # A withdrawn server sees no arrivals: the completion path is the
    # recovery detector while the backlog drains.
    observe(ctrl, 0.02, queue_length=1)
    assert not ctrl.withdrawn
    assert calls == ["withdraw", "rejoin"]
    assert ctrl.counters() == {
        "requests_shed": 2,
        "shed_jitter_admits": 0,
        "overload_withdrawals": 1,
        "overload_rejoins": 1,
    }


def test_completion_path_tracks_overload_without_arrivals():
    """observe_completion starts the above-target clock too (a server
    can go overloaded while only draining, e.g. after a speed drop)."""
    ctrl = controller(enabled_policy(sojourn_target=0.05, interval=0.01))
    observe(ctrl, 0.02, queue_length=10)  # estimate now above target
    assert ctrl._above_since is not None
    ctrl.sim.now += 0.02
    assert not ctrl.admit(10)


# ----------------------------------------------------------------------
# cluster wiring: installation + zero-overhead-off guarantee
# ----------------------------------------------------------------------

def test_disabled_policy_installs_no_controllers():
    cluster = build(overload=OverloadPolicy())
    assert cluster.overload is None
    assert all(server.overload is None for server in cluster.servers)
    cluster = build(overload=None)
    assert cluster.overload is None


def test_enabled_policy_installs_per_server_controllers():
    cluster = build(overload=enabled_policy())
    assert cluster.overload is not None
    assert all(server.overload is not None for server in cluster.servers)
    # No jitter -> no RNG substream is ever created (zero draws).
    assert all(server.overload.rng is None for server in cluster.servers)
    jittered = build(overload=enabled_policy(shed_jitter=0.1))
    assert all(server.overload.rng is not None for server in jittered.servers)


def test_disabled_policy_is_bit_identical_to_no_policy():
    """The all-default policy must take exactly the legacy code paths."""
    baseline = build(seed=17, n_requests=400, request_timeout=0.5, max_retries=3)
    disabled = build(
        seed=17, n_requests=400, request_timeout=0.5, max_retries=3,
        overload=OverloadPolicy(),
    )
    a = baseline.run()
    b = disabled.run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)
    assert baseline.sim.events_executed == disabled.sim.events_executed


def test_overload_counters_shape():
    plain = build(server_max_queue=2)
    assert set(plain.overload_counters()) == {"requests_rejected"}
    enabled = build(overload=enabled_policy())
    assert set(enabled.overload_counters()) == {
        "requests_rejected", "requests_shed", "shed_jitter_admits",
        "overload_withdrawals", "overload_rejoins", "rejects_sent",
        "stale_rejects_ignored",
    }


# ----------------------------------------------------------------------
# fast-reject NACKs
# ----------------------------------------------------------------------

def saturating_build(load=4.0, overload=None, reliability=None, seed=11,
                     n_requests=300, max_retries=6):
    """A deliberately undersized cluster: static bound 2, heavy load."""
    return build(
        n_servers=2, load=load, seed=seed, n_requests=n_requests,
        server_max_queue=2, request_timeout=0.2, max_retries=max_retries,
        overload=overload, reliability=reliability,
    )


def test_fast_reject_sends_nacks_over_the_transport():
    # A huge sojourn target: only the *static* bound rejects, proving
    # fast_reject covers static rejections once the controller exists.
    cluster = saturating_build(overload=enabled_policy(sojourn_target=100.0))
    metrics = cluster.run()
    assert cluster.rejects_sent > 0
    assert cluster.network.message_counts[MessageKind.REJECT] == cluster.rejects_sent
    rejected = sum(server.rejected_count for server in cluster.servers)
    assert rejected == cluster.rejects_sent  # every rejection NACKed
    # Every request still reached a terminal outcome exactly once.
    done = np.isfinite(metrics.response_time).sum() + metrics.failed.sum()
    assert done == cluster.n_requests


def test_fast_reject_off_keeps_the_wire_silent():
    cluster = saturating_build(
        overload=enabled_policy(sojourn_target=100.0, fast_reject=False)
    )
    cluster.run()
    assert sum(server.rejected_count for server in cluster.servers) > 0
    assert cluster.rejects_sent == 0
    assert cluster.network.message_counts.get(MessageKind.REJECT, 0) == 0


def test_naive_cluster_never_sends_nacks():
    cluster = saturating_build()  # static bound only, no controller
    cluster.run()
    assert sum(server.rejected_count for server in cluster.servers) > 0
    assert cluster.network.message_counts.get(MessageKind.REJECT, 0) == 0


def test_adaptive_shedding_rejects_under_sustained_overload():
    cluster = build(
        n_servers=2, load=3.0, seed=5, n_requests=400,
        request_timeout=0.3, max_retries=8,
        overload=enabled_policy(sojourn_target=0.02, interval=0.005),
    )
    cluster.run()
    counters = cluster.overload_counters()
    assert counters["requests_shed"] > 0
    assert counters["requests_rejected"] >= counters["requests_shed"]


# ----------------------------------------------------------------------
# rejection exclusion in candidate filtering (the reselect fix)
# ----------------------------------------------------------------------

def test_rejecting_server_excluded_during_reselect():
    cluster = build(n_servers=3)
    client = cluster.clients[0]
    request = Request(index=0, client_id=client.node_id,
                      service_time=0.01, arrival_time=0.0)
    assert cluster.available_servers(client) == [0, 1, 2]
    request.last_rejected_by = 1
    cluster._selecting_request = request
    assert cluster.available_servers(client) == [0, 2]
    cluster._selecting_request = None
    assert cluster.available_servers(client) == [0, 1, 2]


def test_exclusion_yields_when_no_alternative_exists():
    cluster = build(n_servers=1)
    client = cluster.clients[0]
    request = Request(index=0, client_id=client.node_id,
                      service_time=0.01, arrival_time=0.0)
    request.last_rejected_by = 0
    cluster._selecting_request = request
    assert cluster.available_servers(client) == [0]


def test_dispatch_clears_the_exclusion():
    cluster = build(n_servers=2)
    client = cluster.clients[0]
    request = Request(index=0, client_id=client.node_id,
                      service_time=0.01, arrival_time=0.0)
    request.last_rejected_by = 1
    cluster.dispatch(client, request, 0)
    assert request.last_rejected_by == -1


# ----------------------------------------------------------------------
# REJECT as a reliability signal (breakers, hedges)
# ----------------------------------------------------------------------

def test_rejects_feed_circuit_breakers():
    cluster = build(reliability=ReliabilityPolicy(
        breaker_threshold=2, breaker_cooldown=0.5,
    ))
    engine = cluster.reliability
    request = Request(index=0, client_id=cluster.clients[0].node_id,
                      service_time=0.01, arrival_time=0.0)
    engine.on_reject(request, 1)
    assert engine.breakers[1].state(cluster.sim.now) == "closed"
    engine.on_reject(request, 1)
    assert engine.breakers[1].state(cluster.sim.now) == "open"
    assert engine.rejects_signaled == 2
    assert engine.counters()["rejects_signaled"] == 2.0


def test_rejecting_server_recorded_for_hedge_exclusion():
    cluster = build(reliability=ReliabilityPolicy(hedge_quantile=0.9))
    engine = cluster.reliability
    client = cluster.clients[0]
    request = Request(index=0, client_id=client.node_id,
                      service_time=0.01, arrival_time=0.0)
    engine.on_dispatch(client, request, 2)
    engine.on_reject(request, 3)
    assert engine._states[request.index].rejected_servers == {3}


# ----------------------------------------------------------------------
# server_max_queue × reliability (hedges + saturation), both engines
# ----------------------------------------------------------------------

HEDGING = ReliabilityPolicy(
    hedge_quantile=0.5, hedge_min_samples=8, breaker_threshold=4,
    breaker_cooldown=0.1,
)


@pytest.mark.parametrize("engine", ["heap", "calendar"])
@pytest.mark.parametrize(
    "reliability", [None, HEDGING], ids=["naive", "hedged"]
)
def test_saturated_cluster_terminal_outcomes_count_once(engine, reliability):
    """Rejected primaries and hedge copies must never double-count: with
    admission control biting hard, every request reaches exactly one
    terminal outcome and the run terminates under both engines."""
    cluster = build(
        n_servers=2, load=4.0, seed=11, n_requests=300,
        server_max_queue=2, request_timeout=0.2, max_retries=3,
        overload=enabled_policy(sojourn_target=100.0),
        reliability=reliability, engine=engine,
    )
    metrics = cluster.run()
    completed = int(np.isfinite(metrics.response_time).sum())
    failed = int(metrics.failed.sum())
    assert completed + failed == cluster.n_requests
    assert cluster._completed == cluster.n_requests
    assert sum(s.rejected_count for s in cluster.servers) > 0
    # Served completions can only exceed recorded successes via stale
    # (already-terminal) responses — never the other way around.
    assert sum(s.completed_count for s in cluster.servers) >= completed


@pytest.mark.parametrize("engine", ["heap", "calendar"])
@pytest.mark.parametrize(
    "reliability",
    [None, ReliabilityPolicy(breaker_threshold=3, breaker_cooldown=0.05)],
    ids=["naive", "breakers"],
)
def test_fully_saturated_cluster_fails_fast(engine, reliability):
    """When every server is full, excess requests burn NACK round trips
    (sub-ms each), not timeout budgets: no client timeout is even
    configured, yet every excess request terminates via NACKed retries
    alone, within milliseconds of arriving."""
    n_requests = 40
    cluster = ServiceCluster(
        n_servers=2, policy=RandomPolicy(), seed=7,
        max_retries=3, server_max_queue=1,
        overload=enabled_policy(sojourn_target=100.0),
        reliability=reliability, engine=engine,
    )
    # Two long jobs occupy both servers; the rest arrive into full
    # queues and must fail fast via NACKed retries.
    gaps = np.full(n_requests, 1e-5)
    services = np.full(n_requests, 5.0)
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    assert int(metrics.failed.sum()) == n_requests - 2
    assert cluster.request_timeouts_fired == 0
    assert cluster.rejects_sent > 0
    # The run is bounded by the two long services, not timeout chains.
    assert cluster.sim.now == pytest.approx(5.0, abs=0.1)
    # Every failed request exhausted its retry budget via NACKs.
    failed_retries = metrics.retries[metrics.failed]
    assert (failed_retries == 4).all()
