"""Unit/integration tests for ServiceCluster."""

import numpy as np
import pytest

from repro.cluster import (
    ChaosInjector,
    ChaosSpec,
    ClusterMetrics,
    ServiceCluster,
)
from repro.core import IdealOracle, RandomPolicy, make_policy
from repro.net import MessageKind, PAPER_NET
from repro.sim.engine import SimulationError


def build(policy=None, n_servers=4, n_requests=200, load=0.5, seed=3, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy or RandomPolicy(), seed=seed, **kwargs
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def test_constructor_validation():
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=0, policy=RandomPolicy())
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), n_clients=0)
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), server_speeds=[1.0])


def test_run_without_workload_raises():
    cluster = ServiceCluster(n_servers=2, policy=RandomPolicy())
    with pytest.raises(SimulationError):
        cluster.run()


def test_load_workload_validation():
    cluster = ServiceCluster(n_servers=2, policy=RandomPolicy())
    with pytest.raises(ValueError):
        cluster.load_workload(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        cluster.load_workload(np.array([]), np.array([]))


def test_all_requests_complete():
    cluster = build(n_requests=500)
    metrics = cluster.run()
    assert np.isfinite(metrics.response_time).all()
    assert (metrics.server_id >= 0).all()
    assert metrics.failed.sum() == 0


def test_response_time_includes_network_and_service():
    """response >= request RTT + service time for every request."""
    cluster = build(n_requests=300)
    metrics = cluster.run()
    service = cluster._service_times
    floor = service + PAPER_NET.request_response_total - 1e-12
    assert (metrics.response_time >= floor).all()


def test_conservation_per_server_counts():
    cluster = build(n_requests=400)
    metrics = cluster.run()
    counts = metrics.server_counts(cluster.n_servers, warmup_fraction=0.0)
    assert counts.sum() == 400


def test_instant_policy_has_zero_poll_time():
    cluster = build(policy=IdealOracle(), n_requests=200)
    metrics = cluster.run()
    assert np.allclose(metrics.poll_time, 0.0)


def test_polling_policy_poll_time_at_least_one_udp_rtt():
    cluster = build(policy=make_policy("polling", poll_size=2), n_requests=200)
    metrics = cluster.run()
    assert (metrics.poll_time >= PAPER_NET.udp_rtt - 1e-12).all()


def test_deterministic_across_runs():
    a = build(policy=make_policy("polling", poll_size=2), seed=9, n_requests=300).run()
    b = build(policy=make_policy("polling", poll_size=2), seed=9, n_requests=300).run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)


def test_different_seeds_differ():
    a = build(seed=1, n_requests=300).run()
    b = build(seed=2, n_requests=300).run()
    assert not np.array_equal(a.response_time, b.response_time)


def test_message_accounting_request_response():
    cluster = build(n_requests=100)
    cluster.run()
    counts = cluster.network.message_counts
    assert counts[MessageKind.REQUEST] == 100
    assert counts[MessageKind.RESPONSE] == 100


def test_requests_assigned_round_robin_to_clients():
    cluster = build(n_requests=100, n_clients=4)
    metrics = cluster.run()
    del metrics
    # client node ids start after server ids
    assert len(cluster.clients) == 4


def test_metrics_summary_fields():
    cluster = build(n_requests=300)
    metrics = cluster.run()
    summary = metrics.summary(warmup_fraction=0.1)
    assert summary["n_measured"] == 270
    assert summary["mean_response_time"] > 0
    assert summary["p99_response_time"] >= summary["p50_response_time"]
    with pytest.raises(ValueError):
        metrics.summary(warmup_fraction=1.0)


def test_ideal_beats_random_under_load():
    random_metrics = build(policy=RandomPolicy(), n_requests=3000, load=0.9, seed=5).run()
    ideal_metrics = build(policy=IdealOracle(), n_requests=3000, load=0.9, seed=5).run()
    assert (
        np.nanmean(ideal_metrics.response_time)
        < 0.7 * np.nanmean(random_metrics.response_time)
    )


def test_availability_mode_provides_candidates():
    cluster = build(availability=True, n_requests=200)
    metrics = cluster.run()
    assert metrics.failed.sum() == 0
    client = cluster.clients[0]
    assert cluster.available_servers(client) == list(range(cluster.n_servers))


def test_server_speeds_respected():
    cluster = build(server_speeds=[2.0, 1.0, 1.0, 1.0], n_requests=100)
    assert cluster.servers[0].speed == 2.0
    cluster.run()


# ----------------------------------------------------------------------
# timeout/response/retry races: exactly one outcome per request
# ----------------------------------------------------------------------

class CountingMetrics(ClusterMetrics):
    """Metrics that count ``record()`` calls per request index — a
    double-recorded outcome would silently overwrite in the base class,
    so races are asserted on the call counts, not the arrays."""

    __slots__ = ("records",)

    def __init__(self, n):
        super().__init__(n)
        self.records = {}

    def record(self, request):
        self.records[request.index] = self.records.get(request.index, 0) + 1
        super().record(request)


def _install_counting_metrics(cluster):
    counting = CountingMetrics(cluster.n_requests)
    cluster.metrics = counting
    return counting


def test_late_response_after_terminal_failure_is_ignored():
    """A RESPONSE that arrives after its request already failed
    terminally (every retry burned) must not record a second outcome."""
    n = 5
    cluster = ServiceCluster(
        n_servers=2, policy=RandomPolicy(), seed=0,
        request_timeout=0.01, max_retries=0,
    )
    # Service times far beyond the timeout: every request times out,
    # fails terminally, and its response arrives long after.
    cluster.load_workload(np.full(n, 0.001), np.full(n, 0.5))
    counting = _install_counting_metrics(cluster)
    metrics = cluster.run()
    assert metrics.failed.all()
    assert not np.isfinite(metrics.response_time).any()
    # run() stops at the last terminal failure; drain the still-queued
    # service completions so their responses actually arrive late.
    cluster.sim.run()
    assert cluster.stale_responses_ignored == n
    assert counting.records == {i: 1 for i in range(n)}
    assert metrics.failed.all()  # the late responses changed nothing


def test_duplicate_request_deliveries_record_once():
    """Duplicated REQUEST deliveries (chaos) never double-enqueue or
    double-record: at most one live copy per server, one outcome each."""
    cluster = build(n_requests=400, request_timeout=0.2, max_retries=10)
    counting = _install_counting_metrics(cluster)
    ChaosInjector(cluster, spec=ChaosSpec(duplicate=0.5))
    metrics = cluster.run()
    assert cluster.duplicate_deliveries_ignored > 0
    assert counting.records == {i: 1 for i in range(cluster.n_requests)}
    assert (np.isfinite(metrics.response_time) ^ metrics.failed).all()


def test_crash_retry_race_records_single_outcome():
    """A crash-triggered retry racing duplicated deliveries of the same
    request still produces exactly one terminal outcome."""
    cluster = ServiceCluster(
        n_servers=4, n_clients=2, policy=RandomPolicy(), seed=7,
        availability=True, availability_refresh=0.05, availability_ttl=0.15,
        request_timeout=0.05, max_retries=20,
    )
    rng = np.random.default_rng(7)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * 0.9), 1500)
    services = rng.exponential(mean_service, 1500)
    cluster.load_workload(gaps, services)
    counting = _install_counting_metrics(cluster)
    injector = ChaosInjector(cluster, spec=ChaosSpec(duplicate=0.3))
    injector.schedule_crash(1, at=0.2)
    metrics = cluster.run()
    # The race ingredients actually occurred...
    assert cluster.server_loss_retries > 0
    assert cluster.duplicate_deliveries_ignored > 0
    # ...and every request still resolved exactly once.
    assert counting.records == {i: 1 for i in range(cluster.n_requests)}
    assert (np.isfinite(metrics.response_time) ^ metrics.failed).all()
