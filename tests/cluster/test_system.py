"""Unit/integration tests for ServiceCluster."""

import numpy as np
import pytest

from repro.cluster import ServiceCluster
from repro.core import IdealOracle, RandomPolicy, make_policy
from repro.net import MessageKind, PAPER_NET
from repro.sim.engine import SimulationError


def build(policy=None, n_servers=4, n_requests=200, load=0.5, seed=3, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy or RandomPolicy(), seed=seed, **kwargs
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def test_constructor_validation():
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=0, policy=RandomPolicy())
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), n_clients=0)
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), server_speeds=[1.0])


def test_run_without_workload_raises():
    cluster = ServiceCluster(n_servers=2, policy=RandomPolicy())
    with pytest.raises(SimulationError):
        cluster.run()


def test_load_workload_validation():
    cluster = ServiceCluster(n_servers=2, policy=RandomPolicy())
    with pytest.raises(ValueError):
        cluster.load_workload(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        cluster.load_workload(np.array([]), np.array([]))


def test_all_requests_complete():
    cluster = build(n_requests=500)
    metrics = cluster.run()
    assert np.isfinite(metrics.response_time).all()
    assert (metrics.server_id >= 0).all()
    assert metrics.failed.sum() == 0


def test_response_time_includes_network_and_service():
    """response >= request RTT + service time for every request."""
    cluster = build(n_requests=300)
    metrics = cluster.run()
    service = cluster._service_times
    floor = service + PAPER_NET.request_response_total - 1e-12
    assert (metrics.response_time >= floor).all()


def test_conservation_per_server_counts():
    cluster = build(n_requests=400)
    metrics = cluster.run()
    counts = metrics.server_counts(cluster.n_servers, warmup_fraction=0.0)
    assert counts.sum() == 400


def test_instant_policy_has_zero_poll_time():
    cluster = build(policy=IdealOracle(), n_requests=200)
    metrics = cluster.run()
    assert np.allclose(metrics.poll_time, 0.0)


def test_polling_policy_poll_time_at_least_one_udp_rtt():
    cluster = build(policy=make_policy("polling", poll_size=2), n_requests=200)
    metrics = cluster.run()
    assert (metrics.poll_time >= PAPER_NET.udp_rtt - 1e-12).all()


def test_deterministic_across_runs():
    a = build(policy=make_policy("polling", poll_size=2), seed=9, n_requests=300).run()
    b = build(policy=make_policy("polling", poll_size=2), seed=9, n_requests=300).run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)


def test_different_seeds_differ():
    a = build(seed=1, n_requests=300).run()
    b = build(seed=2, n_requests=300).run()
    assert not np.array_equal(a.response_time, b.response_time)


def test_message_accounting_request_response():
    cluster = build(n_requests=100)
    cluster.run()
    counts = cluster.network.message_counts
    assert counts[MessageKind.REQUEST] == 100
    assert counts[MessageKind.RESPONSE] == 100


def test_requests_assigned_round_robin_to_clients():
    cluster = build(n_requests=100, n_clients=4)
    metrics = cluster.run()
    del metrics
    # client node ids start after server ids
    assert len(cluster.clients) == 4


def test_metrics_summary_fields():
    cluster = build(n_requests=300)
    metrics = cluster.run()
    summary = metrics.summary(warmup_fraction=0.1)
    assert summary["n_measured"] == 270
    assert summary["mean_response_time"] > 0
    assert summary["p99_response_time"] >= summary["p50_response_time"]
    with pytest.raises(ValueError):
        metrics.summary(warmup_fraction=1.0)


def test_ideal_beats_random_under_load():
    random_metrics = build(policy=RandomPolicy(), n_requests=3000, load=0.9, seed=5).run()
    ideal_metrics = build(policy=IdealOracle(), n_requests=3000, load=0.9, seed=5).run()
    assert (
        np.nanmean(ideal_metrics.response_time)
        < 0.7 * np.nanmean(random_metrics.response_time)
    )


def test_availability_mode_provides_candidates():
    cluster = build(availability=True, n_requests=200)
    metrics = cluster.run()
    assert metrics.failed.sum() == 0
    client = cluster.clients[0]
    assert cluster.available_servers(client) == list(range(cluster.n_servers))


def test_server_speeds_respected():
    cluster = build(server_speeds=[2.0, 1.0, 1.0, 1.0], n_requests=100)
    assert cluster.servers[0].speed == 2.0
    cluster.run()
