"""Tests for the application-level service framework."""

import numpy as np
import pytest

from repro.cluster import ApplicationCluster, ServiceSpec, call, compute
from repro.net import PAPER_NET
from repro.sim.engine import SimulationError


def simple_handler(service_time=0.005):
    def handler(ctx, request):
        yield compute(service_time)
        return ("ok", request.payload)

    return handler


def make_app(n_nodes=4, poll_size=2, workers=1, seed=5, replication=4,
             handler=None):
    app = ApplicationCluster(n_nodes=n_nodes, seed=seed, workers=workers,
                             poll_size=poll_size)
    app.place_service(
        ServiceSpec("svc", n_partitions=1, replication=replication),
        node_ids=list(range(n_nodes)),
        handler=handler or simple_handler(),
    )
    return app


def test_constructor_validation():
    with pytest.raises(ValueError):
        ApplicationCluster(n_nodes=0)
    with pytest.raises(ValueError):
        ApplicationCluster(n_nodes=2, poll_size=-1)
    with pytest.raises(ValueError):
        ApplicationCluster(n_nodes=2, workers=0)


def test_place_service_validation():
    app = ApplicationCluster(n_nodes=2)
    with pytest.raises(ValueError):
        app.place_service(ServiceSpec("s"), [5], simple_handler())
    with pytest.raises(KeyError):
        app.handler_for("ghost")


def test_single_access_roundtrip():
    app = make_app()
    results = []
    signal = app.async_call(app.client_ids[0], "svc", 0, payload=7)
    signal.add_callback(lambda s: results.append(s.value))
    app.sim.run()
    assert results == [("ok", 7)]
    # Response time = polls + request RTT + service.
    recorded = app.response_times["svc"].values()
    expected = PAPER_NET.udp_rtt + PAPER_NET.request_response_total + 0.005
    assert recorded[0] == pytest.approx(expected)


def test_random_selection_mode():
    app = make_app(poll_size=0)
    signal = app.async_call(app.client_ids[0], "svc", 0, None)
    app.sim.run()
    assert signal.ok
    # No polls sent in random mode.
    from repro.net import MessageKind

    assert MessageKind.POLL not in app.network.message_counts


def test_workload_completes_and_balances():
    app = make_app(n_nodes=4, poll_size=2)
    rng = np.random.default_rng(0)
    gaps = rng.exponential(0.005 / (4 * 0.7), 2000)
    tally = app.run_workload("svc", gaps)
    assert len(tally) == 2000
    completed = [node.completed for node in app.nodes]
    assert sum(completed) == 2000
    assert min(completed) > 2000 / 4 * 0.6  # reasonably even


def test_handler_exception_surfaces():
    def broken(ctx, request):
        yield compute(0.001)
        raise RuntimeError("handler bug")

    app = make_app(handler=broken)
    app.async_call(app.client_ids[0], "svc", 0, None)
    with pytest.raises(SimulationError):
        app.sim.run()


def test_bad_directive_rejected():
    def bad(ctx, request):
        yield "garbage"

    app = make_app(handler=bad)
    app.async_call(app.client_ids[0], "svc", 0, None)
    with pytest.raises(SimulationError):
        app.sim.run()


def test_worker_pool_queues_excess():
    app = make_app(n_nodes=1, workers=1, replication=1,
                   handler=simple_handler(0.01))
    for _ in range(3):
        app.async_call(app.client_ids[0], "svc", 0, None)
    app.sim.run()
    tally = app.response_times["svc"].values()
    # FIFO on one worker: ~0.01, ~0.02, ~0.03 (+network).
    assert tally[1] - tally[0] == pytest.approx(0.01, abs=1e-4)
    assert tally[2] - tally[1] == pytest.approx(0.01, abs=1e-4)


def test_multiple_workers_run_in_parallel():
    app = make_app(n_nodes=1, workers=3, replication=1,
                   handler=simple_handler(0.01))
    for _ in range(3):
        app.async_call(app.client_ids[0], "svc", 0, None)
    app.sim.run()
    tally = app.response_times["svc"].values()
    assert np.allclose(tally, tally[0])


def test_nested_aggregation_two_tiers():
    """A front service calling a partitioned backend (Figure 1 shape)."""
    app = ApplicationCluster(n_nodes=6, seed=9, workers=2, poll_size=2)

    def backend(ctx, request):
        yield compute(0.004)
        return request.payload * 2

    def front(ctx, request):
        yield compute(0.002)
        doubled = yield call("backend", partition=request.payload % 2,
                             payload=request.payload)
        yield compute(0.001)
        return doubled + 1

    app.place_service(ServiceSpec("backend", n_partitions=2, replication=2),
                      node_ids=[0, 1, 2, 3], handler=backend)
    app.place_service(ServiceSpec("front", n_partitions=1, replication=2),
                      node_ids=[4, 5], handler=front)
    results = []
    for value in (10, 11):
        signal = app.async_call(app.client_ids[0], "front", 0, value)
        signal.add_callback(lambda s: results.append(s.value))
    app.sim.run()
    assert sorted(results) == [21, 23]
    # Both tiers recorded response times; front includes the nested call.
    assert app.response_times["front"].mean() > app.response_times["backend"].mean()
    # Nested time >= front compute + backend response.
    assert app.response_times["front"].values().min() >= (
        0.003 + app.response_times["backend"].values().min()
    )


def test_nested_call_holds_worker():
    """Thread-pool semantics: a worker blocked on a nested call is not
    available, so a second front request queues behind it."""
    app = ApplicationCluster(n_nodes=2, seed=1, workers=1, poll_size=0)

    def backend(ctx, request):
        yield compute(0.02)
        return None

    def front(ctx, request):
        yield call("backend")
        return None

    app.place_service(ServiceSpec("backend"), node_ids=[0], handler=backend)
    app.place_service(ServiceSpec("front"), node_ids=[1], handler=front)
    for _ in range(2):
        app.async_call(app.client_ids[0], "front", 0, None)
    app.sim.run()
    tally = app.response_times["front"].values()
    # Serialized: second front access waits ~0.02s behind the first.
    assert tally[1] - tally[0] > 0.015


def test_workload_deterministic():
    def run():
        app = make_app(seed=77)
        gaps = np.full(500, 0.002)
        return app.run_workload("svc", gaps).values().copy()

    assert np.array_equal(run(), run())
