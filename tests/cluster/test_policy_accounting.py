"""Policy in-flight accounting under retries, failures, and hedging.

Regression tests for the dedup-guard audit (ISSUE 10 satellite): a
request that is retried, hedged, NACKed, or terminally failed must
release its policy-local charge exactly once. The least-connections
ledger rewrite (see ``repro/core/least_connections.py``) was driven by
fuzzer-found double-decrements — these tests pin the fixed behaviour at
the cluster level, with the invariant oracle watching live.
"""

import numpy as np
import pytest

from repro.cluster import ChaosInjector, FailureInjector, ServiceCluster
from repro.core import make_policy
from repro.core.least_connections import _COUNTS_KEY
from repro.verify import InvariantOracle


def build_cluster(policy, n_requests=1500, seed=11, load=0.9, **kwargs):
    defaults = dict(
        n_servers=4,
        n_clients=2,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=0.15,
        request_timeout=0.1,
        max_retries=4,
    )
    defaults.update(kwargs)
    cluster = ServiceCluster(policy=policy, seed=seed, **defaults)
    rng = np.random.default_rng(seed)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def _assert_ledger_drained(cluster):
    policy = cluster.policy
    assert policy.verify_scan() is None
    assert policy._charges == {}
    for client in cluster.clients:
        counts = client.state[_COUNTS_KEY]
        assert int(counts.sum()) == 0, counts
        assert int(counts.min()) >= 0, counts


def test_least_connections_ledger_drains_after_clean_run():
    cluster = build_cluster(make_policy("least_connections"))
    cluster.run()
    _assert_ledger_drained(cluster)


def test_least_connections_counts_survive_crash_and_retries():
    """The original bug: a timeout retry re-dispatches elsewhere, then
    the stale attempt's completion decremented a second cell. A crash
    mid-run forces exactly that interleaving at volume."""
    cluster = build_cluster(make_policy("least_connections"))
    oracle = InvariantOracle(cluster, check_interval=4)
    cluster.oracle = oracle
    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=0.2)
    metrics = cluster.run()
    assert (metrics.retries > 0).any()  # the race was actually exercised
    assert oracle.scans_run > 0
    _assert_ledger_drained(cluster)


def test_least_connections_counts_with_terminal_failures():
    """Terminal failures (retry budget exhausted) must release the
    charge too — a failed request is no longer outstanding anywhere."""
    cluster = build_cluster(
        make_policy("least_connections"),
        n_requests=800,
        max_retries=1,
        request_timeout=0.03,
    )
    oracle = InvariantOracle(cluster, check_interval=4)
    cluster.oracle = oracle
    injector = FailureInjector(cluster)
    injector.schedule_crash(0, at=0.1)
    injector.schedule_crash(2, at=0.12)
    metrics = cluster.run()
    assert metrics.failed.sum() > 0  # terminal-failure path exercised
    _assert_ledger_drained(cluster)


def test_least_connections_with_hedging_and_nacks():
    """Hedge clones and queue-full NACKs share the dedup guards: with
    tiny server queues + hedging + loss, no interleaving may double
    release a charge (oracle scans every 2 events would catch it)."""
    from repro.cluster import ChaosSpec
    from repro.cluster.overload import OverloadPolicy
    from repro.cluster.reliability import ReliabilityPolicy

    cluster = build_cluster(
        make_policy("least_connections"),
        n_requests=1200,
        load=1.5,
        server_max_queue=2,
        reliability=ReliabilityPolicy(
            hedge_quantile=0.9, hedge_min_samples=20, breaker_threshold=3
        ),
        overload=OverloadPolicy(sojourn_target=0.02, interval=0.05),
    )
    oracle = InvariantOracle(cluster, check_interval=2)
    cluster.oracle = oracle
    ChaosInjector(cluster, spec=ChaosSpec(loss=0.05))
    cluster.run()
    assert cluster.rejects_sent > 0  # NACK path exercised
    _assert_ledger_drained(cluster)


def test_retry_moves_charge_instead_of_stacking():
    """Unit-level: two dispatches for one request hold one charge."""
    cluster = build_cluster(make_policy("least_connections"), n_requests=10)
    policy = cluster.policy
    client = cluster.clients[0]
    from repro.cluster.request import Request

    request = Request(index=0, client_id=0, service_time=0.01, arrival_time=0.0)
    policy.notify_dispatch(client, request, 1)
    policy.notify_dispatch(client, request, 3)  # timeout retry elsewhere
    counts = client.state[_COUNTS_KEY]
    assert int(counts.sum()) == 1 and int(counts[3]) == 1 and int(counts[1]) == 0
    policy.notify_complete(client, request)
    policy.notify_complete(client, request)  # duplicate release is a no-op
    assert int(counts.sum()) == 0 and int(counts.min()) == 0


def test_manager_ignores_never_started_requests():
    """Manager regression: notify_complete for a request that never
    reached a server (server_id == -1) must not decrement ``_counts[-1]``
    (the last server's cell, via Python negative indexing)."""
    cluster = build_cluster(make_policy("manager"), n_requests=10)
    policy = cluster.policy
    client = cluster.clients[0]
    from repro.cluster.request import Request

    request = Request(index=0, client_id=0, service_time=0.01, arrival_time=0.0)
    assert request.server_id == -1
    before = policy._counts.copy()
    policy.notify_complete(client, request)
    assert (policy._counts == before).all()
