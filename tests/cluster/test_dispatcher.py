"""Tests for the dispatcher-tier subsystem (DESIGN.md §16).

Covers the policy value object, the literal config-key mirror, the
zero-overhead guarantee (a cluster built without a policy — or with the
all-default disabled policy — is bit-identical to direct client→server
selection), end-to-end tier routing, failover vs static assignment
under dispatcher crashes, tier-level admission, stale mapping views,
per-dispatcher circuit breakers, and the dispatcher fault axis of the
chaos injector.
"""

import numpy as np
import pytest

from repro.cluster import (
    ChaosInjector,
    ChaosSpec,
    DispatcherPolicy,
    FailureInjector,
    ServiceCluster,
)
from repro.core import RandomPolicy
from repro.experiments.config import _DISPATCHER_PARAM_KEYS


def build(dispatcher=None, n_servers=4, n_requests=200, load=0.5, seed=3,
          mean_service=0.01, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=RandomPolicy(), seed=seed,
        dispatcher=dispatcher, **kwargs
    )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def tier_policy(**overrides):
    values = dict(count=2)
    values.update(overrides)
    return DispatcherPolicy(**values)


# ----------------------------------------------------------------------
# DispatcherPolicy value object
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"count": 0},
        {"count": -1},
        {"count": 2, "assignment": "roundrobin"},
        {"count": 2, "suspect_cooldown": 0.0},
        {"count": 2, "view_lag": -0.1},
        {"count": 2, "admit_sojourn_target": 0.0},
        {"count": 2, "admit_interval": 0.0},
        {"count": 2, "admit_ewma_alpha": 0.0},
        {"count": 2, "admit_ewma_alpha": 1.5},
        {"count": 2, "breaker_threshold": 0},
        {"count": 2, "breaker_cooldown": 0.0},
    ],
)
def test_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        DispatcherPolicy(**kwargs)


def test_default_policy_is_disabled():
    assert not DispatcherPolicy().enabled
    assert tier_policy().enabled


def test_dispatcher_param_keys_mirror_dispatcher_policy():
    """config.py validates dispatcher_params against a literal mirror
    of the policy dataclass; the two must never drift apart."""
    assert _DISPATCHER_PARAM_KEYS == DispatcherPolicy.field_names()


# ----------------------------------------------------------------------
# zero-overhead guarantee
# ----------------------------------------------------------------------

def test_disabled_policy_is_bit_identical_to_no_policy():
    """count=None must take exactly the legacy direct-selection paths."""
    baseline = build(seed=17, n_requests=400, request_timeout=0.5, max_retries=3)
    disabled = build(
        seed=17, n_requests=400, request_timeout=0.5, max_retries=3,
        dispatcher=DispatcherPolicy(),
    )
    a = baseline.run()
    b = disabled.run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)
    assert baseline.sim.events_executed == disabled.sim.events_executed


# ----------------------------------------------------------------------
# tier routing
# ----------------------------------------------------------------------

def test_tier_completes_all_requests_and_counts_forwards():
    cluster = build(dispatcher=tier_policy(), request_timeout=0.5, max_retries=3)
    metrics = cluster.run()
    assert int(metrics.failed.sum()) == 0
    counters = cluster.dispatchers.counters()
    # every request crossed the tier at least once
    assert counters["dispatcher_forwards"] >= 200
    assert counters["dispatcher_sheds"] == 0
    rows = cluster.dispatchers.per_dispatcher()
    assert len(rows) == 2
    assert sum(row["forwards"] for row in rows) == counters["dispatcher_forwards"]
    # tier drained: nothing left in flight at the end of the run
    assert cluster.dispatchers.inflight_total() == 0


def test_tier_selection_uses_per_dispatcher_agents():
    """The tier exposes its own selector agents, not the client set."""
    cluster = build(dispatcher=tier_policy(), request_timeout=0.5)
    agents = cluster.selector_agents
    assert len(agents) == 2
    assert all(a.node_id >= cluster.n_servers for a in agents)


def test_static_assignment_pins_clients_to_one_dispatcher():
    cluster = build(
        dispatcher=tier_policy(count=2, assignment="static"),
        n_requests=300, request_timeout=0.5, max_retries=3,
    )
    cluster.run()
    # with several clients hashed across 2 dispatchers, both see work
    rows = cluster.dispatchers.per_dispatcher()
    assert all(row["forwards"] > 0 for row in rows)


# ----------------------------------------------------------------------
# dispatcher crashes: failover vs static assignment
# ----------------------------------------------------------------------

def crash_leg(assignment, seed=11):
    cluster = build(
        # timeout ≫ service time: only the dead dispatcher times out,
        # so healthy dispatchers never accumulate suspicion (a suspect
        # set covering the whole tier fails open to the dead primary)
        dispatcher=tier_policy(count=3, assignment=assignment),
        n_servers=4, n_requests=400, load=0.3, seed=seed,
        request_timeout=0.2, max_retries=6,
    )
    injector = FailureInjector(cluster)
    injector.schedule_dispatcher_crash(0, at=0.01)
    metrics = cluster.run()
    return cluster, metrics


def test_failover_reroutes_around_crashed_dispatcher():
    cluster, metrics = crash_leg("failover")
    assert int(metrics.failed.sum()) == 0
    assert cluster.dispatchers.failovers > 0


def test_static_assignment_fails_requests_pinned_to_dead_dispatcher():
    cluster, metrics = crash_leg("static")
    # a third of the clients are pinned to the dead dispatcher and
    # burn every retry against it
    assert int(metrics.failed.sum()) > 0
    assert cluster.dispatchers.failovers == 0


def test_failover_goodput_beats_static_under_crash():
    _, static = crash_leg("static")
    _, failover = crash_leg("failover")
    assert int(failover.failed.sum()) < int(static.failed.sum())


def test_dispatcher_recovery_restores_routing():
    cluster = build(
        dispatcher=tier_policy(count=2), n_requests=300,
        request_timeout=0.05, max_retries=8,
    )
    injector = FailureInjector(cluster)
    injector.schedule_dispatcher_crash(1, at=0.01)
    injector.schedule_dispatcher_recovery(1, at=0.3)
    cluster.run()
    assert cluster.dispatchers.dispatchers[1].alive
    # the recovered dispatcher served traffic after rejoining
    assert cluster.dispatchers.dispatchers[1].forwards > 0


# ----------------------------------------------------------------------
# tier admission, stale views, breakers
# ----------------------------------------------------------------------

def test_tier_admission_sheds_when_inflight_sojourn_blows_up():
    cluster = build(
        dispatcher=tier_policy(admit_sojourn_target=1e-4, admit_interval=1e-3),
        load=3.0, n_requests=400, request_timeout=0.05, max_retries=8,
        mean_service=0.02,
    )
    cluster.run()
    counters = cluster.dispatchers.counters()
    assert counters["dispatcher_sheds"] > 0
    assert counters["dispatcher_rejects_sent"] >= counters["dispatcher_sheds"]


def test_view_lag_delays_dispatcher_availability_views():
    """With a large view lag the tier keeps selecting a crashed server
    long after fresh views would have dropped it."""
    def leg(view_lag, seed=7):
        cluster = build(
            dispatcher=tier_policy(view_lag=view_lag),
            n_servers=4, n_requests=300, seed=seed,
            availability=True, availability_refresh=0.02, availability_ttl=0.06,
            request_timeout=0.05, max_retries=8,
        )
        FailureInjector(cluster).schedule_crash(1, at=0.05)
        cluster.run()
        return cluster.dispatchers.timeouts_charged

    assert leg(view_lag=0.5) > leg(view_lag=0.0)


def test_breakers_open_against_failing_server():
    cluster = build(
        dispatcher=tier_policy(breaker_threshold=1, breaker_cooldown=5.0),
        n_servers=4, n_requests=300,
        request_timeout=0.05, max_retries=8,
    )
    FailureInjector(cluster).schedule_crash(2, at=0.02)
    metrics = cluster.run()
    counters = cluster.dispatchers.counters()
    assert counters["dispatcher_breaker_opens"] > 0
    # breakers steer retries away from the dead server: no failures
    assert int(metrics.failed.sum()) == 0


# ----------------------------------------------------------------------
# chaos integration
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"dispatcher_storms": -1},
        {"dispatcher_storm_size": -1},
        {"dispatcher_storm_frac": 1.5},
        {"dispatcher_partitions": -2},
        {"dispatcher_partition_frac": -0.1},
    ],
)
def test_chaos_spec_rejects_bad_dispatcher_fields(kwargs):
    with pytest.raises(ValueError):
        ChaosSpec(**kwargs)


def test_dispatcher_chaos_requires_tier():
    cluster = build()
    with pytest.raises(ValueError):
        ChaosInjector(cluster, spec=ChaosSpec(dispatcher_storms=1))


def test_dispatcher_storm_crashes_and_recovers_dispatchers():
    cluster = build(
        dispatcher=tier_policy(count=3, assignment="failover"),
        n_requests=400, request_timeout=0.05, max_retries=8,
    )
    cluster.chaos = ChaosInjector(
        cluster,
        spec=ChaosSpec(
            dispatcher_storms=2, dispatcher_storm_size=1,
            dispatcher_storm_frac=0.2,
        ),
    )
    metrics = cluster.run()
    kinds = [kind for _, kind, _ in cluster.chaos.chaos_log]
    assert kinds.count("dispatcher_crash") == 2
    assert kinds.count("dispatcher_recover") == 2
    # failover keeps the run healthy through both storms
    assert int(metrics.failed.sum()) == 0
    # every dispatcher is back up at the end
    assert all(d.alive for d in cluster.dispatchers.dispatchers)


def test_dispatcher_storm_always_leaves_a_survivor():
    cluster = build(
        dispatcher=tier_policy(count=2, assignment="failover"),
        n_requests=200, request_timeout=0.05, max_retries=8,
    )
    cluster.chaos = ChaosInjector(
        cluster,
        # ask for a storm bigger than the tier: it must clamp to K-1
        spec=ChaosSpec(dispatcher_storms=1, dispatcher_storm_size=5),
    )
    cluster.run()
    crashes = [d for _, kind, d in cluster.chaos.chaos_log
               if kind == "dispatcher_crash"]
    assert len(crashes) == 1
