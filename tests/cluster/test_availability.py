"""Unit tests for the publish/subscribe availability subsystem."""

import numpy as np
import pytest

from repro.cluster import AvailabilityChannel, ServiceMappingTable, ServicePublisher
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_channel(latency=1e-4):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(latency))
    return sim, AvailabilityChannel(net)


def make_publisher(sim, channel, node_id=0, mean_interval=1.0):
    return ServicePublisher(
        sim,
        channel,
        node_id,
        entries=[("svc", 0)],
        mean_interval=mean_interval,
        rng=np.random.default_rng(node_id + 1),
    )


def test_publisher_validation():
    sim, channel = make_channel()
    with pytest.raises(ValueError):
        ServicePublisher(sim, channel, 0, [("s", 0)], 0.0, np.random.default_rng(0))


def test_table_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ServiceMappingTable(sim, ttl=0.0)


def test_publish_reaches_table():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=3.0)
    table.subscribe(channel, client_id=100)
    publisher = make_publisher(sim, channel)
    publisher.start()
    sim.run(until=0.01)
    assert table.available("svc", 0) == [0]
    assert table.updates_received >= 1


def test_refresh_interval_randomized_within_bounds():
    sim, channel = make_channel()
    deliveries = []
    channel.subscribe(100, lambda m: deliveries.append(sim.now))
    publisher = make_publisher(sim, channel, mean_interval=1.0)
    publisher.start()
    sim.run(until=20.0)
    gaps = np.diff(deliveries)
    assert (gaps >= 0.5 - 1e-9).all() and (gaps <= 1.5 + 1e-9).all()
    assert gaps.mean() == pytest.approx(1.0, rel=0.2)


def test_soft_state_expires_after_crash():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=2.0)
    table.subscribe(channel, 100)
    publisher = make_publisher(sim, channel, mean_interval=0.5)
    publisher.start()
    sim.run(until=5.0)
    assert table.available("svc", 0) == [0]
    publisher.stop()
    sim.run(until=5.0 + 2.5)  # past the TTL with no refreshes
    assert table.available("svc", 0) == []


def test_recovery_after_restart():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=1.0)
    table.subscribe(channel, 100)
    publisher = make_publisher(sim, channel, mean_interval=0.3)
    publisher.start()
    sim.run(until=1.0)
    publisher.stop()
    sim.run(until=3.0)
    assert table.available("svc", 0) == []
    publisher.start()
    sim.run(until=3.1)
    assert table.available("svc", 0) == [0]


def test_multiple_publishers_merge():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=5.0)
    table.subscribe(channel, 100)
    for node in (3, 1, 2):
        make_publisher(sim, channel, node_id=node, mean_interval=0.5).start()
    sim.run(until=1.0)
    assert table.available("svc", 0) == [1, 2, 3]


def test_forget_evicts_node():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=10.0)
    table.subscribe(channel, 100)
    make_publisher(sim, channel, node_id=7).start()
    sim.run(until=0.5)
    table.forget(7)
    assert table.available("svc", 0) == []


def test_unknown_service_empty():
    sim = Simulator()
    table = ServiceMappingTable(sim, ttl=1.0)
    assert table.available("nope", 0) == []


def test_start_is_idempotent():
    sim, channel = make_channel()
    deliveries = []
    channel.subscribe(100, lambda m: deliveries.append(sim.now))
    publisher = make_publisher(sim, channel, mean_interval=10.0)
    publisher.start()
    publisher.start()
    sim.run(until=1.0)
    assert len(deliveries) == 1  # not doubled


def test_known_services():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=1.0)
    table.subscribe(channel, 100)
    make_publisher(sim, channel, node_id=0).start()
    sim.run(until=0.1)
    assert table.known_services() == ["svc"]


# ----------------------------------------------------------------------
# soft-state boundary behavior
# ----------------------------------------------------------------------

def _prime(table, node_id=0, at=0.0):
    """Inject a PUBLISH directly (no network latency) at time ``at``."""
    from repro.net import Message, MessageKind

    table._on_publish(
        Message(MessageKind.PUBLISH, node_id, 100, (node_id, (("svc", 0),), at), 0, at)
    )


def test_entry_alive_exactly_at_ttl_boundary():
    """Expiry is inclusive: an entry last refreshed exactly ``ttl`` ago
    is still available; one instant later it is gone."""
    sim = Simulator()
    table = ServiceMappingTable(sim, ttl=1.0)
    _prime(table, at=0.0)
    seen = {}
    sim.at(1.0, lambda: seen.__setitem__("at_ttl", table.available("svc", 0)))
    sim.at(1.0 + 1e-9, lambda: seen.__setitem__("past_ttl", table.available("svc", 0)))
    sim.run()
    assert seen["at_ttl"] == [0]
    assert seen["past_ttl"] == []


def test_refresh_exactly_at_ttl_extends_lifetime():
    """A refresh landing exactly at the expiry instant keeps the entry
    alive for another full ttl."""
    sim = Simulator()
    table = ServiceMappingTable(sim, ttl=1.0)
    _prime(table, at=0.0)
    seen = {}
    sim.at(1.0, lambda: _prime(table, at=1.0))
    sim.at(1.5, lambda: seen.__setitem__("mid", table.available("svc", 0)))
    sim.at(2.0, lambda: seen.__setitem__("second_ttl", table.available("svc", 0)))
    sim.at(2.0 + 1e-9, lambda: seen.__setitem__("expired", table.available("svc", 0)))
    sim.run()
    assert seen["mid"] == [0]
    assert seen["second_ttl"] == [0]
    assert seen["expired"] == []


def test_silenced_publisher_vanishes_from_all_clients_within_ttl():
    """A publisher whose PUBLISH messages are all lost disappears from
    every client's candidate set within one ttl (the soft-state claim
    under message-level faults, not just clean crashes)."""
    from repro.cluster import ServiceCluster
    from repro.core import make_policy
    from repro.net.message import MessageKind

    ttl = 0.3
    cluster = ServiceCluster(
        n_servers=4,
        n_clients=3,
        policy=make_policy("random"),
        seed=11,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=ttl,
    )
    # Silence server 0's announcements only; everything else flows.
    cluster.network.drop_filter = (
        lambda m: m.kind is MessageKind.PUBLISH and m.src == 0
    )
    rng = np.random.default_rng(11)
    n = 2000
    gaps = rng.exponential(0.005 / (4 * 0.5), n)
    services = rng.exponential(0.005, n)
    cluster.load_workload(gaps, services)
    observed = {}

    def snapshot(label):
        observed[label] = {
            client.node_id: cluster.mapping_tables[client.node_id].available("service", 0)
            for client in cluster.clients
        }
    cluster.sim.at(ttl * 0.9, lambda: snapshot("before"))
    cluster.sim.at(ttl * 1.05, lambda: snapshot("after"))
    cluster.run()
    # The construction-time priming keeps server 0 visible almost to the
    # first ttl; one ttl after the last (primed) refresh it is gone from
    # every client, with no crash and no explicit signal.
    for client_id, candidates in observed["before"].items():
        assert 0 in candidates, f"client {client_id} lost server 0 before ttl"
    for client_id, candidates in observed["after"].items():
        assert 0 not in candidates, f"client {client_id} still lists server 0"
        assert set(candidates) == {1, 2, 3}
