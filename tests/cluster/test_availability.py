"""Unit tests for the publish/subscribe availability subsystem."""

import numpy as np
import pytest

from repro.cluster import AvailabilityChannel, ServiceMappingTable, ServicePublisher
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_channel(latency=1e-4):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(0), ConstantLatency(latency))
    return sim, AvailabilityChannel(net)


def make_publisher(sim, channel, node_id=0, mean_interval=1.0):
    return ServicePublisher(
        sim,
        channel,
        node_id,
        entries=[("svc", 0)],
        mean_interval=mean_interval,
        rng=np.random.default_rng(node_id + 1),
    )


def test_publisher_validation():
    sim, channel = make_channel()
    with pytest.raises(ValueError):
        ServicePublisher(sim, channel, 0, [("s", 0)], 0.0, np.random.default_rng(0))


def test_table_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ServiceMappingTable(sim, ttl=0.0)


def test_publish_reaches_table():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=3.0)
    table.subscribe(channel, client_id=100)
    publisher = make_publisher(sim, channel)
    publisher.start()
    sim.run(until=0.01)
    assert table.available("svc", 0) == [0]
    assert table.updates_received >= 1


def test_refresh_interval_randomized_within_bounds():
    sim, channel = make_channel()
    deliveries = []
    channel.subscribe(100, lambda m: deliveries.append(sim.now))
    publisher = make_publisher(sim, channel, mean_interval=1.0)
    publisher.start()
    sim.run(until=20.0)
    gaps = np.diff(deliveries)
    assert (gaps >= 0.5 - 1e-9).all() and (gaps <= 1.5 + 1e-9).all()
    assert gaps.mean() == pytest.approx(1.0, rel=0.2)


def test_soft_state_expires_after_crash():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=2.0)
    table.subscribe(channel, 100)
    publisher = make_publisher(sim, channel, mean_interval=0.5)
    publisher.start()
    sim.run(until=5.0)
    assert table.available("svc", 0) == [0]
    publisher.stop()
    sim.run(until=5.0 + 2.5)  # past the TTL with no refreshes
    assert table.available("svc", 0) == []


def test_recovery_after_restart():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=1.0)
    table.subscribe(channel, 100)
    publisher = make_publisher(sim, channel, mean_interval=0.3)
    publisher.start()
    sim.run(until=1.0)
    publisher.stop()
    sim.run(until=3.0)
    assert table.available("svc", 0) == []
    publisher.start()
    sim.run(until=3.1)
    assert table.available("svc", 0) == [0]


def test_multiple_publishers_merge():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=5.0)
    table.subscribe(channel, 100)
    for node in (3, 1, 2):
        make_publisher(sim, channel, node_id=node, mean_interval=0.5).start()
    sim.run(until=1.0)
    assert table.available("svc", 0) == [1, 2, 3]


def test_forget_evicts_node():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=10.0)
    table.subscribe(channel, 100)
    make_publisher(sim, channel, node_id=7).start()
    sim.run(until=0.5)
    table.forget(7)
    assert table.available("svc", 0) == []


def test_unknown_service_empty():
    sim = Simulator()
    table = ServiceMappingTable(sim, ttl=1.0)
    assert table.available("nope", 0) == []


def test_start_is_idempotent():
    sim, channel = make_channel()
    deliveries = []
    channel.subscribe(100, lambda m: deliveries.append(sim.now))
    publisher = make_publisher(sim, channel, mean_interval=10.0)
    publisher.start()
    publisher.start()
    sim.run(until=1.0)
    assert len(deliveries) == 1  # not doubled


def test_known_services():
    sim, channel = make_channel()
    table = ServiceMappingTable(sim, ttl=1.0)
    table.subscribe(channel, 100)
    make_publisher(sim, channel, node_id=0).start()
    sim.run(until=0.1)
    assert table.known_services() == ["svc"]
