"""Tests for server admission control (bounded queues)."""

import numpy as np
import pytest

from repro.cluster import Request, ServerNode, ServiceCluster
from repro.core import make_policy
from repro.sim import Simulator


def req(i, service=1.0):
    return Request(i, 99, service, 0.0)


def test_max_queue_validation():
    with pytest.raises(ValueError):
        ServerNode(Simulator(), 0, max_queue=0)


def test_rejects_beyond_bound():
    sim = Simulator()
    server = ServerNode(sim, 0, max_queue=2)
    server.on_complete = lambda s, r: None
    assert server.enqueue(req(0)) is True   # in service
    assert server.enqueue(req(1)) is True   # queued (length 2)
    assert server.enqueue(req(2)) is False  # rejected
    assert server.rejected_count == 1
    assert server.queue_length == 2


def test_admits_again_after_drain():
    sim = Simulator()
    server = ServerNode(sim, 0, max_queue=1)
    server.on_complete = lambda s, r: None
    assert server.enqueue(req(0, 1.0))
    assert not server.enqueue(req(1, 1.0))
    sim.run()
    assert server.enqueue(req(2, 1.0))


def test_unbounded_by_default():
    sim = Simulator()
    server = ServerNode(sim, 0)
    server.on_complete = lambda s, r: None
    for i in range(100):
        assert server.enqueue(req(i))
    assert server.rejected_count == 0


def make_overloaded_cluster(max_queue, n_requests=2000, seed=61, max_retries=3):
    cluster = ServiceCluster(
        n_servers=4,
        policy=make_policy("random"),
        seed=seed,
        n_clients=2,
        server_max_queue=max_queue,
        max_retries=max_retries,
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (4 * 1.3), n_requests)  # overload
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def test_overload_with_admission_sheds_load():
    cluster = make_overloaded_cluster(max_queue=10)
    metrics = cluster.run()
    rejected = sum(s.rejected_count for s in cluster.servers)
    assert rejected > 0
    assert metrics.failed.sum() > 0  # some requests shed after retries
    # Accepted requests see bounded queues -> bounded response times.
    accepted = metrics.response_time[np.isfinite(metrics.response_time)]
    assert np.percentile(accepted, 99) < 11 * 0.01 * 4  # ~max_queue * service


def test_overload_without_admission_unbounded_latency():
    bounded = make_overloaded_cluster(max_queue=10, seed=62)
    unbounded = make_overloaded_cluster(max_queue=None, seed=62)
    bounded_metrics = bounded.run()
    unbounded_metrics = unbounded.run()
    accepted = bounded_metrics.response_time[
        np.isfinite(bounded_metrics.response_time)
    ]
    assert np.nanmean(accepted) < 0.3 * np.nanmean(unbounded_metrics.response_time)
    assert unbounded_metrics.failed.sum() == 0  # everything eventually completes


def test_retry_after_rejection_lands_elsewhere():
    """Rejected requests that retry and succeed have retries > 0."""
    cluster = make_overloaded_cluster(max_queue=5, max_retries=8)
    metrics = cluster.run()
    succeeded_after_retry = (metrics.retries > 0) & np.isfinite(metrics.response_time)
    assert succeeded_after_retry.any()
