"""Tests for the request reliability layer (DESIGN.md §11).

Covers the policy value object, the circuit-breaker state machine, the
deadline/backoff/retry-budget math, candidate filtering, the hedging
lifecycle end-to-end, and the zero-overhead guarantee: a cluster built
without a policy (or with the all-default policy) is bit-identical to
the pre-reliability code paths.
"""

import math

import numpy as np
import pytest

from repro.cluster import (
    ChaosInjector,
    ChaosSpec,
    CircuitBreaker,
    FailureInjector,
    ReliabilityPolicy,
    Request,
    ServiceCluster,
    resilience_counters,
)
from repro.core import RandomPolicy, make_policy
from repro.experiments.chaos import hardened_reliability_params


def build(policy=None, n_servers=4, n_requests=200, load=0.5, seed=3, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy or RandomPolicy(), seed=seed, **kwargs
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.01
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


# ----------------------------------------------------------------------
# ReliabilityPolicy value object
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline": 0.0},
        {"deadline": -1.0},
        {"backoff_base": -0.001},
        {"backoff_mult": 0.5},
        {"backoff_cap": 0.0},
        {"backoff_jitter": -0.1},
        {"backoff_jitter": 1.5},
        {"retry_budget": 0},
        {"retry_budget_refill": 0.0},
        {"hedge_quantile": 0.0},
        {"hedge_quantile": 1.0},
        {"hedge_min_samples": 0},
        {"hedge_min_samples": 64, "hedge_window": 32},
        {"breaker_threshold": 0},
        {"breaker_cooldown": 0.0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        ReliabilityPolicy(**kwargs)


def test_default_policy_disables_everything():
    assert not ReliabilityPolicy().enabled


@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline": 1.0},
        {"backoff_base": 0.001},
        {"retry_budget": 10},
        {"hedge_quantile": 0.9},
        {"breaker_threshold": 3},
    ],
)
def test_each_mechanism_enables_the_policy(kwargs):
    assert ReliabilityPolicy(**kwargs).enabled


def test_disabled_policy_installs_no_engine():
    cluster = build(reliability=ReliabilityPolicy())
    assert cluster.reliability is None
    cluster = build(reliability=None)
    assert cluster.reliability is None


def test_enabled_policy_installs_engine():
    cluster = build(reliability=ReliabilityPolicy(breaker_threshold=3))
    assert cluster.reliability is not None
    assert set(cluster.reliability.breakers) == set(range(cluster.n_servers))


def test_disabled_policy_is_bit_identical_to_no_policy():
    """The all-default policy must take exactly the legacy code paths."""
    baseline = build(seed=17, n_requests=400, request_timeout=0.5, max_retries=3)
    disabled = build(
        seed=17, n_requests=400, request_timeout=0.5, max_retries=3,
        reliability=ReliabilityPolicy(),
    )
    a = baseline.run()
    b = disabled.run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)
    assert baseline.sim.events_executed == disabled.sim.events_executed


# ----------------------------------------------------------------------
# circuit breaker state machine
# ----------------------------------------------------------------------

def test_breaker_stays_closed_below_threshold():
    breaker = CircuitBreaker(threshold=3, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state(0.2) == "closed"
    assert breaker.allows(0.2)
    assert breaker.opens == 0


def test_breaker_opens_at_threshold_then_half_opens():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.5)
    assert breaker.state(0.6) == "open"
    assert not breaker.allows(0.6)
    assert breaker.opens == 1
    # Cooldown elapses: half-open, probing allowed again.
    assert breaker.state(1.6) == "half_open"
    assert breaker.allows(1.6)


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(threshold=1, cooldown=1.0)
    breaker.record_failure(0.0)
    assert breaker.state(1.5) == "half_open"
    breaker.record_failure(1.5)
    assert breaker.state(2.0) == "open"
    assert breaker.opens == 2


def test_breaker_success_resets_to_closed():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    breaker.record_success(1.2)
    assert breaker.state(1.3) == "closed"
    assert breaker.failures == 0
    # The consecutive-failure count restarts from scratch.
    breaker.record_failure(1.4)
    assert breaker.state(1.5) == "closed"


def test_breaker_failures_while_open_do_not_extend_cooldown():
    breaker = CircuitBreaker(threshold=1, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.5)  # still open; must not push _open_until out
    assert breaker.state(1.1) == "half_open"
    assert breaker.opens == 1


def test_filter_candidates_ejects_open_breakers():
    cluster = build(reliability=ReliabilityPolicy(breaker_threshold=1))
    engine = cluster.reliability
    engine.breakers[2].record_failure(0.0)
    assert list(engine.filter_candidates([0, 1, 2, 3])) == [0, 1, 3]
    assert engine.breaker_state(2) == "open"
    assert engine.breaker_state(0) == "closed"


def test_filter_candidates_fails_open_when_all_open():
    cluster = build(reliability=ReliabilityPolicy(breaker_threshold=1))
    engine = cluster.reliability
    for breaker in engine.breakers.values():
        breaker.record_failure(0.0)
    # Every breaker open: the unfiltered set comes back (a degraded
    # server beats an empty candidate set).
    assert list(engine.filter_candidates([0, 1, 2, 3])) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# deadline budgets, backoff, retry budget
# ----------------------------------------------------------------------

def _request(cluster, index=0, arrival_time=0.0, retries=0):
    request = Request(
        index=index,
        client_id=cluster.clients[0].node_id,
        service_time=0.01,
        arrival_time=arrival_time,
    )
    request.retries = retries
    return request


def test_attempt_timeout_splits_deadline_across_attempts():
    cluster = build(
        request_timeout=0.3, max_retries=4,
        reliability=ReliabilityPolicy(deadline=1.0),
    )
    engine = cluster.reliability
    # First attempt at t=0: 1.0s budget over 5 attempts, capped by the
    # flat per-attempt timeout.
    assert engine.attempt_timeout(_request(cluster)) == pytest.approx(0.2)
    # Later attempt: fewer attempts left -> a larger share, but never
    # more than the flat request_timeout.
    assert engine.attempt_timeout(_request(cluster, retries=3)) == pytest.approx(0.3)


def test_attempt_timeout_without_flat_timeout():
    cluster = build(
        request_timeout=None, max_retries=4,
        reliability=ReliabilityPolicy(deadline=1.0),
    )
    assert cluster.reliability.attempt_timeout(
        _request(cluster, retries=3)
    ) == pytest.approx(0.5)


def test_attempt_timeout_floor_when_budget_exhausted():
    cluster = build(reliability=ReliabilityPolicy(deadline=0.5))
    # A request whose budget already ran out still gets a well-formed
    # (tiny) timer; the retry path then fails it fast.
    request = _request(cluster, arrival_time=-10.0)
    assert cluster.reliability.attempt_timeout(request) > 0.0


def test_should_fail_fast_on_deadline():
    cluster = build(reliability=ReliabilityPolicy(deadline=0.5))
    engine = cluster.reliability
    assert not engine.should_fail_fast(_request(cluster, arrival_time=0.0))
    assert engine.should_fail_fast(_request(cluster, arrival_time=-1.0))
    assert engine.deadline_exceeded == 1


def test_retry_token_bucket_exhausts_and_refills():
    cluster = build(
        reliability=ReliabilityPolicy(retry_budget=2, retry_budget_refill=1.0)
    )
    engine = cluster.reliability
    client_id = cluster.clients[0].node_id
    assert engine._take_retry_token(client_id)
    assert engine._take_retry_token(client_id)
    assert not engine._take_retry_token(client_id)  # bucket empty at t=0
    # should_fail_fast charges the counter on the same path.
    assert engine.should_fail_fast(_request(cluster))
    assert engine.retry_budget_exhausted == 1


def test_retry_budget_is_per_client():
    cluster = build(
        n_clients=2,
        reliability=ReliabilityPolicy(retry_budget=1, retry_budget_refill=1.0),
    )
    engine = cluster.reliability
    a, b = (client.node_id for client in cluster.clients)
    assert engine._take_retry_token(a)
    assert not engine._take_retry_token(a)
    assert engine._take_retry_token(b)  # b's bucket untouched by a's spend


def test_backoff_disabled_by_default():
    cluster = build(reliability=ReliabilityPolicy(breaker_threshold=3))
    assert cluster.reliability.backoff_delay(_request(cluster, retries=5)) == 0.0


def test_backoff_exponential_without_jitter():
    cluster = build(
        reliability=ReliabilityPolicy(
            backoff_base=0.01, backoff_mult=2.0, backoff_cap=0.05, backoff_jitter=0.0
        )
    )
    engine = cluster.reliability
    assert engine.backoff_delay(_request(cluster, retries=1)) == pytest.approx(0.01)
    assert engine.backoff_delay(_request(cluster, retries=2)) == pytest.approx(0.02)
    assert engine.backoff_delay(_request(cluster, retries=3)) == pytest.approx(0.04)
    # Capped.
    assert engine.backoff_delay(_request(cluster, retries=10)) == pytest.approx(0.05)


def test_backoff_jitter_stays_in_equal_jitter_band():
    cluster = build(
        reliability=ReliabilityPolicy(
            backoff_base=0.01, backoff_mult=2.0, backoff_cap=1.0, backoff_jitter=0.5
        )
    )
    engine = cluster.reliability
    for _ in range(50):
        delay = engine.backoff_delay(_request(cluster, retries=1))
        assert 0.005 - 1e-12 <= delay <= 0.01 + 1e-12


# ----------------------------------------------------------------------
# reselect delay (satellite: no hardcoded 0.1 s fallback)
# ----------------------------------------------------------------------

def test_reselect_delay_explicit_wins():
    cluster = build(reselect_delay=0.02, request_timeout=0.5)
    assert cluster.reselect_delay == pytest.approx(0.02)


def test_reselect_delay_falls_back_to_request_timeout():
    cluster = build(request_timeout=0.5)
    assert cluster.reselect_delay == pytest.approx(0.5)


def test_reselect_delay_derives_from_mean_service_time():
    """Regression: the NoCandidates path used a flat 100 ms sleep —
    ~20x the mean service time of a fine-grain request. It now derives
    from the loaded workload when nothing else is configured."""
    cluster = build()  # no reselect_delay, no request_timeout
    mean_service = float(cluster._service_times.mean())
    assert cluster.reselect_delay == pytest.approx(5.0 * mean_service)
    assert cluster.reselect_delay < 0.1


def test_reselect_delay_validation():
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), reselect_delay=0.0)
    with pytest.raises(ValueError):
        ServiceCluster(n_servers=2, policy=RandomPolicy(), reselect_delay=-0.1)


# ----------------------------------------------------------------------
# client_for helper (satellite)
# ----------------------------------------------------------------------

def test_client_for_maps_request_back_to_its_client():
    cluster = build(n_clients=3)
    for client in cluster.clients:
        request = Request(
            index=0, client_id=client.node_id, service_time=0.01, arrival_time=0.0
        )
        assert cluster.client_for(request) is client


# ----------------------------------------------------------------------
# integration: breakers, hedging, counters
# ----------------------------------------------------------------------

def _crash_cluster(reliability, seed=7, n_requests=1500, load=0.5):
    cluster = ServiceCluster(
        n_servers=4,
        n_clients=2,
        policy=make_policy("random"),
        seed=seed,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=0.15,
        request_timeout=0.05,
        max_retries=20,
        reliability=reliability,
    )
    rng = np.random.default_rng(seed)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def test_breaker_trips_on_crashed_server():
    cluster = _crash_cluster(ReliabilityPolicy(breaker_threshold=2))
    FailureInjector(cluster).schedule_crash(1, at=0.2)
    metrics = cluster.run()
    engine = cluster.reliability
    # The dead server's breaker tripped at least once; the healthy
    # servers' breakers never did under this light load.
    assert engine.breakers[1].opens >= 1
    assert metrics.failed.sum() == 0
    assert engine.breaker_opens() == sum(b.opens for b in engine.breakers.values())


def test_server_loss_retries_counter():
    cluster = _crash_cluster(None, load=0.9)
    injector = ChaosInjector(cluster, spec=ChaosSpec())
    injector.schedule_crash(1, at=0.2)
    assert cluster.server_loss_retries == 0
    metrics = cluster.run()
    assert cluster.server_loss_retries > 0
    counters = resilience_counters(injector, metrics)
    assert counters["server_loss_retries"] == float(cluster.server_loss_retries)


def test_hedging_end_to_end_exactly_once():
    policy = ReliabilityPolicy(hedge_quantile=0.5, hedge_min_samples=8)
    cluster = _crash_cluster(policy, n_requests=1200)
    ChaosInjector(cluster, spec=ChaosSpec(loss=0.08))
    metrics = cluster.run()
    engine = cluster.reliability
    assert engine.hedges_launched > 0
    # Hedge accounting is conservative: every launched hedge either
    # won, lost, or died on a dead/rejecting server — no leaks.
    settled = engine.hedge_wins + engine.hedge_losses + engine.clones_lost
    assert settled <= engine.hedges_launched
    # Exactly one terminal outcome per request, hedges notwithstanding.
    assert (np.isfinite(metrics.response_time) ^ metrics.failed).all()
    assert cluster._completed == cluster.n_requests
    # No dangling per-request state after the run.
    assert not engine._states


def test_hedged_run_is_deterministic():
    params = hardened_reliability_params()
    runs = []
    for _ in range(2):
        cluster = _crash_cluster(ReliabilityPolicy(**params), n_requests=1000)
        ChaosInjector(cluster, spec=ChaosSpec(loss=0.05, storms=1, storm_size=2))
        runs.append(cluster.run())
    assert np.array_equal(runs[0].response_time, runs[1].response_time)
    assert np.array_equal(runs[0].server_id, runs[1].server_id)


def test_reliability_counters_surface_in_resilience_counters():
    policy = ReliabilityPolicy(hedge_quantile=0.5, hedge_min_samples=8)
    cluster = _crash_cluster(policy, n_requests=800)
    injector = ChaosInjector(cluster, spec=ChaosSpec(loss=0.05))
    metrics = cluster.run()
    counters = resilience_counters(injector, metrics)
    for key in (
        "hedges_launched",
        "hedge_wins",
        "hedge_losses",
        "hedge_clones_lost",
        "breaker_opens",
        "retry_budget_exhausted",
        "deadline_exceeded",
    ):
        assert key in counters
    assert counters["hedges_launched"] == float(cluster.reliability.hedges_launched)
