"""Unit tests for service specs and partition placement."""

import pytest

from repro.cluster import PartitionMap, ServiceSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        ServiceSpec("s", n_partitions=0)
    with pytest.raises(ValueError):
        ServiceSpec("s", replication=0)


def test_place_round_robin_striping():
    pm = PartitionMap()
    pm.place(ServiceSpec("image_store", n_partitions=2, replication=3), [0, 1, 2, 3, 4, 5])
    assert pm.replicas("image_store", 0) == [0, 1, 2]
    assert pm.replicas("image_store", 1) == [3, 4, 5]


def test_place_wraps_pool():
    pm = PartitionMap()
    pm.place(ServiceSpec("s", n_partitions=3, replication=2), [10, 11, 12])
    assert pm.replicas("s", 0) == [10, 11]
    assert pm.replicas("s", 1) == [12, 10]
    assert pm.replicas("s", 2) == [11, 12]


def test_place_rejects_small_pool():
    pm = PartitionMap()
    with pytest.raises(ValueError):
        pm.place(ServiceSpec("s", replication=4), [0, 1])


def test_assign_explicit_and_validation():
    pm = PartitionMap()
    pm.assign("svc", 0, [3, 5])
    assert pm.replicas("svc") == [3, 5]
    with pytest.raises(ValueError):
        pm.assign("svc", 1, [])
    with pytest.raises(ValueError):
        pm.assign("svc", 1, [1, 1])


def test_unknown_lookup_raises():
    pm = PartitionMap()
    with pytest.raises(KeyError):
        pm.replicas("ghost", 0)
    with pytest.raises(KeyError):
        pm.partitions("ghost")


def test_services_and_partitions():
    pm = PartitionMap()
    pm.place(ServiceSpec("a", n_partitions=2, replication=1), [0, 1])
    pm.place(ServiceSpec("b", n_partitions=1, replication=2), [0, 1])
    assert pm.services() == ["a", "b"]
    assert pm.partitions("a") == [0, 1]


def test_nodes_hosting():
    pm = PartitionMap()
    pm.place(ServiceSpec("a", n_partitions=2, replication=1), [0, 1])
    assert pm.nodes_hosting(0) == [("a", 0)]
    assert pm.nodes_hosting(1) == [("a", 1)]
    assert pm.nodes_hosting(9) == []


def test_replicas_returns_copy():
    pm = PartitionMap()
    pm.assign("svc", 0, [1, 2])
    group = pm.replicas("svc", 0)
    group.append(99)
    assert pm.replicas("svc", 0) == [1, 2]
