"""Unit tests for ClientNode CPU accounting."""

import pytest

from repro.cluster import ClientNode
from repro.sim import Simulator


def test_occupy_when_idle():
    sim = Simulator()
    client = ClientNode(sim, 100)
    assert client.occupy(0.5) == pytest.approx(0.5)
    assert client.cpu_busy_until == pytest.approx(0.5)


def test_occupy_serializes():
    sim = Simulator()
    client = ClientNode(sim, 100)
    client.occupy(0.5)
    # Second piece of work queues behind the first.
    assert client.occupy(0.25) == pytest.approx(0.75)
    assert client.cpu_busy_until == pytest.approx(0.75)


def test_occupy_after_idle_period():
    sim = Simulator()
    client = ClientNode(sim, 100)
    client.occupy(0.1)
    sim.after(1.0, lambda: None)
    sim.run()
    assert client.occupy(0.1) == pytest.approx(0.1)
    assert client.cpu_busy_until == pytest.approx(1.1)


def test_zero_cost_is_free():
    sim = Simulator()
    client = ClientNode(sim, 100)
    assert client.occupy(0.0) == 0.0


def test_negative_cost_rejected():
    sim = Simulator()
    client = ClientNode(sim, 100)
    with pytest.raises(ValueError):
        client.occupy(-0.1)


def test_cpu_utilization():
    sim = Simulator()
    client = ClientNode(sim, 100)
    client.occupy(0.2)
    client.occupy(0.3)
    assert client.cpu_utilization(10.0) == pytest.approx(0.05)
    with pytest.raises(ValueError):
        client.cpu_utilization(0.0)


def test_state_dict_isolated_per_client():
    sim = Simulator()
    a, b = ClientNode(sim, 1), ClientNode(sim, 2)
    a.state["x"] = 1
    assert "x" not in b.state
