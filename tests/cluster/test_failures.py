"""Failure injection + soft-state recovery tests (paper §3.1 claim)."""

import numpy as np
import pytest

from repro.cluster import ChaosInjector, ChaosSpec, FailureInjector, ServiceCluster
from repro.core import make_policy
from repro.net.message import Message, MessageKind


def build_cluster(policy, n_requests=2000, seed=7, **kwargs):
    defaults = dict(
        n_servers=4,
        n_clients=2,
        availability=True,
        availability_refresh=0.05,
        availability_ttl=0.15,
        request_timeout=0.5,
        max_retries=10,
    )
    defaults.update(kwargs)
    cluster = ServiceCluster(policy=policy, seed=seed, **defaults)
    rng = np.random.default_rng(seed)
    mean_service = 0.005
    gaps = rng.exponential(mean_service / (4 * 0.5), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def test_crash_marks_server_dead_and_drops_messages():
    cluster = build_cluster(make_policy("random"), n_requests=500)
    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=0.2)
    metrics = cluster.run()
    assert not cluster.servers[1].alive
    assert 1 in injector.dead
    # All requests still completed (retries routed around the failure).
    assert metrics.failed.sum() == 0
    assert (metrics.retries > 0).any()


def test_crashed_server_leaves_candidate_set_after_ttl():
    cluster = build_cluster(make_policy("random"), n_requests=2000)
    injector = FailureInjector(cluster)
    injector.schedule_crash(2, at=0.3)
    metrics = cluster.run()
    del metrics
    table = cluster.mapping_tables[cluster.clients[0].node_id]
    assert 2 not in table.available("service", 0)


def test_requests_stop_landing_on_dead_server():
    cluster = build_cluster(make_policy("random"), n_requests=3000)
    FailureInjector(cluster).schedule_crash(0, at=0.2)
    metrics = cluster.run()
    # After crash + TTL, server 0 receives nothing.
    arrival = metrics.arrival_time
    late = arrival > 0.6
    assert (metrics.server_id[late] != 0).all()


def test_recovery_rejoins_cluster():
    cluster = build_cluster(make_policy("random"), n_requests=4000)
    injector = FailureInjector(cluster)
    injector.schedule_crash(3, at=0.2)
    injector.schedule_recovery(3, at=1.0)
    metrics = cluster.run()
    assert cluster.servers[3].alive
    late = metrics.arrival_time > 2.0
    # The recovered server serves traffic again.
    assert (metrics.server_id[late] == 3).any()
    assert metrics.failed.sum() == 0


def test_polling_with_discard_survives_crash():
    """Polling needs the discard timeout to ride out a mid-poll crash."""
    policy = make_policy("polling", poll_size=2, discard_slow=True)
    cluster = build_cluster(policy, n_requests=2000)
    FailureInjector(cluster).schedule_crash(1, at=0.25)
    metrics = cluster.run()
    assert metrics.failed.sum() == 0


def test_crash_log_records_events():
    cluster = build_cluster(make_policy("random"), n_requests=1000)
    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=0.1)
    injector.schedule_recovery(1, at=0.5)
    cluster.run()
    kinds = [(node, kind) for _, node, kind in injector.crash_log]
    assert kinds == [(1, "crash"), (1, "recover")]


def test_double_crash_is_idempotent():
    cluster = build_cluster(make_policy("random"), n_requests=500)
    injector = FailureInjector(cluster)
    injector.schedule_crash(1, at=0.1)
    injector.schedule_crash(1, at=0.11)
    cluster.run()
    assert sum(1 for _, n, k in injector.crash_log if k == "crash") == 1


def test_exhausted_retries_fail_request():
    """With every server dead, requests fail terminally (no hang)."""
    cluster = build_cluster(make_policy("random"), n_requests=50, max_retries=2)
    injector = FailureInjector(cluster)
    for node in range(4):
        injector.schedule_crash(node, at=0.01)
    metrics = cluster.run()
    assert metrics.failed.sum() > 0
    summary = metrics.summary(warmup_fraction=0.0)
    assert summary["n_failed"] == int(metrics.failed.sum())


def test_injector_composes_with_preinstalled_drop_filter():
    """Installing an injector must chain, not clobber, an existing
    drop_filter: both filters stay in effect."""
    cluster = build_cluster(make_policy("random"), n_requests=100)
    custom_drops = []

    def custom_filter(message):
        if message.dst == 99:
            custom_drops.append(message)
            return True
        return False

    cluster.network.drop_filter = custom_filter
    injector = FailureInjector(cluster)
    injector.dead.add(1)

    def probe(dst):
        return cluster.network.drop_filter(
            Message(MessageKind.REQUEST, 0, dst, None, 64, 0.0)
        )

    assert probe(99)  # the pre-existing filter still fires
    assert probe(1)  # the injector's dead-node filter fires too
    assert not probe(2)  # anything neither filter matches passes
    assert len(custom_drops) == 1


def test_straggler_slows_then_recovers():
    """A straggle interval makes a load-aware policy route around the
    slow server, and the speed is fully restored afterwards."""
    cluster = build_cluster(make_policy("least_connections"), n_requests=2000)
    injector = ChaosInjector(cluster)
    injector.schedule_straggle(0, at=0.2, duration=0.5, factor=8.0)
    metrics = cluster.run()
    assert cluster.servers[0].speed == pytest.approx(1.0)
    assert metrics.failed.sum() == 0
    # During the straggle window the straggler's queue builds up, so the
    # least-connections policy sends it far less than the fair share.
    window = (metrics.arrival_time >= 0.2) & (metrics.arrival_time < 0.7)
    finished = window & np.isfinite(metrics.response_time)
    share = (metrics.server_id[finished] == 0).mean()
    fair = 1.0 / cluster.n_servers
    assert share < 0.6 * fair


def test_chaos_schedule_requires_loaded_workload():
    cluster = ServiceCluster(
        n_servers=4, n_clients=2, policy=make_policy("random"), seed=0
    )
    with pytest.raises(ValueError, match="load_workload"):
        ChaosInjector(cluster, spec=ChaosSpec(storms=1))


def test_zero_spec_injector_changes_nothing():
    """A zero-fault ChaosSpec must be observationally identical to no
    injector at all (the campaign's intensity-0 baseline row)."""
    plain = build_cluster(make_policy("random"), n_requests=400)
    baseline = plain.run()
    chaotic = build_cluster(make_policy("random"), n_requests=400)
    injector = ChaosInjector(chaotic, spec=ChaosSpec())
    result = chaotic.run()
    np.testing.assert_array_equal(baseline.response_time, result.response_time)
    np.testing.assert_array_equal(baseline.server_id, result.server_id)
    assert injector.events == []
    assert injector.faults.total_lost() == 0


def test_chaos_spec_validation():
    with pytest.raises(ValueError):
        ChaosSpec(loss=1.5)
    with pytest.raises(ValueError):
        ChaosSpec(straggle_factor=0.0)
    with pytest.raises(ValueError):
        ChaosSpec(storm_frac=0.0)
    with pytest.raises(ValueError):
        ChaosSpec(storms=-1)
