"""Tests for the closed-loop autoscaler (DESIGN.md §16).

Covers the policy value object, the literal config-key mirror, the
zero-overhead guarantee (a cluster built without a policy — or with the
all-default disabled policy — is bit-identical), the availability
requirement, scale-up under pressure, scale-down through clean
low-demand windows, graceful drain (parking a server never loses its
in-flight work), the provisioned-server-seconds integral, and the
soft-state churn regression: a crash/recover cycle must never
resurrect the publisher of a server the autoscaler has parked.
"""

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerPolicy,
    FailureInjector,
    ServiceCluster,
)
from repro.cluster.system import DEFAULT_SERVICE
from repro.core import RandomPolicy
from repro.experiments.config import _AUTOSCALER_PARAM_KEYS


def build(autoscaler=None, n_servers=4, n_requests=200, load=0.5, seed=3,
          mean_service=0.01, **kwargs):
    cluster = ServiceCluster(
        n_servers=n_servers, policy=RandomPolicy(), seed=seed,
        autoscaler=autoscaler, **kwargs
    )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


def availability_params(**overrides):
    values = dict(
        availability=True, availability_refresh=0.02, availability_ttl=0.06,
        request_timeout=0.5, max_retries=3,
    )
    values.update(overrides)
    return values


def scaling_policy(**overrides):
    values = dict(interval=0.05)
    values.update(overrides)
    return AutoscalerPolicy(**values)


# ----------------------------------------------------------------------
# AutoscalerPolicy value object
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"interval": 0.0},
        {"interval": -1.0},
        {"interval": 0.1, "min_servers": 0},
        {"interval": 0.1, "max_servers": -1},
        {"interval": 0.1, "initial_servers": -1},
        {"interval": 0.1, "shed_high": 1.0},
        {"interval": 0.1, "p95_high": 0.0},
        {"interval": 0.1, "util_low": 1.5},
        {"interval": 0.1, "ewma_alpha": 0.0},
        {"interval": 0.1, "step_up": 0},
        {"interval": 0.1, "step_down": 0},
        {"interval": 0.1, "cooldown": -0.1},
    ],
)
def test_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        AutoscalerPolicy(**kwargs)


def test_default_policy_is_disabled():
    assert not AutoscalerPolicy().enabled
    assert scaling_policy().enabled


def test_autoscaler_param_keys_mirror_autoscaler_policy():
    """config.py validates autoscaler_params against a literal mirror
    of the policy dataclass; the two must never drift apart."""
    assert _AUTOSCALER_PARAM_KEYS == AutoscalerPolicy.field_names()


def test_autoscaler_requires_availability():
    with pytest.raises(ValueError):
        build(autoscaler=scaling_policy())


# ----------------------------------------------------------------------
# zero-overhead guarantee
# ----------------------------------------------------------------------

def test_disabled_policy_is_bit_identical_to_no_policy():
    """interval=None must take exactly the legacy code paths."""
    baseline = build(seed=17, n_requests=400, **availability_params())
    disabled = build(
        seed=17, n_requests=400, autoscaler=AutoscalerPolicy(),
        **availability_params(),
    )
    a = baseline.run()
    b = disabled.run()
    assert np.array_equal(a.response_time, b.response_time)
    assert np.array_equal(a.server_id, b.server_id)
    assert baseline.sim.events_executed == disabled.sim.events_executed


# ----------------------------------------------------------------------
# control law
# ----------------------------------------------------------------------

def test_starts_at_initial_servers_and_parks_the_rest():
    cluster = build(
        autoscaler=scaling_policy(min_servers=1, initial_servers=2),
        **availability_params(),
    )
    assert cluster.autoscaler.n_active == 2
    active = [cluster.autoscaler.is_active(s.node_id) for s in cluster.servers]
    assert active == [True, True, False, False]
    # parked servers never started their publishers
    assert not cluster.publishers[cluster.servers[3].node_id].running


def test_scales_up_under_pressure():
    """An under-provisioned pool failing work must grow."""
    cluster = build(
        autoscaler=scaling_policy(
            min_servers=1, shed_high=0.02, p95_high=0.05, step_up=2,
        ),
        n_requests=600, load=0.9,
        **availability_params(request_timeout=0.1, max_retries=5,
                              server_max_queue=4),
    )
    cluster.run()
    counters = cluster.autoscaler.counters()
    assert counters["autoscale_ups"] > 0
    assert cluster.autoscaler.n_active > 1


def test_scales_down_through_clean_low_demand_windows():
    """An over-provisioned pool serving a trickle must shrink."""
    cluster = build(
        autoscaler=scaling_policy(
            min_servers=1, initial_servers=4, util_low=0.5, cooldown=0.0,
        ),
        n_requests=400, load=0.05,
        **availability_params(),
    )
    cluster.run()
    counters = cluster.autoscaler.counters()
    assert counters["autoscale_downs"] > 0
    assert cluster.autoscaler.n_active < 4
    assert counters["autoscale_mean_active"] < 4.0


def test_scale_down_never_loses_inflight_work():
    """Parking actuates through publish withdrawal only: work already
    queued on a parked server drains normally (exactly-once)."""
    cluster = build(
        autoscaler=scaling_policy(
            min_servers=1, initial_servers=4, util_low=0.6, cooldown=0.0,
        ),
        n_requests=500, load=0.2,
        **availability_params(),
    )
    metrics = cluster.run()
    assert cluster.autoscaler.counters()["autoscale_downs"] > 0
    finished = np.isfinite(metrics.response_time)
    # conservation: every request terminal exactly once
    assert int(finished.sum()) + int(metrics.failed.sum()) == 500
    assert int(metrics.failed.sum()) == 0


def test_provisioned_server_seconds_integral():
    cluster = build(
        autoscaler=scaling_policy(min_servers=2, initial_servers=2),
        n_requests=100, load=0.1,
        **availability_params(),
    )
    cluster.run()
    counters = cluster.autoscaler.counters()
    # the pool never left its floor: the integral is exactly 2 × T
    assert counters["autoscale_ups"] == 0
    assert counters["autoscale_mean_active"] == pytest.approx(2.0)
    assert counters["provisioned_server_seconds"] == pytest.approx(
        2.0 * cluster.sim.now
    )


# ----------------------------------------------------------------------
# soft-state churn regression (phantom publisher resurrection)
# ----------------------------------------------------------------------

def test_crash_recover_cycle_keeps_parked_server_silent():
    """Regression: FailureInjector recovery used to restart the
    publisher unconditionally, resurrecting servers the autoscaler had
    deliberately parked (phantom mapping-table entries)."""
    cluster = build(
        autoscaler=scaling_policy(min_servers=2, initial_servers=2),
        n_requests=300, load=0.1,
        **availability_params(),
    )
    parked = cluster.servers[3].node_id
    injector = FailureInjector(cluster)
    injector.schedule_crash(3, at=0.05)
    injector.schedule_recovery(3, at=0.1)
    cluster.run()
    assert not cluster.autoscaler.is_active(parked)
    assert not cluster.publishers[parked].running
    for table in cluster.mapping_tables.values():
        assert parked not in table.available(DEFAULT_SERVICE, 0)


def test_crash_recover_cycle_republishes_active_server():
    """The inverse contract: an *active* server that crashes and
    recovers must rejoin the pool."""
    cluster = build(
        autoscaler=scaling_policy(min_servers=2, initial_servers=2),
        n_requests=300, load=0.1,
        **availability_params(),
    )
    active = cluster.servers[0].node_id
    injector = FailureInjector(cluster)
    injector.schedule_crash(0, at=0.05)
    injector.schedule_recovery(0, at=0.1)
    cluster.run()
    assert cluster.autoscaler.is_active(active)
    assert cluster.publishers[active].running
