"""Circuit-breaker half-open races (ISSUE 10 satellite).

The open -> half-open transition is evaluated lazily at query time, so
the interesting races live at *exact* timestamp boundaries: a probe
outcome recorded at precisely ``open_until``, and a success and a
failure landing at the same instant (probe response and attempt timeout
in the same event batch). The state machine must resolve these purely
by call order — which the engines make deterministic — and the oracle's
snapshot rule (no cooldown truncation, no closed->half-open shortcut)
must hold across any legal sequence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.reliability import CircuitBreaker
from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parity import COMPARED_FIELDS, _values_equal


def _tripped_breaker(threshold=3, cooldown=0.5):
    breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown)
    for _ in range(threshold):
        breaker.record_failure(1.0)
    assert breaker.state(1.0) == "open"
    assert breaker._open_until == pytest.approx(1.0 + cooldown)
    return breaker


def test_half_open_begins_exactly_at_cooldown_boundary():
    breaker = _tripped_breaker(cooldown=0.5)
    boundary = breaker._open_until
    assert breaker.state(boundary - 1e-12) == "open"
    assert not breaker.allows(boundary - 1e-12)
    # at t == open_until the probe window opens (>= comparison)
    assert breaker.state(boundary) == "half_open"
    assert breaker.allows(boundary)


def test_same_timestamp_success_then_failure():
    """Probe success then an old attempt's timeout at the same instant:
    the success closes the breaker, the failure then counts as one
    *closed-state* failure — no immediate re-open below threshold."""
    breaker = _tripped_breaker(threshold=3, cooldown=0.5)
    boundary = breaker._open_until
    breaker.record_success(boundary)
    assert breaker.state(boundary) == "closed"
    breaker.record_failure(boundary)
    assert breaker.state(boundary) == "closed"
    assert breaker.failures == 1
    assert breaker.opens == 1


def test_same_timestamp_failure_then_success():
    """Opposite order: the failed probe re-opens for a full cooldown,
    and the success (a late response from the pre-open era) then closes
    the breaker again — order decides, deterministically."""
    breaker = _tripped_breaker(threshold=3, cooldown=0.5)
    boundary = breaker._open_until
    breaker.record_failure(boundary)
    assert breaker.opens == 2
    assert breaker._open_until == pytest.approx(boundary + 0.5)
    # state at the same timestamp is open again: no probe admitted
    assert breaker.state(boundary) == "open"
    assert not breaker.allows(boundary)
    breaker.record_success(boundary)
    assert breaker.state(boundary) == "closed"


def test_failure_while_open_is_absorbed():
    """Late failures from attempts sent before the trip must not extend
    the cooldown or bump the open count."""
    breaker = _tripped_breaker(threshold=3, cooldown=0.5)
    horizon = breaker._open_until
    breaker.record_failure(1.2)
    assert breaker._open_until == pytest.approx(horizon)
    assert breaker.opens == 1


def test_half_open_probe_failure_reopens_full_cooldown():
    breaker = _tripped_breaker(threshold=3, cooldown=0.5)
    probe_time = breaker._open_until + 0.1
    breaker.record_failure(probe_time)
    assert breaker.opens == 2
    assert breaker._open_until == pytest.approx(probe_time + 0.5)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["fail", "ok"]), st.floats(0.0, 0.05)),
        min_size=1,
        max_size=60,
    ),
    threshold=st.integers(1, 5),
    cooldown=st.floats(0.01, 1.0),
)
@settings(max_examples=200, deadline=None)
def test_breaker_state_machine_properties(ops, threshold, cooldown):
    """For any op sequence at non-decreasing times: the breaker never
    admits while open, opens are monotone, and the failure count stays
    inside [0, threshold]."""
    breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown)
    now = 0.0
    opens_before = 0
    for op, gap in ops:
        now += gap
        if breaker.state(now) == "open":
            assert not breaker.allows(now)
        else:
            assert breaker.allows(now)
        if op == "fail":
            breaker.record_failure(now)
        else:
            breaker.record_success(now)
        assert 0 <= breaker.failures <= breaker.threshold
        assert breaker.opens >= opens_before
        opens_before = breaker.opens
        if breaker.state(now) == "open":
            # a fresh trip always honours the full cooldown from now
            assert breaker._open_until >= now or math.isinf(breaker._open_until)


def test_breaker_races_engine_invariant():
    """Cluster-level: a breaker-heavy run (crashes force trips, probes,
    and same-batch success/timeout collisions) is bit-identical across
    engines, with the oracle's breaker-legality scan enabled."""
    from repro.experiments.chaos import chaos_cluster_params, chaos_params_for

    config = SimulationConfig(
        policy="random",
        load=0.9,
        n_servers=4,
        n_requests=900,
        seed=31,
        cluster_params=chaos_cluster_params(),
        chaos_params=chaos_params_for(1.5, n_servers=4),
        reliability_params={"breaker_threshold": 2, "breaker_cooldown": 0.1},
        verify_params={"enabled": True, "check_interval": 2},
    )
    heap = run_simulation(config.with_updates(engine="heap"))
    calendar = run_simulation(config.with_updates(engine="calendar"))
    assert heap.chaos_counters["breaker_opens"] > 0
    for name in COMPARED_FIELDS:
        assert _values_equal(getattr(heap, name), getattr(calendar, name)), name
