"""Unit tests for ServerNode."""

import pytest

from repro.cluster import Request, ServerNode
from repro.sim import Simulator


def make_server(**kwargs):
    sim = Simulator()
    server = ServerNode(sim, node_id=0, **kwargs)
    completed = []
    server.on_complete = lambda s, r: completed.append((sim.now, r))
    return sim, server, completed


def req(index, service, arrival=0.0):
    return Request(index=index, client_id=100, service_time=service, arrival_time=arrival)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ServerNode(sim, 0, workers=0)
    with pytest.raises(ValueError):
        ServerNode(sim, 0, speed=0.0)


def test_single_job_lifecycle():
    sim, server, completed = make_server()
    request = req(0, 2.0)
    server.enqueue(request)
    assert server.queue_length == 1
    assert server.busy
    sim.run()
    assert completed == [(2.0, request)]
    assert request.start_time == 0.0
    assert request.completion_time == 2.0
    assert server.queue_length == 0
    assert server.completed_count == 1


def test_fifo_order():
    sim, server, completed = make_server()
    first, second, third = req(0, 1.0), req(1, 1.0), req(2, 1.0)
    for request in (first, second, third):
        server.enqueue(request)
    assert server.queue_length == 3
    sim.run()
    assert [r for _, r in completed] == [first, second, third]
    assert [t for t, _ in completed] == [1.0, 2.0, 3.0]


def test_queue_wait_measured():
    sim, server, _ = make_server()
    first, second = req(0, 2.0), req(1, 1.0)
    server.enqueue(first)
    server.enqueue(second)
    sim.run()
    assert first.queue_wait == 0.0
    assert second.queue_wait == 2.0


def test_multiple_workers_parallel_service():
    sim, server, completed = make_server(workers=2)
    server.enqueue(req(0, 2.0))
    server.enqueue(req(1, 2.0))
    server.enqueue(req(2, 2.0))
    sim.run()
    times = [t for t, _ in completed]
    assert times == [2.0, 2.0, 4.0]


def test_speed_scales_service():
    sim, server, completed = make_server(speed=2.0)
    server.enqueue(req(0, 3.0))
    sim.run()
    assert completed[0][0] == pytest.approx(1.5)


def test_queue_length_counts_in_service():
    sim, server, _ = make_server()
    server.enqueue(req(0, 5.0))
    server.enqueue(req(1, 5.0))
    assert server.queue_length == 2  # one in service + one waiting


def test_steal_cpu_postpones_completion():
    sim, server, completed = make_server()
    server.enqueue(req(0, 2.0))
    sim.after(0.5, lambda: server.steal_cpu(0.3))
    sim.run()
    assert completed[0][0] == pytest.approx(2.3)
    assert server.stolen_cpu_total == pytest.approx(0.3)


def test_steal_cpu_idle_noop():
    sim, server, _ = make_server()
    server.steal_cpu(1.0)
    assert server.stolen_cpu_total == 0.0


def test_steal_cpu_negative_rejected():
    sim, server, _ = make_server()
    with pytest.raises(ValueError):
        server.steal_cpu(-1.0)


def test_steal_cpu_affects_all_in_service():
    sim, server, completed = make_server(workers=2)
    server.enqueue(req(0, 2.0))
    server.enqueue(req(1, 3.0))
    sim.after(1.0, lambda: server.steal_cpu(0.5))
    sim.run()
    assert sorted(t for t, _ in completed) == [pytest.approx(2.5), pytest.approx(3.5)]


def test_drain_cancels_everything():
    sim, server, completed = make_server()
    first, second = req(0, 2.0), req(1, 2.0)
    server.enqueue(first)
    server.enqueue(second)
    dropped = server.drain()
    assert dropped == [first, second]
    assert server.queue_length == 0
    sim.run()
    assert completed == []


def test_queue_recorder_tracks_step_function():
    sim = Simulator()
    server = ServerNode(sim, 0, record_queue=True)
    server.on_complete = lambda s, r: None
    server.enqueue(req(0, 1.0))
    server.enqueue(req(1, 1.0))
    sim.run()
    times, values = server.queue_recorder.breakpoints()
    assert times.tolist() == [0.0, 0.0, 1.0, 2.0]
    assert values.tolist() == [1.0, 2.0, 1.0, 0.0]


def test_work_conservation_busy_until_done():
    """Server never idles while work is queued."""
    sim, server, completed = make_server()
    for i in range(5):
        server.enqueue(req(i, 1.0))
    sim.run()
    # Back-to-back completions with no gaps.
    assert [t for t, _ in completed] == [1.0, 2.0, 3.0, 4.0, 5.0]
