"""Unit tests for measurement recorders."""

import math

import numpy as np
import pytest

from repro.sim import GrowableArray, StepRecorder, TallyRecorder


def test_growable_append_and_view():
    arr = GrowableArray(initial_capacity=2)
    for i in range(10):
        arr.append(float(i))
    assert len(arr) == 10
    assert np.array_equal(arr.view(), np.arange(10.0))


def test_growable_view_is_readonly():
    arr = GrowableArray()
    arr.append(1.0)
    view = arr.view()
    with pytest.raises(ValueError):
        view[0] = 2.0


def test_growable_extend():
    arr = GrowableArray(initial_capacity=1)
    arr.extend(np.arange(5.0))
    arr.extend(np.arange(5.0, 12.0))
    assert np.array_equal(arr.view(), np.arange(12.0))


def test_growable_array_returns_copy():
    arr = GrowableArray()
    arr.append(1.0)
    copy = arr.array()
    copy[0] = 99.0
    assert arr.view()[0] == 1.0


def test_tally_summary_stats():
    tally = TallyRecorder()
    for v in [1.0, 2.0, 3.0, 4.0]:
        tally.record(v)
    assert tally.mean() == 2.5
    assert tally.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
    assert tally.percentile(50) == 2.5
    assert len(tally) == 4


def test_tally_empty_is_nan():
    tally = TallyRecorder()
    assert math.isnan(tally.mean())
    assert math.isnan(tally.std())
    assert math.isnan(tally.percentile(99))


def test_step_value_at_before_first_breakpoint():
    rec = StepRecorder(initial=5.0)
    rec.record(1.0, 10.0)
    values = rec.value_at(np.array([0.0, 0.999, 1.0, 2.0]))
    assert values.tolist() == [5.0, 5.0, 10.0, 10.0]


def test_step_right_continuity():
    rec = StepRecorder()
    rec.record(0.0, 1.0)
    rec.record(2.0, 3.0)
    assert rec.value_at(np.array([2.0]))[0] == 3.0
    assert rec.value_at(np.array([1.9999]))[0] == 1.0


def test_step_rejects_nonmonotone_times():
    rec = StepRecorder()
    rec.record(2.0, 1.0)
    with pytest.raises(ValueError):
        rec.record(1.0, 2.0)


def test_step_equal_times_allowed_last_wins():
    rec = StepRecorder()
    rec.record(1.0, 5.0)
    rec.record(1.0, 7.0)
    assert rec.value_at(np.array([1.0]))[0] == 7.0


def test_time_average_simple():
    rec = StepRecorder()
    rec.record(0.0, 1.0)
    rec.record(1.0, 3.0)
    # [0,1): 1, [1,2): 3 -> average over [0,2] is 2
    assert rec.time_average(0.0, 2.0) == pytest.approx(2.0)


def test_time_average_window_inside_segment():
    rec = StepRecorder()
    rec.record(0.0, 4.0)
    rec.record(10.0, 8.0)
    assert rec.time_average(2.0, 5.0) == pytest.approx(4.0)


def test_time_average_empty_recorder_uses_initial():
    rec = StepRecorder(initial=2.5)
    assert rec.time_average(0.0, 4.0) == 2.5


def test_time_average_invalid_window():
    rec = StepRecorder()
    with pytest.raises(ValueError):
        rec.time_average(3.0, 3.0)


def test_value_at_empty_recorder_returns_initial():
    # Regression: np.where evaluates both branches, so the fancy index
    # used to raise IndexError on a recorder with no breakpoints.
    rec = StepRecorder(initial=3.5)
    values = rec.value_at(np.array([0.0, 1.0, 100.0]))
    assert values.tolist() == [3.5, 3.5, 3.5]


def test_time_average_breakpoint_exactly_at_t0():
    rec = StepRecorder(initial=0.0)
    rec.record(1.0, 5.0)
    rec.record(2.0, 9.0)
    # Breakpoint at t0: the [1,2) segment value (5) is in force from t0.
    assert rec.time_average(1.0, 3.0) == pytest.approx(7.0)


def test_time_average_breakpoint_exactly_at_t1():
    rec = StepRecorder(initial=0.0)
    rec.record(1.0, 5.0)
    rec.record(3.0, 9.0)
    # A breakpoint at t1 contributes zero duration to [t0, t1].
    assert rec.time_average(1.0, 3.0) == pytest.approx(5.0)


def test_time_average_window_before_first_breakpoint():
    rec = StepRecorder(initial=2.0)
    rec.record(10.0, 7.0)
    assert rec.time_average(0.0, 4.0) == pytest.approx(2.0)


def test_time_average_matches_value_at_segments():
    # Property: the time average equals the duration-weighted dot
    # product of value_at sampled at segment midpoints (exact for step
    # functions — hypothesis version below explores random shapes).
    rec = StepRecorder(initial=1.0)
    for t, v in [(0.5, 2.0), (1.25, 0.0), (4.0, 6.0)]:
        rec.record(t, v)
    t0, t1 = 0.0, 5.0
    cuts = np.array([t0, 0.5, 1.25, 4.0, t1])
    mids = (cuts[:-1] + cuts[1:]) / 2
    expected = float(np.dot(rec.value_at(mids), np.diff(cuts)) / (t1 - t0))
    assert rec.time_average(t0, t1) == pytest.approx(expected)


def test_breakpoints_views():
    rec = StepRecorder()
    rec.record(1.0, 2.0)
    rec.record(3.0, 4.0)
    times, values = rec.breakpoints()
    assert times.tolist() == [1.0, 3.0]
    assert values.tolist() == [2.0, 4.0]
