"""Unit tests for the vectorized batch engine (DESIGN.md §13).

Distribution-level agreement with the heap engine is covered by
``tests/experiments/test_distribution_parity.py`` and the property
suite; this file pins the contract around it: the capability check
fails loudly, runs are deterministic, random is *exactly* the heap
engine's arithmetic, and the accounting (messages, counters,
occupancy) is self-consistent.
"""

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    build_cluster,
    run_simulation,
    run_with_telemetry,
)
from repro.sim.fastpath import (
    FASTPATH_POLICIES,
    FastpathUnsupportedError,
    fastpath_violations,
    run_fastpath,
)


def _config(**overrides):
    defaults = dict(
        policy="random",
        workload="poisson_exp",
        load=0.8,
        n_servers=8,
        n_requests=2_000,
        seed=0,
        engine="fast",
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# capability check: loud fallback, never silent
# ----------------------------------------------------------------------
def test_supported_configs_have_no_violations():
    for policy, params in [
        ("random", {}),
        ("polling", {"poll_size": 3}),
        ("broadcast", {"mean_interval": 0.01}),
        ("stale_jsq", {"update_interval": 0.02}),
    ]:
        config = _config(policy=policy, policy_params=params)
        assert fastpath_violations(config) == []


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (dict(model="prototype"), "model"),
        (dict(policy="jiq"), "policy"),
        (dict(workers=2), "workers"),
        (dict(server_speeds=(1.0,) * 8), "server_speeds"),
        (dict(cluster_params={"availability": True}), "cluster_params.availability"),
        (dict(chaos_params={"loss": 0.01}), "chaos_params"),
        (dict(telemetry={"spans": True}), "telemetry"),
        (dict(reliability_params={"deadline": 1.0}), "reliability_params"),
        (dict(overload_params={"sojourn_target": 0.1}), "overload_params"),
        (
            dict(
                policy="stale_jsq",
                policy_params={"update_interval": 0.02, "local_increment": True},
            ),
            "local_increment",
        ),
    ],
)
def test_unsupported_knobs_raise_and_name_the_knob(overrides, fragment):
    config = _config(**overrides)
    with pytest.raises(FastpathUnsupportedError, match=fragment):
        run_fastpath(config)


def test_record_server_queues_is_not_a_violation():
    config = _config(cluster_params={"record_server_queues": True})
    assert fastpath_violations(config) == []


def test_build_cluster_refuses_fast_engine():
    with pytest.raises(ValueError, match="fast"):
        build_cluster(_config())


def test_run_with_telemetry_refuses_fast_engine():
    with pytest.raises(ValueError, match="fast"):
        run_with_telemetry(_config())


def test_config_accepts_fast_engine_and_rejects_unknown():
    assert _config().engine == "fast"
    with pytest.raises(ValueError, match="engine"):
        _config(engine="warp")


# ----------------------------------------------------------------------
# determinism + exactness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy, params", [
    ("random", {}),
    ("polling", {"poll_size": 2}),
    ("broadcast", {"mean_interval": 0.01}),
    ("stale_jsq", {"update_interval": 0.02}),
])
def test_same_seed_is_bit_deterministic(policy, params):
    config = _config(policy=policy, policy_params=params)
    a = run_fastpath(config)
    b = run_fastpath(config)
    np.testing.assert_array_equal(a.metrics.response_time, b.metrics.response_time)
    np.testing.assert_array_equal(a.occupancy, b.occupancy)
    assert a.message_counts == b.message_counts


def test_different_seeds_differ():
    a = run_fastpath(_config(seed=0))
    b = run_fastpath(_config(seed=1))
    assert not np.array_equal(a.metrics.response_time, b.metrics.response_time)


def test_random_matches_heap_engine_exactly():
    """Random reads no server state, so the batch Lindley recursion
    replays the heap engine's arithmetic on the same substreams."""
    config = _config(policy="random", n_requests=3_000)
    fast = run_fastpath(config)
    heap = build_cluster(config.with_updates(engine="heap"))[0].run()
    np.testing.assert_allclose(
        fast.metrics.response_time, heap.response_time, rtol=0, atol=1e-12
    )


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def test_message_counts_match_paper_model():
    n = 2_000
    random = run_fastpath(_config(policy="random", n_requests=n))
    assert random.message_counts["request"] == n
    assert random.message_counts["response"] == n
    assert "poll" not in random.message_counts

    polling = run_fastpath(
        _config(policy="polling", policy_params={"poll_size": 3}, n_requests=n)
    )
    assert polling.message_counts["poll"] == 3 * n
    assert polling.message_counts["poll_reply"] == 3 * n
    assert polling.policy_counters["polls_sent"] == 3 * n

    broadcast = run_fastpath(
        _config(policy="broadcast", policy_params={"mean_interval": 0.01}, n_requests=n)
    )
    assert broadcast.message_counts["broadcast"] > 0


def test_occupancy_is_a_distribution():
    run = run_fastpath(_config())
    assert run.occupancy is not None
    assert run.occupancy.min() >= 0
    assert run.occupancy.sum() == pytest.approx(1.0)
    tail = run.occupancy_tail
    assert tail[0] == pytest.approx(1.0)
    assert np.all(np.diff(tail) <= 1e-12)  # s_k is non-increasing


def test_record_occupancy_false_skips_reconstruction():
    run = run_fastpath(_config(), record_occupancy=False)
    assert run.occupancy is None
    with pytest.raises(ValueError, match="record_occupancy"):
        run.occupancy_tail


def test_run_simulation_routes_fast_engine():
    config = _config()
    result = run_simulation(config)
    assert result.events_executed > 0
    assert result.mean_response_time > 0
    # server_counts are post-warmup, same semantics as the exact engines
    expected = config.n_requests - int(config.n_requests * config.warmup_fraction)
    assert sum(result.server_counts) == expected
    assert result.n_measured == expected


def test_fastpath_policies_constant_is_exhaustive():
    assert set(FASTPATH_POLICIES) == {"random", "polling", "broadcast", "stale_jsq"}
