"""Calendar-queue engine tests + edge cases shared by both engines.

The parametrized tests run identically against the heap and calendar
engines: any semantic difference between the two queues is a bug by
definition (the calendar engine's contract is bit-identical ordering).
"""

import math
import random

import pytest

from repro.sim import (
    CalendarSimulator,
    ENGINES,
    SimulationError,
    Simulator,
    make_simulator,
)

ENGINE_NAMES = sorted(ENGINES)


@pytest.fixture(params=ENGINE_NAMES)
def sim(request):
    return make_simulator(request.param)


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------

def test_make_simulator_types():
    assert isinstance(make_simulator("heap"), Simulator)
    assert isinstance(make_simulator("calendar"), CalendarSimulator)
    assert isinstance(make_simulator(), Simulator)  # default stays heap


def test_make_simulator_rejects_unknown():
    with pytest.raises(ValueError, match="unknown engine"):
        make_simulator("splay")


# ----------------------------------------------------------------------
# edge cases, parametrized over both queue implementations
# ----------------------------------------------------------------------

def test_cancel_then_reschedule_same_timestamp(sim):
    """A cancelled slot can be re-filled at the same time; FIFO order is
    by scheduling sequence, and the cancelled callback never fires."""
    fired = []
    first = sim.at(1.0, fired.append, "first")
    sim.at(1.0, fired.append, "second")
    sim.cancel(first)
    sim.at(1.0, fired.append, "replacement")
    assert sim.pending == 2
    sim.run()
    assert fired == ["second", "replacement"]
    assert sim.now == 1.0


def test_cancel_reschedule_interleaved_many(sim):
    """Repeated cancel/reschedule churn at one timestamp stays FIFO."""
    fired = []
    handles = [sim.at(2.0, fired.append, i) for i in range(50)]
    for handle in handles[1::2]:
        sim.cancel(handle)
    replacements = [sim.at(2.0, fired.append, 100 + i) for i in range(10)]
    sim.cancel(replacements[0])
    sim.run()
    assert fired == list(range(0, 50, 2)) + [101 + i for i in range(9)]


def test_peek_after_mass_cancellation(sim):
    """peek() skips arbitrarily many cancelled events without firing any."""
    handles = [sim.at(0.001 * (i + 1), lambda: None) for i in range(500)]
    survivor = sim.at(0.75, lambda: None)
    for handle in handles:
        sim.cancel(handle)
    assert sim.peek() == pytest.approx(0.75)
    assert sim.pending == 1
    sim.cancel(survivor)
    assert sim.peek() == math.inf
    assert sim.step() is False


def test_run_until_event_exactly_at_boundary(sim):
    """Events at exactly `until` execute, and the clock lands on `until`."""
    fired = []
    sim.at(1.0, fired.append, "before")
    sim.at(2.0, fired.append, "boundary")
    sim.at(2.0 + 1e-12, fired.append, "after")
    sim.run(until=2.0)
    assert fired == ["before", "boundary"]
    assert sim.now == 2.0
    assert sim.pending == 1
    sim.run()
    assert fired == ["before", "boundary", "after"]


def test_run_until_with_no_event_at_boundary_advances_clock(sim):
    fired = []
    sim.at(0.5, fired.append, "x")
    sim.at(9.0, fired.append, "y")
    sim.run(until=3.0)
    assert fired == ["x"]
    assert sim.now == 3.0  # clock advances to the horizon, not the last event
    sim.run()
    assert sim.now == 9.0


def test_run_until_leaves_future_events_intact(sim):
    """An event past the horizon survives (ordering intact) and fires later."""
    fired = []
    sim.at(5.0, fired.append, "far")
    sim.at(5.0, fired.append, "far2")
    sim.run(until=1.0)
    assert fired == []
    assert sim.pending == 2
    sim.run()
    assert fired == ["far", "far2"]


def test_schedule_earlier_after_bounded_run(sim):
    """run(until=) that defers a far event must not strand later-scheduled
    earlier events behind the dequeue cursor (regression: the calendar
    cursor stayed at the far event's day, firing [a, far, b] with the
    clock running backwards from 0.01 to 0.003)."""
    fired = []
    sim.at(0.0005, fired.append, "a")
    sim.at(0.01, fired.append, "far")
    sim.run(until=0.001)
    assert fired == ["a"]
    assert sim.now == 0.001
    sim.at(0.003, fired.append, "b")
    times = []
    sim.trace = lambda t, handle: times.append(t)
    sim.run()
    assert fired == ["a", "b", "far"]
    assert times == sorted(times)  # time is monotone
    assert sim.now == 0.01


@pytest.mark.parametrize("seed", [0, 1])
def test_schedule_between_bounded_runs_matches_heap(seed):
    """Interleaving run(until=) with fresh earlier scheduling — the
    bounded-run-then-schedule pattern the cluster tests use — fires in
    the same order on both engines."""
    outputs = []
    for engine in ENGINE_NAMES:
        sim = make_simulator(engine)
        rng = random.Random(seed)
        fired = []
        sim.at(100.0, fired.append, "sentinel")  # stays deferred throughout
        for chunk in range(20):
            sim.run(until=0.25 * (chunk + 1))
            for i in range(10):
                sim.at(
                    round(sim.now + rng.uniform(0.0, 2.0), 3),
                    fired.append,
                    (chunk, i),
                )
        sim.run()
        outputs.append(fired)
    assert outputs[0] == outputs[1]


def test_max_events_budget(sim):
    fired = []
    for i in range(10):
        sim.at(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    sim.run()
    assert fired == list(range(10))


def test_schedule_into_past_rejected(sim):
    sim.at(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1e-9, lambda: None)


def test_call_soon_ordering(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.call_soon(lambda: fired.append("soon"))
        sim.at(sim.now, lambda: fired.append("at-now"))

    sim.at(1.0, outer)
    sim.at(1.0, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "soon", "at-now"]


def test_trace_hook_fires_per_event(sim):
    seen = []
    sim.trace = lambda t, handle: seen.append(t)
    sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    sim.run()
    assert seen == [1.0, 2.0]


def test_events_scheduled_from_callbacks(sim):
    """Self-scheduling chains (the arrival-loop pattern) terminate."""
    remaining = [1000]

    def tick():
        remaining[0] -= 1
        if remaining[0]:
            sim.after(1e-6, tick)

    sim.after(1e-6, tick)
    sim.run()
    assert remaining[0] == 0
    assert sim.events_executed == 1000


# ----------------------------------------------------------------------
# cross-engine ordering equivalence (randomized)
# ----------------------------------------------------------------------

def _random_schedule(sim, rng, n=3000):
    """A randomized mix of scheduling, ties, cancels, and reschedules."""
    fired = []
    handles = []
    for i in range(n):
        time = round(rng.uniform(0.0, 2.0), 3)  # coarse grid forces ties
        handles.append(sim.at(time, fired.append, i))
    for i in rng.sample(range(n), n // 3):
        sim.cancel(handles[i])
    for i in range(n // 10):
        # reschedule at an already-used timestamp
        time = handles[rng.randrange(n)].time
        sim.at(time, fired.append, n + i)
    sim.run()
    return fired


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_calendar_matches_heap_ordering(seed):
    heap_fired = _random_schedule(make_simulator("heap"), random.Random(seed))
    cal_fired = _random_schedule(make_simulator("calendar"), random.Random(seed))
    assert cal_fired == heap_fired


def test_calendar_matches_heap_under_until_stepping():
    """Chunked run(until=...) execution is identical across engines."""
    outputs = []
    for engine in ENGINE_NAMES:
        sim = make_simulator(engine)
        rng = random.Random(7)
        fired = []
        for i in range(500):
            sim.at(round(rng.uniform(0, 1), 2), fired.append, i)
        horizon = 0.0
        while sim.pending:
            horizon += 0.05
            sim.run(until=horizon)
        outputs.append(fired)
    assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# calendar-specific internals
# ----------------------------------------------------------------------

def test_calendar_resizes_up_and_down():
    sim = make_simulator("calendar")
    for i in range(5000):
        sim.after(i * 1e-4, lambda: None)
    assert sim._n_buckets > 8  # grew with the population
    sim.run()
    assert sim._n_buckets == 8  # shrank back once drained
    assert sim.pending == 0


def test_calendar_sparse_far_future_jump():
    """A lone event years past the cursor is found via the direct jump."""
    sim = make_simulator("calendar")
    fired = []
    sim.at(1e-6, fired.append, "near")
    sim.at(1e6, fired.append, "far")
    sim.run()
    assert fired == ["near", "far"]
    assert sim.now == 1e6


def test_calendar_mixed_scales():
    """Microsecond and kilosecond events interleave correctly."""
    sim = make_simulator("calendar")
    fired = []
    for i in range(100):
        sim.at(i * 1e-6, fired.append, ("us", i))
        sim.at(1000.0 + i, fired.append, ("ks", i))
    sim.run()
    assert fired[:100] == [("us", i) for i in range(100)]
    assert fired[100:] == [("ks", i) for i in range(100)]
