"""Unit tests for the event scheduler."""

import math

import pytest

from repro.sim import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.peek() == math.inf
    assert sim.step() is False


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.after(2.0, fired.append, "c")
    sim.after(1.0, fired.append, "b")
    sim.after(0.5, fired.append, "a")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 2.0


def test_fifo_at_equal_times():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.at(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_zero_arg_callback():
    sim = Simulator()
    hits = []
    sim.after(1.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [1.0]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    order = []

    def first():
        order.append(("first", sim.now))
        sim.call_soon(lambda: order.append(("soon", sim.now)))

    sim.after(3.0, first)
    sim.after(3.0, lambda: order.append(("second", sim.now)))
    sim.run()
    assert order == [("first", 3.0), ("second", 3.0), ("soon", 3.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.after(1.0, fired.append, "x")
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.after(1.0, lambda: None)
    sim.cancel(handle)
    sim.cancel(handle)
    assert sim.pending == 0


def test_cannot_schedule_into_past():
    sim = Simulator()
    sim.after(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-0.1, lambda: None)


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    fired = []
    sim.after(1.0, fired.append, "a")
    sim.after(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.after(5.0, fired.append, "edge")
    sim.run(until=5.0)
    assert fired == ["edge"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.after(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.pending == 7


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.after(1.0, chain, n + 1)

    sim.after(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 6.0


def test_peek_skips_cancelled():
    sim = Simulator()
    handle = sim.after(1.0, lambda: None)
    sim.after(2.0, lambda: None)
    sim.cancel(handle)
    assert sim.peek() == 2.0


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.after(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_trace_hook_sees_every_event():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, h: seen.append(t)
    sim.after(1.0, lambda: None)
    sim.after(2.0, lambda: None)
    sim.run()
    assert seen == [1.0, 2.0]


def test_pending_counts_live_events_only():
    sim = Simulator()
    handles = [sim.after(1.0, lambda: None) for _ in range(5)]
    assert sim.pending == 5
    sim.cancel(handles[0])
    assert sim.pending == 4
    sim.run()
    assert sim.pending == 0
