"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Process, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a = res.acquire()
    b = res.acquire()
    c = res.acquire()
    assert a.triggered and b.triggered and not c.triggered
    assert res.available == 0
    assert res.queue_length == 1


def test_resource_release_hands_to_waiter_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    first = res.acquire()
    second = res.acquire()
    res.release()
    assert first.triggered and not second.triggered
    res.release()
    assert second.triggered


def test_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_with_processes_serializes_work():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(name, hold):
        yield res.acquire()
        start = sim.now
        yield hold
        res.release()
        spans.append((name, start, sim.now))

    Process(sim, user("a", 2.0))
    Process(sim, user("b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = store.get()
    assert not got.triggered
    store.put("y")
    assert got.value == "y"


def test_store_fifo_order_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2
    g1 = store.get()
    g2 = store.get()
    store.put("a")
    store.put("b")
    assert (g1.value, g2.value) == ("a", "b")


def test_bounded_store_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.put("a").triggered
    blocked = store.put("b")
    assert not blocked.triggered
    assert store.putters_waiting == 1
    assert store.get().value == "a"
    assert blocked.triggered
    assert store.get().value == "b"


def test_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    assert store.try_get() == (True, "a")
    assert store.try_get() == (False, None)


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)
