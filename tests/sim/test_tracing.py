"""Tests for the event tracing subsystem."""

import pytest

from repro.sim import EventTrace, Simulator


def named(label):
    def fn():
        pass

    fn.__qualname__ = label
    return fn


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventTrace(Simulator(), capacity=0)


def test_records_executed_events_in_order():
    sim = Simulator()
    trace = EventTrace(sim)
    sim.after(1.0, named("a"))
    sim.after(2.0, named("b"))
    sim.run()
    assert trace.labels() == ["a", "b"]
    assert trace.times().tolist() == [1.0, 2.0]


def test_filter_limits_records():
    sim = Simulator()
    trace = EventTrace(sim, filter_fn=lambda h: "keep" in getattr(h.fn, "__qualname__", ""))
    sim.after(1.0, named("keep_this"))
    sim.after(2.0, named("drop_this"))
    sim.run()
    assert trace.labels() == ["keep_this"]


def test_ring_buffer_evicts_oldest():
    sim = Simulator()
    trace = EventTrace(sim, capacity=3)
    for i in range(6):
        sim.after(float(i + 1), named(f"e{i}"))
    sim.run()
    assert len(trace) == 3
    assert trace.dropped == 3
    assert trace.labels() == ["e3", "e4", "e5"]


def test_detach_stops_recording():
    sim = Simulator()
    trace = EventTrace(sim)
    sim.after(1.0, named("before"))
    sim.run()
    trace.detach()
    sim.after(1.0, named("after"))
    sim.run()
    assert trace.labels() == ["before"]


def test_attach_detach_idempotent():
    sim = Simulator()
    trace = EventTrace(sim)
    trace.attach()  # no-op
    trace.detach()
    trace.detach()  # no-op
    assert sim.trace is None


def test_chained_hooks_both_fire():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, h: seen.append(t)
    trace = EventTrace(sim)
    sim.after(1.0, named("x"))
    sim.run()
    assert seen == [1.0]
    assert trace.labels() == ["x"]
    trace.detach()
    assert sim.trace is not None  # original hook restored


def test_between_and_rate():
    sim = Simulator()
    trace = EventTrace(sim)
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.after(t, named(f"t{t}"))
    sim.run()
    assert len(trace.between(1.0, 3.0)) == 2
    assert trace.rate(window=2.0) == pytest.approx(1.5)  # {1.5, 2.5, 3.5} in [1.5, 3.5]
    with pytest.raises(ValueError):
        trace.rate(0.0)


def test_dump_renders():
    sim = Simulator()
    trace = EventTrace(sim, capacity=2)
    for i in range(4):
        sim.after(float(i + 1), named(f"e{i}"))
    sim.run()
    text = trace.dump()
    assert "e3" in text and "dropped" in text
