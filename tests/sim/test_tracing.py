"""Tests for the event tracing subsystem."""

import pytest

from repro.sim import EventTrace, Simulator


def named(label):
    def fn():
        pass

    fn.__qualname__ = label
    return fn


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventTrace(Simulator(), capacity=0)


def test_records_executed_events_in_order():
    sim = Simulator()
    trace = EventTrace(sim)
    sim.after(1.0, named("a"))
    sim.after(2.0, named("b"))
    sim.run()
    assert trace.labels() == ["a", "b"]
    assert trace.times().tolist() == [1.0, 2.0]


def test_filter_limits_records():
    sim = Simulator()
    trace = EventTrace(sim, filter_fn=lambda h: "keep" in getattr(h.fn, "__qualname__", ""))
    sim.after(1.0, named("keep_this"))
    sim.after(2.0, named("drop_this"))
    sim.run()
    assert trace.labels() == ["keep_this"]


def test_ring_buffer_evicts_oldest():
    sim = Simulator()
    trace = EventTrace(sim, capacity=3)
    for i in range(6):
        sim.after(float(i + 1), named(f"e{i}"))
    sim.run()
    assert len(trace) == 3
    assert trace.dropped == 3
    assert trace.labels() == ["e3", "e4", "e5"]


def test_detach_stops_recording():
    sim = Simulator()
    trace = EventTrace(sim)
    sim.after(1.0, named("before"))
    sim.run()
    trace.detach()
    sim.after(1.0, named("after"))
    sim.run()
    assert trace.labels() == ["before"]


def test_attach_detach_idempotent():
    sim = Simulator()
    trace = EventTrace(sim)
    trace.attach()  # no-op
    trace.detach()
    trace.detach()  # no-op
    assert sim.trace is None


def test_chained_hooks_both_fire():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, h: seen.append(t)
    trace = EventTrace(sim)
    sim.after(1.0, named("x"))
    sim.run()
    assert seen == [1.0]
    assert trace.labels() == ["x"]
    trace.detach()
    assert sim.trace is not None  # original hook restored


def test_between_and_rate():
    sim = Simulator()
    trace = EventTrace(sim)
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.after(t, named(f"t{t}"))
    sim.run()
    assert len(trace.between(1.0, 3.0)) == 2
    assert trace.rate(window=2.0) == pytest.approx(1.5)  # {1.5, 2.5, 3.5} in [1.5, 3.5]
    with pytest.raises(ValueError):
        trace.rate(0.0)


def test_filtered_counter():
    sim = Simulator()
    trace = EventTrace(sim, filter_fn=lambda h: "keep" in getattr(h.fn, "__qualname__", ""))
    sim.after(1.0, named("keep"))
    sim.after(2.0, named("skip"))
    sim.after(3.0, named("skip_too"))
    sim.run()
    assert trace.filtered == 2
    assert trace.dropped == 0


def test_rate_nan_when_eviction_reaches_into_window():
    sim = Simulator()
    trace = EventTrace(sim, capacity=2)
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.after(t, named(f"t{t}"))
    sim.run()
    # Window [1, 4] extends past the oldest retained record (t=3.0)
    # while two records were evicted: the count would undershoot.
    with pytest.warns(RuntimeWarning, match="undercount"):
        assert trace.rate(window=3.0) != trace.rate(window=3.0)  # nan != nan


def test_rate_trustworthy_despite_eviction_outside_window():
    sim = Simulator()
    trace = EventTrace(sim, capacity=2)
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.after(t, named(f"t{t}"))
    sim.run()
    # Window [3, 4] starts at the oldest retained record: nothing that
    # was evicted could have fallen inside it, so the rate is exact.
    assert trace.rate(window=1.0) == pytest.approx(2.0)


def test_rate_nan_when_filtering_dropped_events():
    sim = Simulator()
    trace = EventTrace(sim, filter_fn=lambda h: "keep" in getattr(h.fn, "__qualname__", ""))
    sim.after(1.0, named("skip"))
    sim.after(2.0, named("keep"))
    sim.run()
    with pytest.warns(RuntimeWarning):
        rate = trace.rate(window=2.0)
    assert rate != rate


def test_trace_capacity_is_not_quadratic():
    # Regression guard for the list.pop(0) eviction: a full ring must
    # keep evicting in O(1). 20k events over a capacity-16 ring finishes
    # instantly with a deque; the old list implementation was visibly
    # quadratic at this size.
    sim = Simulator()
    trace = EventTrace(sim, capacity=16)
    fn = named("e")
    for i in range(20_000):
        sim.after(float(i), fn)
    sim.run()
    assert len(trace) == 16
    assert trace.dropped == 20_000 - 16
    assert trace.labels()[-1] == "e"


def test_dump_renders():
    sim = Simulator()
    trace = EventTrace(sim, capacity=2)
    for i in range(4):
        sim.after(float(i + 1), named(f"e{i}"))
    sim.run()
    text = trace.dump()
    assert "e3" in text and "dropped" in text
