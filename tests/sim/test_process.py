"""Unit tests for generator processes."""

import pytest

from repro.sim import Process, Signal, Simulator
from repro.sim.process import ProcessInterrupt


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 1

    with pytest.raises(TypeError):
        Process(sim, not_a_generator)  # forgot to call


def test_sleep_advances_clock():
    sim = Simulator()
    marks = []

    def worker():
        marks.append(sim.now)
        yield 1.5
        marks.append(sim.now)
        yield 2.5
        marks.append(sim.now)

    Process(sim, worker())
    sim.run()
    assert marks == [0.0, 1.5, 4.0]


def test_process_return_value_becomes_signal_value():
    sim = Simulator()

    def worker():
        yield 1.0
        return "payload"

    p = Process(sim, worker())
    sim.run()
    assert p.ok and p.value == "payload"


def test_yield_signal_receives_value():
    sim = Simulator()
    sig = Signal(sim)
    got = []

    def worker():
        value = yield sig
        got.append(value)

    Process(sim, worker())
    sim.after(3.0, lambda: sig.succeed("hello"))
    sim.run()
    assert got == ["hello"]


def test_yield_failed_signal_raises_inside_process():
    sim = Simulator()
    sig = Signal(sim)
    caught = []

    def worker():
        try:
            yield sig
        except RuntimeError as error:
            caught.append(str(error))

    Process(sim, worker())
    sim.after(1.0, lambda: sig.fail(RuntimeError("bad")))
    sim.run()
    assert caught == ["bad"]


def test_uncaught_exception_fails_process():
    sim = Simulator()

    def worker():
        yield 1.0
        raise ValueError("kaput")

    p = Process(sim, worker())
    sim.run()
    assert p.triggered and isinstance(p.exception, ValueError)


def test_join_another_process():
    sim = Simulator()
    order = []

    def child():
        yield 2.0
        order.append(("child", sim.now))
        return 7

    def parent():
        result = yield Process(sim, child())
        order.append(("parent", sim.now, result))

    Process(sim, parent())
    sim.run()
    assert order == [("child", 2.0), ("parent", 2.0, 7)]


def test_interrupt_delivers_exception():
    sim = Simulator()
    events = []

    def worker():
        try:
            yield 100.0
        except ProcessInterrupt:
            events.append(("interrupted", sim.now))

    p = Process(sim, worker())
    sim.after(5.0, lambda: p.interrupt())
    sim.run()
    assert events == [("interrupted", 5.0)]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def worker():
        yield 1.0
        return "ok"

    p = Process(sim, worker())
    sim.run()
    p.interrupt()
    sim.run()
    assert p.value == "ok"


def test_bad_directive_fails_process():
    sim = Simulator()

    def worker():
        yield "not a directive"

    p = Process(sim, worker())
    sim.run()
    assert isinstance(p.exception, TypeError)


def test_negative_sleep_fails_process():
    sim = Simulator()

    def worker():
        yield -1.0

    p = Process(sim, worker())
    sim.run()
    assert isinstance(p.exception, ValueError)


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            log.append((name, sim.now))

    Process(sim, ticker("fast", 1.0))
    Process(sim, ticker("slow", 1.5))
    sim.run()
    # At t=3.0 both wake; "slow" scheduled its resume earlier (at t=1.5)
    # so it wins the deterministic (time, seq) tie-break.
    assert log == [
        ("fast", 1.0),
        ("slow", 1.5),
        ("fast", 2.0),
        ("slow", 3.0),
        ("fast", 3.0),
        ("slow", 4.5),
    ]
