"""Unit tests for signals and combinators."""

import pytest

from repro.sim import AllOf, AnyOf, Signal, SimulationError, Simulator


def test_signal_succeed_delivers_value():
    sim = Simulator()
    sig = Signal(sim)
    got = []
    sig.add_callback(lambda s: got.append(s.value))
    sig.succeed(42)
    assert got == [42]
    assert sig.ok


def test_callback_after_trigger_runs_immediately():
    sim = Simulator()
    sig = Signal(sim).succeed("v")
    got = []
    sig.add_callback(lambda s: got.append(s.value))
    assert got == ["v"]


def test_double_trigger_raises():
    sim = Simulator()
    sig = Signal(sim).succeed()
    with pytest.raises(SimulationError):
        sig.succeed()
    with pytest.raises(SimulationError):
        sig.fail(RuntimeError("x"))


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        Signal(sim).fail("not an exception")


def test_fail_sets_exception_not_ok():
    sim = Simulator()
    sig = Signal(sim)
    error = RuntimeError("boom")
    sig.fail(error)
    assert sig.triggered
    assert not sig.ok
    assert sig.exception is error


def test_succeed_later_fires_at_right_time():
    sim = Simulator()
    sig = Signal(sim)
    times = []
    sig.add_callback(lambda s: times.append(sim.now))
    sig.succeed_later(2.5, "late")
    sim.run()
    assert times == [2.5]
    assert sig.value == "late"


def test_all_of_collects_values_in_order():
    sim = Simulator()
    a, b, c = (Signal(sim) for _ in range(3))
    combined = AllOf(sim, [a, b, c])
    b.succeed(2)
    a.succeed(1)
    assert not combined.triggered
    c.succeed(3)
    assert combined.value == [1, 2, 3]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    combined = AllOf(sim, [])
    assert combined.triggered and combined.value == []


def test_all_of_fails_fast():
    sim = Simulator()
    a, b = Signal(sim), Signal(sim)
    combined = AllOf(sim, [a, b])
    error = ValueError("first failure")
    a.fail(error)
    assert combined.exception is error


def test_any_of_returns_first():
    sim = Simulator()
    a, b = Signal(sim), Signal(sim)
    first = AnyOf(sim, [a, b])
    b.succeed("bee")
    assert first.value == (1, "bee")
    # Later triggers are ignored.
    a.succeed("ay")
    assert first.value == (1, "bee")


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_any_of_with_pretriggered_child():
    sim = Simulator()
    a = Signal(sim).succeed("early")
    b = Signal(sim)
    first = AnyOf(sim, [a, b])
    assert first.value == (0, "early")
