"""Unit tests for deterministic named RNG substreams."""

import numpy as np
import pytest

from repro.sim import RngHub, substream_seed


def test_same_seed_same_name_reproduces():
    a = RngHub(7).stream("arrivals").random(16)
    b = RngHub(7).stream("arrivals").random(16)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    hub = RngHub(7)
    a = hub.stream("arrivals").random(16)
    b = hub.stream("service").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngHub(1).stream("x").random(16)
    b = RngHub(2).stream("x").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    hub = RngHub(3)
    assert hub.stream("s") is hub.stream("s")


def test_creation_order_does_not_matter():
    hub1 = RngHub(11)
    hub1.stream("a")
    first = hub1.stream("b").random(8)
    hub2 = RngHub(11)
    second = hub2.stream("b").random(8)  # "a" never created
    assert np.array_equal(first, second)


def test_fork_produces_disjoint_streams():
    hub = RngHub(5)
    child = hub.fork("point-0")
    a = hub.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic():
    a = RngHub(5).fork("p").stream("x").random(8)
    b = RngHub(5).fork("p").stream("x").random(8)
    assert np.array_equal(a, b)


def test_substream_seed_stable_value():
    # Pin the derivation so refactors cannot silently change every
    # experiment in the repo.
    assert substream_seed(0, "a") == substream_seed(0, "a")
    assert substream_seed(0, "a") != substream_seed(0, "b")
    assert 0 <= substream_seed(123, "stream") < 2**128


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngHub("42")
