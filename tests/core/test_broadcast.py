"""Tests for the broadcast policy."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.net import MessageKind
from tests.core.conftest import build_cluster


def test_interval_validation():
    with pytest.raises(ValueError):
        make_policy("broadcast", mean_interval=0.0)


def test_broadcast_messages_fan_out_to_all_clients():
    policy = make_policy("broadcast", mean_interval=0.02)
    cluster = build_cluster(policy, n_clients=3, n_requests=500, load=0.5)
    cluster.run()
    sent = policy.broadcasts_sent
    delivered = cluster.network.message_counts[MessageKind.BROADCAST]
    assert delivered == sent * 3  # one copy per subscribed client


def test_tables_track_announcements():
    policy = make_policy("broadcast", mean_interval=0.01)
    cluster = build_cluster(policy, n_requests=800, load=0.7)
    cluster.run()
    for client in cluster.clients:
        table = client.state["broadcast.table"]
        assert table.shape == (cluster.n_servers,)
        assert (table >= 0).all()


def test_high_frequency_approaches_ideal():
    """At very small intervals broadcast must be close to ideal; at very
    large intervals it must degrade badly (the Figure 3 shape)."""
    results = {}
    for label, interval in [("fast", 0.002), ("slow", 2.0)]:
        policy = make_policy("broadcast", mean_interval=interval)
        cluster = build_cluster(policy, n_requests=4000, load=0.9, seed=31)
        results[label] = np.nanmean(cluster.run().response_time)
    ideal = build_cluster(make_policy("ideal"), n_requests=4000, load=0.9, seed=31)
    ideal_mean = np.nanmean(ideal.run().response_time)
    assert results["fast"] < 2.0 * ideal_mean
    assert results["slow"] > 3.0 * results["fast"]


def _window_concentration(metrics, n_servers, window=50):
    """Mean per-window share of the most popular server (flocking metric)."""
    server_id = metrics.server_id
    fractions = []
    for i in range(0, len(server_id) - window, window):
        chunk = server_id[i : i + window]
        fractions.append(np.bincount(chunk, minlength=n_servers).max() / window)
    return float(np.mean(fractions))


def test_flocking_under_infrequent_broadcasts():
    """Between announcements all clients pile onto the perceived-minimum
    server (§2.2's flocking effect): short-window concentration far
    exceeds the random policy's."""
    policy = make_policy("broadcast", mean_interval=1.0)
    cluster = build_cluster(policy, n_servers=8, n_requests=4000, load=0.9, seed=41)
    flocked = _window_concentration(cluster.run(), 8)
    random_cluster = build_cluster(
        make_policy("random"), n_servers=8, n_requests=4000, load=0.9, seed=41
    )
    spread = _window_concentration(random_cluster.run(), 8)
    assert flocked > 2.0 * spread


def test_intervals_randomized_not_fixed():
    policy = make_policy("broadcast", mean_interval=0.05)
    cluster = build_cluster(policy, n_requests=1500, load=0.5)
    send_times = []
    # Wiretap: subscribe an extra listener; Message.send_time is the
    # publish instant regardless of delivery latency.
    policy._channel.subscribe(999, lambda m: send_times.append((m.send_time, m.src)))
    cluster.run()
    per_server = {}
    for t, src in send_times:
        per_server.setdefault(src, []).append(t)
    gaps = np.concatenate([np.diff(ts) for ts in per_server.values() if len(ts) > 2])
    assert gaps.std() > 0.005  # jittered, not a fixed period
    assert gaps.min() >= 0.025 - 1e-9
    assert gaps.max() <= 0.075 + 1e-9
