"""Tests for the centralized manager and stale-snapshot policies."""

import numpy as np

from repro.core import make_policy
from repro.net import MessageKind, PAPER_NET
from tests.core.conftest import build_cluster


def test_manager_poll_time_is_one_tcp_rtt():
    policy = make_policy("manager")
    cluster = build_cluster(policy, n_requests=400, load=0.5)
    metrics = cluster.run()
    assert np.allclose(metrics.poll_time, PAPER_NET.tcp_rtt_nosetup)


def test_manager_counts_drain_to_zero():
    policy = make_policy("manager")
    cluster = build_cluster(policy, n_requests=500, load=0.7)
    cluster.run()
    # Let the last completion notifications arrive.
    cluster.sim.run()
    assert policy.outstanding() == 0
    assert policy.queries_served == 500


def test_manager_message_kinds_accounted():
    policy = make_policy("manager")
    cluster = build_cluster(policy, n_requests=300, load=0.5)
    cluster.run()
    counts = cluster.network.message_counts
    assert counts[MessageKind.MANAGER_QUERY] == 300
    assert counts[MessageKind.MANAGER_REPLY] == 300
    assert counts[MessageKind.MANAGER_NOTIFY] >= 299  # last few may be in flight


def test_manager_near_ideal_performance():
    manager_mean = np.nanmean(
        build_cluster(make_policy("manager"), n_requests=6000, load=0.9, seed=37)
        .run()
        .response_time
    )
    ideal_mean = np.nanmean(
        build_cluster(make_policy("ideal"), n_requests=6000, load=0.9, seed=37)
        .run()
        .response_time
    )
    # Manager pays one TCP RTT and uses assignment counts; must be close.
    assert manager_mean < ideal_mean * 1.3 + PAPER_NET.tcp_rtt_nosetup


def test_manager_balances_exactly_under_light_load():
    policy = make_policy("manager")
    cluster = build_cluster(policy, n_servers=4, n_requests=800, load=0.2)
    metrics = cluster.run()
    counts = metrics.server_counts(4, warmup_fraction=0.0)
    assert counts.max() - counts.min() < 800 * 0.15


def test_stale_jsq_refreshes_counted():
    policy = make_policy("stale_jsq", update_interval=0.01)
    cluster = build_cluster(policy, n_requests=800, load=0.7)
    cluster.run()
    assert policy.refreshes > 10


def test_stale_jsq_fresh_beats_stale():
    fresh_mean = np.nanmean(
        build_cluster(
            make_policy("stale_jsq", update_interval=0.001),
            n_requests=5000, load=0.9, seed=43,
        ).run().response_time
    )
    stale_mean = np.nanmean(
        build_cluster(
            make_policy("stale_jsq", update_interval=1.0),
            n_requests=5000, load=0.9, seed=43,
        ).run().response_time
    )
    assert fresh_mean < stale_mean


def test_stale_jsq_local_increment_mitigates_flocking():
    """Mitzenmacher 2000: adding local corrections to stale info helps."""
    plain = np.nanmean(
        build_cluster(
            make_policy("stale_jsq", update_interval=0.2),
            n_requests=5000, load=0.9, seed=47,
        ).run().response_time
    )
    corrected = np.nanmean(
        build_cluster(
            make_policy("stale_jsq", update_interval=0.2, local_increment=True),
            n_requests=5000, load=0.9, seed=47,
        ).run().response_time
    )
    assert corrected < plain


def test_describe_strings():
    assert make_policy("stale_jsq", update_interval=0.05).describe() == "stale_jsq(50ms)"
    assert (
        make_policy("stale_jsq", update_interval=0.05, local_increment=True).describe()
        == "stale_jsq(50ms)+local"
    )
    assert make_policy("polling", poll_size=3).describe() == "polling(d=3)"
    assert (
        make_policy("polling", poll_size=3, discard_slow=True).describe()
        == "polling(d=3)+discard"
    )
    assert make_policy("broadcast", mean_interval=0.1).describe() == "broadcast(100ms)"
