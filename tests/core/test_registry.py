"""Unit tests for the policy registry."""

import pytest

from repro.core import (
    BroadcastPolicy,
    IdealOracle,
    RandomPollingPolicy,
    available_policies,
    make_policy,
)


def test_all_paper_policies_registered():
    names = available_policies()
    for required in ("random", "broadcast", "polling", "ideal", "manager"):
        assert required in names


def test_extensions_registered():
    names = available_policies()
    for extra in ("round_robin", "stale_jsq", "least_connections", "jsq"):
        assert extra in names


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        make_policy("nonexistent")


def test_params_forwarded():
    policy = make_policy("polling", poll_size=4, discard_slow=True)
    assert isinstance(policy, RandomPollingPolicy)
    assert policy.poll_size == 4
    assert policy.discard_slow


def test_jsq_alias_is_ideal():
    assert isinstance(make_policy("jsq"), IdealOracle)


def test_broadcast_requires_interval():
    with pytest.raises(TypeError):
        make_policy("broadcast")
    assert isinstance(make_policy("broadcast", mean_interval=0.1), BroadcastPolicy)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        make_policy("polling", poll_size=0)
    with pytest.raises(ValueError):
        make_policy("broadcast", mean_interval=-1.0)
    with pytest.raises(ValueError):
        make_policy("stale_jsq", update_interval=0.0)
    with pytest.raises(ValueError):
        make_policy("polling", poll_size=2, discard_slow=True, discard_timeout=0.0)
