"""Tests for the random polling policy (basic + discard-slow-polls)."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.net import MessageKind, PAPER_NET
from repro.prototype import PollDelayModel, PrototypeOverheadModel
from tests.core.conftest import build_cluster


def test_poll_size_validation():
    with pytest.raises(ValueError):
        make_policy("polling", poll_size=0)


def test_polls_sent_equals_d_per_request():
    policy = make_policy("polling", poll_size=3)
    cluster = build_cluster(policy, n_requests=500, load=0.5)
    cluster.run()
    assert policy.polls_sent == 3 * 500
    assert cluster.network.message_counts[MessageKind.POLL] == 1500
    assert cluster.network.message_counts[MessageKind.POLL_REPLY] == 1500


def test_poll_size_capped_at_candidate_count():
    policy = make_policy("polling", poll_size=50)
    cluster = build_cluster(policy, n_servers=4, n_requests=300, load=0.5)
    cluster.run()
    assert policy.polls_sent == 4 * 300


def test_basic_mode_waits_for_all_replies():
    """Simulation model: poll time is exactly one UDP RTT (all replies
    arrive together since latency is constant)."""
    policy = make_policy("polling", poll_size=4)
    cluster = build_cluster(policy, n_requests=300, load=0.5)
    metrics = cluster.run()
    assert np.allclose(metrics.poll_time, PAPER_NET.udp_rtt)


def test_polling_targets_are_distinct():
    """No server is polled twice for the same request."""
    policy = make_policy("polling", poll_size=3)
    cluster = build_cluster(policy, n_requests=400, load=0.5)
    per_request_targets = []
    original = cluster.poll_server

    def tapped(client, server_id, on_reply):
        per_request_targets.append(server_id)
        original(client, server_id, on_reply)

    cluster.poll_server = tapped
    cluster.run()
    groups = [per_request_targets[i : i + 3] for i in range(0, len(per_request_targets), 3)]
    assert all(len(set(group)) == 3 for group in groups)


def test_chooses_min_of_polled():
    policy = make_policy("polling", poll_size=8)  # polls all 8 servers
    cluster = build_cluster(policy, n_requests=1200, load=0.9, seed=13)
    replies_log = {}
    original_dispatch = cluster.dispatch

    def tapped(client, request, server_id):
        # With d == n_servers the chosen one must be a global min at
        # poll-arrival time; approximate check: its queue length at
        # dispatch is never above every other server's.
        lengths = [s.queue_length for s in cluster.servers]
        replies_log[request.index] = (lengths[server_id], min(lengths))
        original_dispatch(client, request, server_id)

    cluster.dispatch = tapped
    metrics = cluster.run()
    del metrics
    # Between poll and dispatch ~145us passes, so allow small slack:
    violations = sum(1 for chosen, mn in replies_log.values() if chosen > mn + 2)
    assert violations / len(replies_log) < 0.02


def test_poll2_beats_random_significantly():
    """Mitzenmacher/paper: d=2 is an exponential improvement."""
    random_run = build_cluster(make_policy("random"), n_requests=6000, load=0.9, seed=17)
    poll2_run = build_cluster(
        make_policy("polling", poll_size=2), n_requests=6000, load=0.9, seed=17
    )
    random_mean = np.nanmean(random_run.run().response_time)
    poll2_mean = np.nanmean(poll2_run.run().response_time)
    assert poll2_mean < 0.6 * random_mean


def test_poll3_close_to_poll8_in_simulation():
    """Paper Figure 4: beyond d=2-3 additional polls add little (pure
    simulation, no overheads)."""
    means = {}
    for d in (3, 8):
        cluster = build_cluster(
            make_policy("polling", poll_size=d), n_requests=8000, load=0.9, seed=19
        )
        means[d] = np.nanmean(cluster.run().response_time)
    assert means[8] < means[3] * 1.15


# ----------------------------------------------------------------------
# discard-slow-polls
# ----------------------------------------------------------------------

def proto_cluster(policy, seed=23, n_requests=1500, load=0.9):
    overhead = PrototypeOverheadModel()
    return build_cluster(policy, n_requests=n_requests, load=load, seed=seed,
                         overhead=overhead)


def test_discard_uses_constants_default_timeout():
    policy = make_policy("polling", poll_size=3, discard_slow=True)
    cluster = build_cluster(policy, n_requests=100, load=0.5)
    del cluster
    assert policy.discard_timeout == PAPER_NET.discard_timeout


def test_discard_caps_poll_time_near_timeout():
    policy = make_policy("polling", poll_size=3, discard_slow=True)
    cluster = proto_cluster(policy)
    metrics = cluster.run()
    # Poll time can exceed the 10ms cutoff only in the zero-reply corner
    # (wait-for-first); the bulk must be capped.
    frac_over = (metrics.poll_time > PAPER_NET.discard_timeout * 1.05).mean()
    assert frac_over < 0.01


def test_basic_poll_time_unbounded_under_overheads():
    policy = make_policy("polling", poll_size=3)
    cluster = proto_cluster(policy)
    metrics = cluster.run()
    assert (metrics.poll_time > PAPER_NET.discard_timeout).mean() > 0.05


def test_discard_reduces_mean_poll_time():
    basic = make_policy("polling", poll_size=3)
    basic_metrics = proto_cluster(basic).run()
    discard = make_policy("polling", poll_size=3, discard_slow=True)
    discard_metrics = proto_cluster(discard).run()
    assert np.nanmean(discard_metrics.poll_time) < 0.6 * np.nanmean(basic_metrics.poll_time)
    assert discard.timeouts_fired > 0
    assert discard.replies_discarded > 0


def test_discard_every_request_still_dispatches():
    policy = make_policy("polling", poll_size=8, discard_slow=True)
    cluster = proto_cluster(policy, n_requests=800)
    metrics = cluster.run()
    assert np.isfinite(metrics.response_time).all()


def test_counters_consistent():
    policy = make_policy("polling", poll_size=3, discard_slow=True)
    cluster = proto_cluster(policy, n_requests=600)
    cluster.run()
    assert policy.replies_received + policy.replies_discarded == policy.polls_sent


def test_zero_reply_timeout_waits_for_first():
    """Force huge reply delays: timeout fires with no replies; the first
    reply must still dispatch the request (never dispatch blind)."""
    slow = PrototypeOverheadModel(
        poll_delay=PollDelayModel(
            fast_weight=0.0, one_quantum_weight=0.0, multi_quantum_weight=1.0,
            quantum=20e-3, multi_tail_mean=1e-3,
        )
    )
    policy = make_policy("polling", poll_size=2, discard_slow=True)
    cluster = build_cluster(policy, n_requests=300, load=0.9, seed=29, overhead=slow)
    metrics = cluster.run()
    assert np.isfinite(metrics.response_time).all()
    busy_polls = metrics.poll_time > PAPER_NET.discard_timeout
    assert busy_polls.any()  # the wait-for-first corner was exercised
