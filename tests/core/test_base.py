"""Unit tests for the LoadBalancer base and helpers."""

import numpy as np
import pytest

from repro.cluster import ServiceCluster
from repro.core import LoadBalancer, RandomPolicy, choose_min_with_ties
from repro.core.base import NoCandidatesError


def test_choose_min_single():
    rng = np.random.default_rng(0)
    assert choose_min_with_ties([5], [2.0], rng) == 5


def test_choose_min_unique_minimum():
    rng = np.random.default_rng(0)
    assert choose_min_with_ties([1, 2, 3], [5.0, 1.0, 9.0], rng) == 2


def test_choose_min_ties_random_uniform():
    rng = np.random.default_rng(0)
    picks = [choose_min_with_ties([1, 2, 3], [0.0, 0.0, 1.0], rng) for _ in range(2000)]
    ones = picks.count(1)
    assert picks.count(3) == 0
    assert 800 < ones < 1200  # roughly uniform over the two ties


def test_choose_min_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(NoCandidatesError):
        choose_min_with_ties([], [], rng)
    with pytest.raises(ValueError):
        choose_min_with_ties([1, 2], [1.0], rng)


def test_double_bind_rejected():
    policy = RandomPolicy()
    ServiceCluster(n_servers=2, policy=policy)
    with pytest.raises(RuntimeError):
        ServiceCluster(n_servers=2, policy=policy)


def test_describe_default():
    assert RandomPolicy().describe() == "random"


def test_abstract_select_required():
    class Incomplete(LoadBalancer):
        name = "incomplete"

    with pytest.raises(TypeError):
        Incomplete()
