"""Tests for random, round-robin, ideal, and least-connections."""

import numpy as np

from repro.core import make_policy
from tests.core.conftest import build_cluster


def test_random_spreads_load_roughly_uniformly():
    cluster = build_cluster(make_policy("random"), n_requests=4000, load=0.3)
    metrics = cluster.run()
    counts = metrics.server_counts(cluster.n_servers, warmup_fraction=0.0)
    expected = 4000 / cluster.n_servers
    assert counts.min() > expected * 0.7
    assert counts.max() < expected * 1.3


def test_round_robin_exactly_uniform_single_client():
    cluster = build_cluster(
        make_policy("round_robin"), n_clients=1, n_servers=4, n_requests=400, load=0.2
    )
    metrics = cluster.run()
    counts = metrics.server_counts(4, warmup_fraction=0.0)
    assert (counts == 100).all()


def test_round_robin_per_client_counters_independent():
    cluster = build_cluster(
        make_policy("round_robin"), n_clients=3, n_servers=4, n_requests=1200, load=0.2
    )
    metrics = cluster.run()
    counts = metrics.server_counts(4, warmup_fraction=0.0)
    assert (counts == 300).all()


def test_ideal_never_picks_longer_queue_when_shorter_exists():
    """Spot-check the oracle invariant via a custom wiretap."""
    policy = make_policy("ideal")
    cluster = build_cluster(policy, n_requests=1500, load=0.9)
    chosen_vs_min = []
    original_dispatch = cluster.dispatch

    def tapped(client, request, server_id):
        lengths = [s.queue_length for s in cluster.servers]
        chosen_vs_min.append((lengths[server_id], min(lengths)))
        original_dispatch(client, request, server_id)

    cluster.dispatch = tapped
    cluster.run()
    assert all(chosen == minimum for chosen, minimum in chosen_vs_min)


def test_ideal_weighted_prefers_fast_servers():
    fast = [2.0, 1.0, 1.0, 1.0]
    plain = build_cluster(
        make_policy("ideal"), n_servers=4, server_speeds=fast, n_requests=4000, load=0.8
    )
    plain_counts = plain.run().server_counts(4, warmup_fraction=0.0)
    weighted = build_cluster(
        make_policy("ideal", weight_by_speed=True),
        n_servers=4,
        server_speeds=fast,
        n_requests=4000,
        load=0.8,
    )
    weighted_counts = weighted.run().server_counts(4, warmup_fraction=0.0)
    # The weighted oracle should push more work to the 2x server.
    assert weighted_counts[0] > plain_counts[0]


def test_least_connections_beats_random_at_high_load():
    random_run = build_cluster(make_policy("random"), n_requests=6000, load=0.9, seed=21)
    lc_run = build_cluster(
        make_policy("least_connections"), n_requests=6000, load=0.9, seed=21
    )
    random_mean = np.nanmean(random_run.run().response_time)
    lc_mean = np.nanmean(lc_run.run().response_time)
    assert lc_mean < random_mean


def test_least_connections_counts_return_to_zero():
    policy = make_policy("least_connections")
    cluster = build_cluster(policy, n_requests=500, load=0.5)
    cluster.run()
    for client in cluster.clients:
        counts = client.state["least_connections.counts"]
        assert (counts == 0).all()


def test_ideal_describe_variants():
    assert make_policy("ideal").describe() == "ideal"
    assert make_policy("ideal", weight_by_speed=True).describe() == "ideal(weighted)"
