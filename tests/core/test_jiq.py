"""Tests for the Join-Idle-Queue extension policy."""

import numpy as np

from repro.core import make_policy
from repro.net import MessageKind
from tests.core.conftest import build_cluster


def test_idle_reports_flow_and_counters_consistent():
    policy = make_policy("jiq")
    cluster = build_cluster(policy, n_requests=2000, load=0.6)
    cluster.run()
    assert policy.idle_reports_sent > 0
    assert policy.idle_hits + policy.random_fallbacks == 2000
    assert cluster.network.message_counts[MessageKind.OTHER] == policy.idle_reports_sent


def test_jiq_mostly_idle_hits_at_low_load():
    policy = make_policy("jiq")
    cluster = build_cluster(policy, n_requests=3000, load=0.2)
    cluster.run()
    assert policy.idle_hits > 0.7 * 3000


def test_jiq_beats_random_at_moderate_load():
    jiq_metrics = build_cluster(make_policy("jiq"), n_requests=6000, load=0.8,
                                seed=53).run()
    random_metrics = build_cluster(make_policy("random"), n_requests=6000, load=0.8,
                                   seed=53).run()
    assert np.nanmean(jiq_metrics.response_time) < 0.8 * np.nanmean(
        random_metrics.response_time
    )


def test_jiq_cheap_messaging():
    """At most one control message per request (vs 2d for polling)."""
    policy = make_policy("jiq")
    cluster = build_cluster(policy, n_requests=2000, load=0.7)
    cluster.run()
    assert policy.idle_reports_sent <= 2000 + cluster.n_servers


def test_jiq_dispatches_every_request():
    policy = make_policy("jiq")
    cluster = build_cluster(policy, n_requests=1500, load=0.9)
    metrics = cluster.run()
    assert np.isfinite(metrics.response_time).all()


def test_jiq_high_load_falls_back_to_random():
    """With few idle moments, the fallback path dominates but works."""
    policy = make_policy("jiq")
    cluster = build_cluster(policy, n_requests=3000, load=0.95)
    cluster.run()
    assert policy.random_fallbacks > 0.2 * 3000
