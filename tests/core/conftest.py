"""Shared fixtures for policy tests."""

import numpy as np
import pytest

from repro.cluster import ServiceCluster


def build_cluster(policy, n_servers=8, n_clients=3, n_requests=2000, load=0.8,
                  mean_service=0.01, seed=11, **kwargs):
    """A small cluster with an exponential workload at the given load."""
    cluster = ServiceCluster(
        n_servers=n_servers, policy=policy, seed=seed, n_clients=n_clients, **kwargs
    )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_service / (n_servers * load), n_requests)
    services = rng.exponential(mean_service, n_requests)
    cluster.load_workload(gaps, services)
    return cluster


@pytest.fixture
def small_cluster_factory():
    return build_cluster
