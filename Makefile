# Convenience targets for the reproduction repo.

PYTHON ?= python

.PHONY: install test test-fast bench bench-quick bench-smoke scale-smoke chaos-smoke telemetry-smoke resilience-smoke overload-smoke autoscale-smoke scenario-smoke fuzz-smoke serve-smoke examples figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.25 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI smoke: tier-1 tests, a ~30s quick figure bench (exercising the
# sweep engine + result cache), and the engine microbenchmarks recorded
# to BENCH_engine.json (pytest-benchmark) + BENCH_engines.json (the
# schema-versioned perf trajectory). The trailing validate-bench step
# exits nonzero when either artifact is missing, empty, or
# schema-invalid, so a silently-broken bench run fails the smoke.
bench-smoke:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m repro fig3 --quick
	$(PYTHON) -m repro parity --quick
	REPRO_BENCH_SCALE=0.25 $(PYTHON) -m pytest benchmarks/bench_engine_throughput.py \
		--benchmark-only --benchmark-json=BENCH_engine.json -q
	$(PYTHON) -m repro validate-bench \
		--bench-file BENCH_engine.json --bench-file BENCH_engines.json

# Large-N fast-path smoke (<60s): one 1k-server fastpath cell per
# headline policy plus the mean-field cross-check, gated against the
# committed speedup baseline (fails on >25% regression or a sub-10x
# fast-vs-heap speedup on random/broadcast).
scale-smoke:
	$(PYTHON) -m repro scale --quick --seed 0 \
		--check-against benchmarks/baselines/BENCH_scale.json
	$(PYTHON) -m repro validate-bench --bench-file BENCH_scale.json

# Tiny fixed-seed chaos campaign; the second invocation must be served
# entirely from the result cache with bit-identical output.
chaos-smoke:
	$(PYTHON) -m repro chaos --quick --seed 0
	$(PYTHON) -m repro chaos --quick --seed 0

# Tiny telemetry-on run; the exported spans.jsonl/series.csv are
# re-read and validated against the schema by the trace command itself.
telemetry-smoke:
	$(PYTHON) -m repro trace --quick --seed 0 --export-dir .telemetry-smoke

# Tiny naive-vs-hardened reliability comparison under identical fault
# schedules; the second invocation must be served from the result cache.
resilience-smoke:
	$(PYTHON) -m repro resilience --quick --seed 0
	$(PYTHON) -m repro resilience --quick --seed 0

# Tiny static-vs-adaptive overload campaign under identical arrival
# schedules; the second invocation must be served from the result cache.
overload-smoke:
	$(PYTHON) -m repro overload --quick --seed 0
	$(PYTHON) -m repro overload --quick --seed 0

# Tiny static-vs-autoscaled campaign behind the dispatcher tier (incl.
# a dispatcher crash-storm fault axis); the second invocation must be
# served from the result cache.
autoscale-smoke:
	$(PYTHON) -m repro autoscale --quick --seed 0
	$(PYTHON) -m repro autoscale --quick --seed 0

# Quick composed scenario (<60s): validates the builtin spec, then runs
# the trimmed grid — chaos + hardened reliability + overload control +
# one trace-replay workload across two cluster scales; the second
# invocation must be served entirely from the result cache.
scenario-smoke:
	$(PYTHON) -m repro scenario --quick --validate
	$(PYTHON) -m repro scenario --quick --seed 0
	$(PYTHON) -m repro scenario --quick --seed 0

# Invariant-oracle smoke (<90s): validate the committed reproducer
# corpus, replay it on both engines, then run 100 fuzzer-generated
# fault schedules under the oracle (exits nonzero on any violation,
# deadlock, or cross-engine divergence; shrunk reproducers land in
# .fuzz-findings/ for triage).
fuzz-smoke:
	$(PYTHON) -m repro fuzz --validate
	for spec in tests/verify/corpus/*.json; do \
		$(PYTHON) -m repro fuzz --replay $$spec || exit 1; done
	$(PYTHON) -m repro fuzz --seed 0 --budget 100

# Live loopback smoke (<60s): boots a standalone server node for a
# couple of seconds, then runs the quick sim-vs-real poll-size ladder —
# real asyncio UDP servers + client agents over loopback, spin-mode
# service work, 240 requests per poll size. Wall-clock latencies are
# machine-dependent so there is no latency assertion here: completing
# every request is the gate, and the hard timeouts catch a hung event
# loop (the ladder itself enforces zero unexpected failures).
serve-smoke:
	timeout -k 5 20 $(PYTHON) -m repro serve --port 0 --time-limit 2
	timeout -k 10 55 $(PYTHON) -m repro drive --quick --seed 0

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/search_engine_trace.py
	$(PYTHON) examples/photo_album_cluster.py
	$(PYTHON) examples/multitier_service.py
	$(PYTHON) examples/failure_resilience.py

figures:
	$(PYTHON) -m repro table1
	$(PYTHON) -m repro fig2
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro fig4
	$(PYTHON) -m repro fig6
	$(PYTHON) -m repro table2
	$(PYTHON) -m repro profile
	$(PYTHON) -m repro messages

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/output build *.egg-info src/*.egg-info
	rm -rf .repro-cache BENCH_engine.json BENCH_engines.json BENCH_scale.json .telemetry-smoke .fuzz-findings
	find . -name __pycache__ -type d -exec rm -rf {} +
