"""Cluster substrate: nodes, services, availability, failures.

This models the inside of a Neptune-style service cluster (paper §3.1):
a flat architecture in which any node can act as an internal server
and/or client. Servers hold a FIFO request queue and a worker pool;
clients discover servers through the service availability subsystem
(publish/subscribe channel with soft state) and choose one through a
load balancing policy (:mod:`repro.core`).

:class:`~repro.cluster.system.ServiceCluster` wires everything together
and runs the request lifecycle; it is also the *policy context* object
handed to load balancers.
"""

from repro.cluster.app import (
    ApplicationCluster,
    AppNode,
    AppRequest,
    call,
    compute,
)
from repro.cluster.request import Request
from repro.cluster.server import ServerNode
from repro.cluster.client import ClientNode
from repro.cluster.service import PartitionMap, ServiceSpec
from repro.cluster.availability import (
    AvailabilityChannel,
    ServiceMappingTable,
    ServicePublisher,
)
from repro.cluster.failures import (
    ChaosInjector,
    ChaosSpec,
    FailureInjector,
    resilience_counters,
)
from repro.cluster.reliability import (
    CircuitBreaker,
    ReliabilityEngine,
    ReliabilityPolicy,
)
from repro.cluster.overload import OverloadController, OverloadPolicy
from repro.cluster.dispatcher import Dispatcher, DispatcherPolicy, DispatcherTier
from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.system import ClusterMetrics, ServiceCluster

__all__ = [
    "AppNode",
    "AppRequest",
    "ApplicationCluster",
    "AvailabilityChannel",
    "ClientNode",
    "call",
    "compute",
    "ChaosInjector",
    "ChaosSpec",
    "ClusterMetrics",
    "FailureInjector",
    "resilience_counters",
    "CircuitBreaker",
    "Autoscaler",
    "AutoscalerPolicy",
    "Dispatcher",
    "DispatcherPolicy",
    "DispatcherTier",
    "OverloadController",
    "OverloadPolicy",
    "PartitionMap",
    "ReliabilityEngine",
    "ReliabilityPolicy",
    "Request",
    "ServerNode",
    "ServiceCluster",
    "ServiceMappingTable",
    "ServicePublisher",
    "ServiceSpec",
]
