"""Service specifications, partitioning, and replica placement.

Neptune (paper §3.1 and Figure 1) aggregates *partitioned, replicated*
services: e.g. a photo album service over an image store partitioned in
two groups, each group replicated on several nodes. A service access is
"fulfilled exclusively on one data partition", so the load balancer's
candidate set is the replica group of the partition being accessed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceSpec", "PartitionMap"]


@dataclass(frozen=True)
class ServiceSpec:
    """A partitionable, replicated service.

    ``n_partitions`` data partitions, each hosted on ``replication``
    nodes. ``n_partitions=1`` describes a fully replicated service (like
    the paper's discussion-group example).
    """

    name: str
    n_partitions: int = 1
    replication: int = 1

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError(f"n_partitions must be >= 1, got {self.n_partitions}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")


class PartitionMap:
    """Placement of (service, partition) replica groups onto nodes."""

    def __init__(self) -> None:
        self._placement: dict[tuple[str, int], list[int]] = {}

    def place(self, spec: ServiceSpec, node_ids: list[int]) -> None:
        """Assign replica groups round-robin over ``node_ids``.

        Partition ``p`` of the service lands on ``replication``
        consecutive nodes starting at offset ``p * replication`` (mod
        pool size), mirroring Figure 1's striped layout. Raises if the
        pool is smaller than one replica group.
        """
        if len(node_ids) < spec.replication:
            raise ValueError(
                f"{spec.name}: replication {spec.replication} exceeds pool "
                f"of {len(node_ids)} nodes"
            )
        pool = len(node_ids)
        for partition in range(spec.n_partitions):
            start = (partition * spec.replication) % pool
            group = [node_ids[(start + r) % pool] for r in range(spec.replication)]
            self._placement[(spec.name, partition)] = group

    def assign(self, service: str, partition: int, node_ids: list[int]) -> None:
        """Explicitly assign a replica group."""
        if not node_ids:
            raise ValueError("replica group cannot be empty")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError(f"duplicate nodes in replica group: {node_ids}")
        self._placement[(service, partition)] = list(node_ids)

    def replicas(self, service: str, partition: int = 0) -> list[int]:
        """Replica node ids hosting ``(service, partition)``."""
        try:
            return list(self._placement[(service, partition)])
        except KeyError:
            raise KeyError(f"no placement for {service!r} partition {partition}") from None

    def services(self) -> list[str]:
        return sorted({service for service, _ in self._placement})

    def partitions(self, service: str) -> list[int]:
        partitions = sorted(p for s, p in self._placement if s == service)
        if not partitions:
            raise KeyError(f"unknown service {service!r}")
        return partitions

    def nodes_hosting(self, node_id: int) -> list[tuple[str, int]]:
        """All (service, partition) pairs hosted on ``node_id``."""
        return sorted(
            key for key, group in self._placement.items() if node_id in group
        )
