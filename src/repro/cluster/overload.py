"""Server-side overload control: adaptive admission + graceful degradation.

The paper's admission story is explicitly out of scope ("system
throughput is tightly related to the admission control", §2), and the
cluster's only defense past saturation is the static ``server_max_queue``
bound — which silently drops work while the client-side recovery
machinery (timeouts, retries, hedges) *amplifies* offered load during
overload. This module is the server-side counterpart to the
client-side reliability layer (:mod:`repro.cluster.reliability`), and it
mirrors that module's shape exactly:

- :class:`OverloadPolicy` — a frozen, JSON-native value object carried
  by ``SimulationConfig.overload_params`` (cache-key aware);
- :class:`OverloadController` — the runtime state machine, owned
  per-:class:`~repro.cluster.server.ServerNode` (``server.overload``,
  ``None`` when the subsystem is off — the same guard pattern as
  ``cluster.telemetry`` / ``cluster.reliability``).

Mechanisms (DESIGN.md §12):

- **adaptive admission** — CoDel-style shedding: the controller tracks
  an EWMA of observed service durations and estimates the queueing
  delay a new arrival would see as ``queue_length × ewma / workers``.
  When the estimate stays above ``sojourn_target`` for longer than
  ``interval``, the server enters the *shedding* state and rejects
  arrivals; the first estimate at or below the target exits it. This
  composes with (runs after) the static ``max_queue`` bound.
- **shed jitter** — while shedding, each would-be-shed arrival is
  admitted anyway with probability ``shed_jitter`` (probe traffic that
  lets clients observe recovery early). Draws come only from the named
  substream ``overload.shed.<node_id>`` and only while shedding, so
  disabled runs make no draws at all.
- **load-aware availability withdrawal** — after ``withdraw_after``
  seconds of sustained shedding the server stops publishing on the
  soft-state availability channel (broadcast/polling clients route
  around it as the TTL ages out its entry) and republishes on recovery.

Everything is **off by default**: a cluster built without an
:class:`OverloadPolicy` (or with the all-default policy) takes exactly
the pre-existing code paths — no controller, no extra messages, no RNG
draws — so paper-reproduction runs stay bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.request import Request
    from repro.sim.engine import Simulator

__all__ = ["OverloadPolicy", "OverloadController"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Declarative overload-control knobs (all JSON-native scalars).

    Like :class:`~repro.cluster.reliability.ReliabilityPolicy`, the
    policy is a plain value object so it can live inside a
    :class:`~repro.experiments.config.SimulationConfig`
    (``overload_params``) and participate in the content-addressed
    result cache. The default instance disables the subsystem.

    - ``sojourn_target`` — estimated queueing delay (seconds) above
      which the server begins considering itself overloaded; ``None``
      disables the whole subsystem.
    - ``interval`` — how long the estimate must stay above the target
      before shedding starts (CoDel's interval: short bursts are
      absorbed, sustained overload is shed).
    - ``ewma_alpha`` — smoothing factor for the observed-service-time
      EWMA feeding the delay estimate.
    - ``shed_jitter`` — probability that a would-be-shed request is
      admitted anyway (probe traffic; 0 = deterministic shedding).
    - ``fast_reject`` — send an immediate REJECT NACK over the
      transport for every rejection (static bound included) instead of
      leaving the client to burn its timeout budget.
    - ``withdraw_after`` — seconds of sustained shedding after which
      the server withdraws from the availability channel; ``None``
      disables withdrawal.
    """

    sojourn_target: Optional[float] = None
    interval: float = 0.1
    ewma_alpha: float = 0.2
    shed_jitter: float = 0.0
    fast_reject: bool = True
    withdraw_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sojourn_target is not None and self.sojourn_target <= 0:
            raise ValueError(
                f"sojourn_target must be > 0 or None, got {self.sojourn_target}"
            )
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0.0 <= self.shed_jitter < 1.0:
            raise ValueError(
                f"shed_jitter must be in [0, 1), got {self.shed_jitter}"
            )
        if self.withdraw_after is not None and self.withdraw_after < 0:
            raise ValueError(
                f"withdraw_after must be >= 0 or None, got {self.withdraw_after}"
            )

    @property
    def enabled(self) -> bool:
        """True when the controller should be installed at all."""
        return self.sojourn_target is not None

    @classmethod
    def field_names(cls) -> frozenset:
        """The set of knob names (used to validate config dicts)."""
        return frozenset(f.name for f in fields(cls))


class OverloadController:
    """Per-server admission state machine for one :class:`OverloadPolicy`.

    Owned by a :class:`~repro.cluster.server.ServerNode` as
    ``server.overload`` (``None`` when the subsystem is off). The server
    consults :meth:`admit` for every arrival that passed the static
    ``max_queue`` bound and reports every service completion through
    :meth:`observe_completion`; the completion path doubles as the
    recovery detector, so a withdrawn server that clients route around
    still rejoins once its backlog drains.
    """

    __slots__ = (
        "policy",
        "sim",
        "workers",
        "rng",
        "on_withdraw",
        "on_rejoin",
        "ewma_service",
        "shedding",
        "withdrawn",
        "_above_since",
        "shed_count",
        "jitter_admits",
        "withdrawals",
        "rejoins",
    )

    def __init__(
        self,
        policy: OverloadPolicy,
        sim: "Simulator",
        workers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        if not policy.enabled:
            raise ValueError("OverloadController requires an enabled policy")
        if policy.shed_jitter > 0.0 and rng is None:
            raise ValueError("shed_jitter > 0 requires an rng substream")
        self.policy = policy
        self.sim = sim
        self.workers = workers
        self.rng = rng
        #: wired by the cluster to the server's availability publisher
        #: (``None`` when the availability subsystem is off)
        self.on_withdraw: Optional[Callable[[], None]] = None
        self.on_rejoin: Optional[Callable[[], None]] = None
        #: EWMA of observed service durations; 0 until the first
        #: completion (the estimator admits everything while cold)
        self.ewma_service = 0.0
        #: True while the server is actively rejecting arrivals
        self.shedding = False
        #: True while withdrawn from the availability channel
        self.withdrawn = False
        #: time the delay estimate first exceeded the target (None when
        #: at or below it)
        self._above_since: Optional[float] = None
        self.shed_count = 0
        self.jitter_admits = 0
        self.withdrawals = 0
        self.rejoins = 0

    # ------------------------------------------------------------------
    def estimated_delay(self, queue_length: int) -> float:
        """Queueing delay a new arrival would see, per the estimator."""
        return queue_length * self.ewma_service / self.workers

    def admit(self, queue_length: int) -> bool:
        """Admission verdict for an arrival seeing ``queue_length``."""
        target = self.policy.sojourn_target
        assert target is not None
        if self.estimated_delay(queue_length) <= target:
            self._recover()
            return True
        now = self.sim.now
        if self._above_since is None:
            self._above_since = now
        if not self.shedding:
            if now - self._above_since < self.policy.interval:
                return True
            self.shedding = True
        withdraw_after = self.policy.withdraw_after
        if (
            withdraw_after is not None
            and not self.withdrawn
            and now - self._above_since >= self.policy.interval + withdraw_after
        ):
            self.withdrawn = True
            self.withdrawals += 1
            if self.on_withdraw is not None:
                self.on_withdraw()
        if self.policy.shed_jitter > 0.0:
            assert self.rng is not None
            if float(self.rng.random()) < self.policy.shed_jitter:
                self.jitter_admits += 1
                return True
        self.shed_count += 1
        return False

    def observe_completion(self, request: "Request", queue_length: int) -> None:
        """Fold a finished service into the EWMA and re-evaluate.

        ``queue_length`` is the server's load index *after* the
        completion; re-evaluating here is what lets a withdrawn server
        (which sees no arrivals) detect its own recovery while the
        backlog drains.
        """
        elapsed = self.sim.now - request.start_time
        if math.isfinite(elapsed) and elapsed >= 0.0:
            if self.ewma_service == 0.0:
                self.ewma_service = elapsed
            else:
                alpha = self.policy.ewma_alpha
                self.ewma_service += alpha * (elapsed - self.ewma_service)
        target = self.policy.sojourn_target
        assert target is not None
        if self.estimated_delay(queue_length) <= target:
            self._recover()
        elif self._above_since is None:
            self._above_since = self.sim.now

    def _recover(self) -> None:
        """The estimate dropped to/below the target: exit shedding."""
        self._above_since = None
        self.shedding = False
        if self.withdrawn:
            self.withdrawn = False
            self.rejoins += 1
            if self.on_rejoin is not None:
                self.on_rejoin()

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """This controller's tallies (summed across servers upstream)."""
        return {
            "requests_shed": self.shed_count,
            "shed_jitter_admits": self.jitter_admits,
            "overload_withdrawals": self.withdrawals,
            "overload_rejoins": self.rejoins,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OverloadController shedding={self.shedding} "
            f"withdrawn={self.withdrawn} shed={self.shed_count} "
            f"ewma={self.ewma_service:.6f}>"
        )
