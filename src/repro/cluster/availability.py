"""Service availability subsystem (paper §3.1).

"Our service availability subsystem is based on a well-known
publish/subscribe channel ... Each cluster node can elect to provide
services through repeatedly publishing the service type, the data
partitions it hosts, and the access interface. Published information is
kept as soft state ... it has to be refreshed frequently to stay alive.
Each client node subscribes to this channel and maintains a
service/partition mapping table."

- :class:`AvailabilityChannel` — the well-known channel (multicast).
- :class:`ServicePublisher` — server-side announcer with randomized
  refresh intervals (0.5–1.5× the mean, avoiding self-synchronization
  exactly as the broadcast policy does).
- :class:`ServiceMappingTable` — client-side soft-state table; entries
  expire ``ttl`` seconds after their last refresh, so crashed servers
  disappear from candidate sets without any explicit failure signal.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.net.message import Message, MessageKind
from repro.net.transport import BroadcastChannel, Network
from repro.sim.engine import EventHandle, Simulator

__all__ = ["AvailabilityChannel", "ServicePublisher", "ServiceMappingTable"]


class AvailabilityChannel(BroadcastChannel):
    """The well-known publish/subscribe channel (PUBLISH messages)."""

    def __init__(self, network: Network):
        super().__init__(network, kind=MessageKind.PUBLISH)


class ServicePublisher:
    """Periodically announces the services/partitions a node hosts."""

    __slots__ = (
        "sim",
        "channel",
        "node_id",
        "entries",
        "mean_interval",
        "rng",
        "_handle",
        "publish_count",
    )

    def __init__(
        self,
        sim: Simulator,
        channel: AvailabilityChannel,
        node_id: int,
        entries: Iterable[tuple[str, int]],
        mean_interval: float,
        rng: np.random.Generator,
    ):
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be > 0, got {mean_interval}")
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self.entries = list(entries)
        self.mean_interval = mean_interval
        self.rng = rng
        self._handle: Optional[EventHandle] = None
        self.publish_count = 0

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> None:
        """Publish immediately and begin the refresh loop."""
        if self._handle is not None:
            return
        self._publish()

    def stop(self) -> None:
        """Stop refreshing (a crashed node goes silent)."""
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def _publish(self) -> None:
        self.publish_count += 1
        self.channel.publish(
            self.node_id, payload=(self.node_id, tuple(self.entries), self.sim.now)
        )
        # Randomized interval in [0.5, 1.5] x mean: soft state refresh
        # without fleet-wide self-synchronization (Floyd & Jacobson).
        delay = float(self.rng.uniform(0.5, 1.5)) * self.mean_interval
        self._handle = self.sim.after(delay, self._publish)


class ServiceMappingTable:
    """A client's soft-state view of who hosts what.

    ``available(service, partition)`` returns nodes whose last refresh
    is within ``ttl``; expiry is evaluated lazily at query time (no
    sweeper events on the hot path).
    """

    __slots__ = ("sim", "ttl", "_last_seen", "updates_received")

    def __init__(self, sim: Simulator, ttl: float):
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.sim = sim
        self.ttl = ttl
        # (service, partition) -> {node_id: last_seen_time}
        self._last_seen: dict[tuple[str, int], dict[int, float]] = {}
        self.updates_received = 0

    def subscribe(self, channel: AvailabilityChannel, client_id: int) -> None:
        channel.subscribe(client_id, self._on_publish)

    def _on_publish(self, message: Message) -> None:
        node_id, entries, _published_at = message.payload
        now = self.sim.now
        self.updates_received += 1
        for key in entries:
            self._last_seen.setdefault(key, {})[node_id] = now

    def available(self, service: str, partition: int = 0) -> list[int]:
        """Live replica nodes for (service, partition), sorted by id."""
        entry = self._last_seen.get((service, partition))
        if not entry:
            return []
        deadline = self.sim.now - self.ttl
        return sorted(node for node, seen in entry.items() if seen >= deadline)

    def known_services(self) -> list[str]:
        return sorted({service for service, _ in self._last_seen})

    def forget(self, node_id: int) -> None:
        """Drop a node from every entry (explicit eviction)."""
        for entry in self._last_seen.values():
            entry.pop(node_id, None)
