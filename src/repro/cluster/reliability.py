"""Request reliability layer: deadlines, backoff, hedging, breakers.

The paper's prototype survives node failures only through soft-state TTL
expiry (§3.1) plus client-side timeout/retry. That recovery path is
naive under correlated faults: every timeout re-selects immediately, so
a partition or crash storm turns into a synchronized retry storm against
the surviving servers. This module is the hardened alternative — one
deterministic state machine the cluster consults on every attempt:

- **deadline budgets** — a total per-request budget measured from
  arrival, split evenly across the remaining attempts (superseding the
  flat per-attempt ``request_timeout``); a request whose budget is
  exhausted fails fast instead of burning further retries;
- **jittered exponential backoff** between retries, with a per-client
  token-bucket **retry budget** that degrades to fail-fast when
  exhausted (a retry storm drains the bucket, arrivals after that see
  one clean failure instead of amplifying the storm);
- **hedged requests** — a hedge timer armed at a configurable quantile
  of observed response times dispatches a second copy of the request to
  a different server; the first response wins and the loser is
  cancelled through the existing duplicate-suppression guards
  (``Request.done`` / ``queued_at``);
- **per-server circuit breakers** — consecutive timeouts/losses eject a
  server from the candidate set (composing with the availability
  subsystem's soft-state expiry, which is much slower than a breaker),
  and a cooldown half-opens it for probing back in. Fast-reject NACKs
  from overloaded servers (:mod:`repro.cluster.overload`) feed the same
  breakers via :meth:`ReliabilityEngine.on_reject`, and hedges never
  target a server that already rejected the request.

Every mechanism is **off by default**: a cluster built without a
:class:`ReliabilityPolicy` (or with the all-default policy) takes
exactly the pre-existing code paths — no extra events, no RNG draws —
so paper-reproduction runs stay bit-identical. All randomness flows
through the named substreams ``reliability.backoff`` and
``reliability.hedge``, so hardened runs are bit-identical at a fixed
seed under both event engines (the parity suite covers one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.cluster.request import Request
from repro.net.message import MessageKind
from repro.sim.engine import EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.system import ServiceCluster

__all__ = ["ReliabilityPolicy", "CircuitBreaker", "ReliabilityEngine"]

#: floor for a computed attempt timeout: a request whose deadline budget
#: is (numerically) exhausted still gets a well-formed timer; the retry
#: path then fails it fast on the deadline check
_MIN_ATTEMPT_TIMEOUT = 1e-6


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Declarative reliability knobs (all JSON-native scalars).

    Like :class:`~repro.cluster.failures.ChaosSpec`, the policy is a
    plain value object so it can live inside a
    :class:`~repro.experiments.config.SimulationConfig`
    (``reliability_params``) and participate in the content-addressed
    result cache. The default instance disables every mechanism.

    - ``deadline`` — total per-request time budget in seconds, measured
      from arrival; ``None`` keeps the flat per-attempt
      ``request_timeout`` semantics.
    - ``backoff_base`` / ``backoff_mult`` / ``backoff_cap`` — retry *k*
      waits ``min(cap, base * mult**(k-1))`` before re-selecting;
      ``backoff_base = 0`` disables backoff (immediate re-select, the
      naive behavior).
    - ``backoff_jitter`` — fraction of each backoff delay that is
      uniformly jittered (equal-jitter scheme; 0 = deterministic).
    - ``retry_budget`` — per-client token-bucket capacity; each retry
      spends one token, the bucket refills at ``retry_budget_refill``
      tokens per simulated second. An empty bucket degrades the client
      to fail-fast. ``None`` = unlimited retries (up to ``max_retries``).
    - ``hedge_quantile`` — arm a hedge timer at this quantile of the
      last ``hedge_window`` observed response times (needs at least
      ``hedge_min_samples`` observations); ``None`` disables hedging.
    - ``breaker_threshold`` — consecutive failures (timeouts or server
      losses) that open a server's circuit breaker; ``None`` disables
      breakers. An open breaker ejects the server from candidate sets
      for ``breaker_cooldown`` seconds, then half-opens: the next
      outcome closes it (success) or re-opens it (failure).
    """

    deadline: Optional[float] = None
    backoff_base: float = 0.0
    backoff_mult: float = 2.0
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.5
    retry_budget: Optional[float] = None
    retry_budget_refill: float = 10.0
    hedge_quantile: Optional[float] = None
    hedge_min_samples: int = 32
    hedge_window: int = 512
    breaker_threshold: Optional[int] = None
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_mult < 1.0:
            raise ValueError(f"backoff_mult must be >= 1, got {self.backoff_mult}")
        if self.backoff_cap <= 0:
            raise ValueError(f"backoff_cap must be > 0, got {self.backoff_cap}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ValueError(
                f"retry_budget must be >= 1 or None, got {self.retry_budget}"
            )
        if self.retry_budget_refill <= 0:
            raise ValueError(
                f"retry_budget_refill must be > 0, got {self.retry_budget_refill}"
            )
        if self.hedge_quantile is not None and not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1) or None, got {self.hedge_quantile}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )
        if self.hedge_window < self.hedge_min_samples:
            raise ValueError(
                "hedge_window must be >= hedge_min_samples, got "
                f"{self.hedge_window} < {self.hedge_min_samples}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1 or None, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )

    @property
    def enabled(self) -> bool:
        """True when any mechanism is active (the engine is installed)."""
        return (
            self.deadline is not None
            or self.backoff_base > 0.0
            or self.retry_budget is not None
            or self.hedge_quantile is not None
            or self.breaker_threshold is not None
        )

    @classmethod
    def field_names(cls) -> frozenset:
        """The set of knob names (used to validate config dicts)."""
        return frozenset(f.name for f in fields(cls))


class CircuitBreaker:
    """Per-server breaker: closed -> open -> half-open state machine.

    ``closed`` counts consecutive failures; at ``threshold`` the breaker
    opens for ``cooldown`` seconds (the server leaves candidate sets).
    The open->half-open transition is evaluated lazily at query time (no
    sweeper events): once the cooldown elapses the server is offered as
    a probe target, and the next recorded outcome decides — success
    closes the breaker, failure re-opens it for another cooldown.
    """

    __slots__ = ("threshold", "cooldown", "failures", "_open_until", "opens")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        #: consecutive failures since the last success (closed state)
        self.failures = 0
        #: end of the current cooldown; -inf means not open
        self._open_until = -math.inf
        #: times this breaker tripped (open transitions)
        self.opens = 0

    def state(self, now: float) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` at time ``now``."""
        if self._open_until == -math.inf:
            return "closed"
        return "open" if now < self._open_until else "half_open"

    def allows(self, now: float) -> bool:
        """Whether the server may receive requests at time ``now``."""
        return now >= self._open_until

    def record_failure(self, now: float) -> None:
        state = self.state(now)
        if state == "half_open":
            # The probe failed: straight back to open.
            self._open_until = now + self.cooldown
            self.opens += 1
            return
        if state == "open":
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._open_until = now + self.cooldown
            self.opens += 1

    def record_success(self, now: float) -> None:
        self.failures = 0
        self._open_until = -math.inf


class _RequestState:
    """Per-request reliability bookkeeping (created at first dispatch)."""

    __slots__ = ("last_server", "attempt", "hedge_handle", "clones", "rejected_servers")

    def __init__(self) -> None:
        #: target of the most recent primary dispatch (breaker attribution)
        self.last_server: int = -1
        #: ``request.retries`` at the most recent primary dispatch
        self.attempt: int = 0
        #: pending hedge timer, if armed
        self.hedge_handle: Optional[EventHandle] = None
        #: hedge copies launched for this request (any attempt)
        self.clones: list[Request] = []
        #: servers that rejected this request (admission control / shed
        #: NACKs); hedges never target them — a copy sent to a server
        #: that just declined the primary would be shed right back
        self.rejected_servers: set[int] = set()


class ReliabilityEngine:
    """Runtime state machine for one cluster's :class:`ReliabilityPolicy`.

    Installed as ``cluster.reliability`` (``None`` when the layer is off
    — the same guard pattern as ``cluster.telemetry``). The cluster
    calls in at well-defined lifecycle points; the engine never touches
    the simulator except to arm/cancel hedge timers and it draws
    randomness only from its two named substreams.
    """

    def __init__(self, cluster: "ServiceCluster", policy: ReliabilityPolicy):
        self.cluster = cluster
        self.policy = policy
        self._states: dict[int, _RequestState] = {}
        #: client_id -> (tokens, last_refill_time) token buckets
        self._buckets: dict[int, tuple[float, float]] = {}
        self.breakers: dict[int, CircuitBreaker] = {}
        if policy.breaker_threshold is not None:
            self.breakers = {
                server.node_id: CircuitBreaker(
                    policy.breaker_threshold, policy.breaker_cooldown
                )
                for server in cluster.servers
            }
        # Ring buffer of observed (successful) response times feeding
        # the hedge-delay quantile.
        self._observed = np.empty(policy.hedge_window, dtype=np.float64)
        self._n_observed = 0
        self._observed_cursor = 0

        # Counters (surfaced through resilience_counters / telemetry).
        self.hedges_launched = 0
        self.hedge_wins = 0
        self.hedge_losses = 0
        self.clones_lost = 0
        self.retry_budget_exhausted = 0
        self.deadline_exceeded = 0
        self.rejects_signaled = 0

    # ------------------------------------------------------------------
    # deadline budget
    # ------------------------------------------------------------------
    def attempt_timeout(self, request: Request) -> Optional[float]:
        """Timeout for the attempt being armed now.

        With a deadline budget: the remaining budget split evenly across
        the attempts still allowed, never exceeding the flat
        ``request_timeout`` when one is also set. Without a deadline:
        the flat ``request_timeout`` (possibly ``None``).
        """
        flat = self.cluster.request_timeout
        deadline = self.policy.deadline
        if deadline is None:
            return flat
        remaining = request.arrival_time + deadline - self.cluster.sim.now
        attempts_left = max(1, self.cluster.max_retries + 1 - request.retries)
        per_attempt = max(remaining / attempts_left, _MIN_ATTEMPT_TIMEOUT)
        if flat is not None:
            per_attempt = min(per_attempt, flat)
        return per_attempt

    # ------------------------------------------------------------------
    # retry budget + backoff
    # ------------------------------------------------------------------
    def _take_retry_token(self, client_id: int) -> bool:
        capacity = self.policy.retry_budget
        if capacity is None:
            return True
        now = self.cluster.sim.now
        # A fresh bucket is full *now* — not at t=0, which is only the
        # origin of the simulator's clock (the Clock seam allows any).
        tokens, last = self._buckets.get(client_id, (capacity, now))
        tokens = min(capacity, tokens + (now - last) * self.policy.retry_budget_refill)
        if tokens >= 1.0:
            self._buckets[client_id] = (tokens - 1.0, now)
            return True
        self._buckets[client_id] = (tokens, now)
        return False

    def should_fail_fast(self, request: Request) -> bool:
        """Terminal-failure check on the retry path: deadline exhausted,
        or no retry token left for this client."""
        deadline = self.policy.deadline
        if (
            deadline is not None
            and self.cluster.sim.now >= request.arrival_time + deadline - 1e-12
        ):
            self.deadline_exceeded += 1
            return True
        if not self._take_retry_token(request.client_id):
            self.retry_budget_exhausted += 1
            return True
        return False

    def backoff_delay(self, request: Request) -> float:
        """Jittered exponential backoff before retry ``request.retries``."""
        policy = self.policy
        if policy.backoff_base <= 0.0:
            return 0.0
        delay = min(
            policy.backoff_cap,
            policy.backoff_base * policy.backoff_mult ** max(0, request.retries - 1),
        )
        jitter = policy.backoff_jitter
        if jitter > 0.0:
            u = float(self.cluster.rng("reliability.backoff").random())
            delay = delay * (1.0 - jitter) + delay * jitter * u
        return delay

    # ------------------------------------------------------------------
    # circuit breakers
    # ------------------------------------------------------------------
    def filter_candidates(self, candidates: Sequence[int]) -> Sequence[int]:
        """Remove open-breaker servers from a candidate set.

        Fails open: if every candidate's breaker is open, the unfiltered
        set is returned — a degraded server is better than none, and the
        NoCandidatesError re-select loop would otherwise spin.
        """
        if not self.breakers:
            return candidates
        now = self.cluster.sim.now
        allowed = [s for s in candidates if self.breakers[s].allows(now)]
        return allowed if allowed else candidates

    def breaker_state(self, server_id: int) -> str:
        """Breaker state label for telemetry (``"closed"`` when off)."""
        breaker = self.breakers.get(server_id)
        if breaker is None:
            return "closed"
        return breaker.state(self.cluster.sim.now)

    def breaker_opens(self) -> int:
        return sum(breaker.opens for breaker in self.breakers.values())

    def on_attempt_failure(self, request: Request) -> None:
        """A primary attempt failed (timeout fired or server lost):
        charge the breaker of the server the attempt targeted.

        Only charged when the failing attempt is the one that was
        actually dispatched (``state.attempt`` matches): a timeout that
        fires during the *select* phase of a later attempt must not
        re-charge the previous attempt's server.
        """
        if not self.breakers:
            return
        state = self._states.get(request.index)
        if state is None or state.last_server < 0:
            return
        if state.attempt != request.retries:
            return
        breaker = self.breakers.get(state.last_server)
        if breaker is not None:
            breaker.record_failure(self.cluster.sim.now)

    def on_reject(self, request: Request, server_id: int) -> None:
        """An admission-control rejection (instant or fast-reject NACK)
        reached the client: treat it as a breaker signal for the
        rejecting server and exclude that server from future hedges.

        Unlike :meth:`on_attempt_failure`, the rejecting server is
        named explicitly by the NACK, so no attempt-matching guard is
        needed — the attribution cannot be stale.
        """
        self.rejects_signaled += 1
        state = self._states.get(request.index)
        if state is not None:
            state.rejected_servers.add(server_id)
        if self.breakers:
            breaker = self.breakers.get(server_id)
            if breaker is not None:
                breaker.record_failure(self.cluster.sim.now)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_dispatch(self, client, request: Request, server_id: int) -> None:
        """A primary dispatch committed to ``server_id``: update state,
        emit the attempt record, and arm the hedge timer if eligible."""
        state = self._states.get(request.index)
        if state is None:
            state = _RequestState()
            self._states[request.index] = state
        state.last_server = server_id
        state.attempt = request.retries
        telemetry = self.cluster.telemetry
        if telemetry is not None:
            telemetry.on_attempt(
                request, server_id, "primary", self.breaker_state(server_id)
            )
        if self.policy.hedge_quantile is not None and state.hedge_handle is None:
            delay = self._hedge_delay()
            if delay is not None:
                state.hedge_handle = self.cluster.sim.after(
                    delay, self._fire_hedge, request
                )

    def on_retry(self, request: Request) -> None:
        """A retry superseded the current attempt: disarm its hedge."""
        state = self._states.get(request.index)
        if state is not None and state.hedge_handle is not None:
            self.cluster.sim.cancel(state.hedge_handle)
            state.hedge_handle = None

    def copy_collides(self, request: Request, server_id: int) -> bool:
        """Whether a *sibling* copy of ``request`` (primary or hedge) is
        already held by ``server_id``. Copies share the primary's index,
        and a server's bookkeeping is keyed by index — two copies must
        never coexist on one server."""
        primary = self.primary_of(request)
        state = self._states.get(primary.index)
        if state is None:
            return False
        if primary is not request and primary.queued_at == server_id:
            return True
        for clone in state.clones:
            if clone is not request and clone.queued_at == server_id:
                return True
        return False

    def is_clone(self, request: Request) -> bool:
        """Whether ``request`` is a hedge copy (its ``hedge`` slot backs
        onto the primary)."""
        return request.hedge is not None

    def primary_of(self, request: Request) -> Request:
        """The canonical request object for a delivered copy."""
        return request.hedge if request.hedge is not None else request

    def on_clone_lost(self, clone: Request) -> None:
        """A hedge copy hit a dead/rejecting server: drop it silently —
        the primary's own timeout/deadline machinery recovers."""
        self.clones_lost += 1
        clone.done = True

    def on_complete(self, primary: Request, winner: Request) -> None:
        """First response won the race: settle hedges and breakers."""
        state = self._states.get(primary.index)
        if state is not None and state.clones:
            if winner is not primary:
                self.hedge_wins += 1
            else:
                self.hedge_losses += 1
        if self.breakers and winner.server_id >= 0:
            breaker = self.breakers.get(winner.server_id)
            if breaker is not None:
                breaker.record_success(self.cluster.sim.now)
        if self.policy.hedge_quantile is not None:
            self._observe(winner.response_time)
        self.on_terminal(primary)

    def on_terminal(self, primary: Request) -> None:
        """The request reached a terminal outcome (success or failure):
        disarm the hedge timer, cancel surviving copies, drop state."""
        state = self._states.pop(primary.index, None)
        if state is None:
            return
        if state.hedge_handle is not None:
            self.cluster.sim.cancel(state.hedge_handle)
            state.hedge_handle = None
        for clone in state.clones:
            if clone.done:
                continue
            # The done flag suppresses any in-flight delivery of the
            # loser (request or response) via the existing guards; a
            # copy still waiting in a queue is pulled out so it stops
            # consuming server capacity (in-service copies run out —
            # service is non-preemptive — and their responses are
            # discarded as stale).
            clone.done = True
            if clone.queued_at >= 0:
                self.cluster.servers[clone.queued_at].remove_queued(clone)

    # ------------------------------------------------------------------
    # hedging
    # ------------------------------------------------------------------
    def _observe(self, response_time: float) -> None:
        if not math.isfinite(response_time):
            return
        self._observed[self._observed_cursor] = response_time
        self._observed_cursor = (self._observed_cursor + 1) % self.policy.hedge_window
        if self._n_observed < self.policy.hedge_window:
            self._n_observed += 1

    def _hedge_delay(self) -> Optional[float]:
        """The hedge timer delay, or None while observations are scarce."""
        if self._n_observed < self.policy.hedge_min_samples:
            return None
        assert self.policy.hedge_quantile is not None
        return float(
            np.quantile(self._observed[: self._n_observed], self.policy.hedge_quantile)
        )

    def _fire_hedge(self, request: Request) -> None:
        state = self._states.get(request.index)
        if state is None or request.done:
            return
        state.hedge_handle = None
        if state.attempt != request.retries:
            # A retry superseded the attempt this timer was armed for
            # (defensive: on_retry normally cancels the handle first).
            return
        if any(not clone.done for clone in state.clones):
            # At most one live hedge copy per request.
            return
        cluster = self.cluster
        client = cluster.client_for(request)
        held = {state.last_server, request.queued_at} | state.rejected_servers
        candidates = [s for s in cluster.available_servers(client) if s not in held]
        if not candidates:
            return
        rng = cluster.rng("reliability.hedge")
        server_id = candidates[int(rng.integers(len(candidates)))]
        clone = Request(
            index=request.index,
            client_id=request.client_id,
            service_time=request.service_time,
            arrival_time=request.arrival_time,
        )
        clone.dispatch_time = request.dispatch_time
        clone.retries = request.retries
        clone.hedge = request
        state.clones.append(clone)
        self.hedges_launched += 1
        telemetry = cluster.telemetry
        if telemetry is not None:
            telemetry.on_attempt(
                request, server_id, "hedge", self.breaker_state(server_id)
            )
        # The hedge is policy-invisible: it goes straight to the wire
        # (no notify_dispatch, no new attempt timeout — the primary's
        # deadline still governs the logical request).
        cluster.network.send(
            MessageKind.REQUEST,
            client.node_id,
            server_id,
            clone,
            cluster._deliver_request,
        )

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """Archive-ready counters (merged into ``chaos_counters``)."""
        return {
            "hedges_launched": float(self.hedges_launched),
            "hedge_wins": float(self.hedge_wins),
            "hedge_losses": float(self.hedge_losses),
            "hedge_clones_lost": float(self.clones_lost),
            "breaker_opens": float(self.breaker_opens()),
            "retry_budget_exhausted": float(self.retry_budget_exhausted),
            "deadline_exceeded": float(self.deadline_exceeded),
            "rejects_signaled": float(self.rejects_signaled),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReliabilityEngine hedges={self.hedges_launched} "
            f"breakers={len(self.breakers)} states={len(self._states)}>"
        )
