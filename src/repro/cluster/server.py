"""Server node: FIFO service queue + non-preemptive worker pool.

This is the paper's server model (§2): "each server contains a
non-preemptive processing unit and a FIFO service queue". ``workers=1``
reproduces that model exactly; larger pools model the prototype's
thread pool (§3.1).

The *load index* is :attr:`queue_length` — "the total number of active
service accesses, i.e. the queue length, on each server" — counting
both queued and in-service requests.

For the prototype-fidelity model, :meth:`steal_cpu` lets poll handling
steal CPU from the in-flight service (its completion event is pushed
back), which is one of the two polling-overhead sources the paper
identifies in §4.1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.sim.monitor import StepRecorder
from repro.cluster.request import Request

__all__ = ["ServerNode"]

CompletionCallback = Callable[["ServerNode", Request], None]


class ServerNode:
    """A service node with a FIFO queue and ``workers`` service units."""

    __slots__ = (
        "sim",
        "node_id",
        "workers",
        "speed",
        "on_complete",
        "on_idle",
        "queue",
        "in_service",
        "_completion_handles",
        "completed_count",
        "stolen_cpu_total",
        "queue_recorder",
        "alive",
        "max_queue",
        "rejected_count",
        "overload",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        workers: int = 1,
        speed: float = 1.0,
        record_queue: bool = False,
        max_queue: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        self.sim = sim
        self.node_id = node_id
        self.workers = workers
        self.speed = speed
        #: set by the cluster: called when a request finishes service
        self.on_complete: Optional[CompletionCallback] = None
        #: optional: called when the node transitions to fully idle
        #: (used by idleness-advertising policies such as JIQ)
        self.on_idle: Optional[Callable[["ServerNode"], None]] = None
        self.queue: Deque[Request] = deque()
        self.in_service: dict[int, Request] = {}
        self._completion_handles: dict[int, EventHandle] = {}
        self.completed_count = 0
        self.stolen_cpu_total = 0.0
        self.queue_recorder: Optional[StepRecorder] = (
            StepRecorder(initial=0.0) if record_queue else None
        )
        self.alive = True
        #: admission control (None = unbounded; the paper's model).
        #: Requests arriving with ``queue_length >= max_queue`` are
        #: rejected — the knob the paper places out of scope ("system
        #: throughput is tightly related to the admission control").
        self.max_queue = max_queue
        self.rejected_count = 0
        #: optional :class:`repro.cluster.overload.OverloadController`
        #: installed by the cluster when overload control is enabled;
        #: every touch point guards with ``is not None`` (zero overhead
        #: off, same pattern as ``queue_recorder``)
        self.overload = None

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """The load index: queued + in-service requests."""
        return len(self.queue) + len(self.in_service)

    @property
    def busy(self) -> bool:
        """True when at least one worker is serving."""
        return bool(self.in_service)

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Accept a request: start service if a worker is free, else queue.

        Returns False (and leaves the request untouched) when admission
        control rejects it; True otherwise.
        """
        if self.max_queue is not None and self.queue_length >= self.max_queue:
            self.rejected_count += 1
            return False
        if self.overload is not None and not self.overload.admit(self.queue_length):
            self.rejected_count += 1
            return False
        request.enqueue_time = self.sim.now
        request.server_id = self.node_id
        request.queued_at = self.node_id
        if len(self.in_service) < self.workers:
            self._start(request)
        else:
            self.queue.append(request)
        self._record_queue()
        return True

    def _start(self, request: Request) -> None:
        request.start_time = self.sim.now
        self.in_service[request.index] = request
        handle = self.sim.after(request.service_time / self.speed, self._complete, request)
        self._completion_handles[request.index] = handle

    def _complete(self, request: Request) -> None:
        del self.in_service[request.index]
        del self._completion_handles[request.index]
        request.completion_time = self.sim.now
        request.queued_at = -1
        self.completed_count += 1
        if self.queue:
            self._start(self.queue.popleft())
        self._record_queue()
        if self.overload is not None:
            self.overload.observe_completion(request, self.queue_length)
        if self.on_complete is not None:
            self.on_complete(self, request)
        if self.on_idle is not None and not self.in_service and not self.queue:
            self.on_idle(self)

    # ------------------------------------------------------------------
    def steal_cpu(self, cost: float) -> None:
        """Charge ``cost`` seconds of CPU to overhead work (poll handling).

        The in-flight service completions are pushed back by ``cost``
        (the CPU is taken away from the spinning service threads). A
        no-op when the server is idle — there is nobody to delay.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if cost == 0.0 or not self._completion_handles:
            return
        self.stolen_cpu_total += cost
        sim = self.sim
        for index, handle in list(self._completion_handles.items()):
            sim.cancel(handle)
            self._completion_handles[index] = sim.at(
                handle.time + cost, self._complete, handle.arg
            )

    def set_speed(self, speed: float) -> None:
        """Change the service rate mid-run (chaos straggler injection).

        In-flight completions are rescheduled so the *remaining* work of
        each request finishes at the new rate: ``remaining' = remaining
        × old_speed / new_speed``. Queued requests are unaffected until
        they start (their full service time is then divided by the
        speed in effect, as always). Multiplicative changes compose, so
        overlapping straggle intervals stack and unwind cleanly.
        """
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        if speed == self.speed:
            return
        ratio = self.speed / speed
        self.speed = speed
        if not self._completion_handles:
            return
        sim = self.sim
        now = sim.now
        for index, handle in list(self._completion_handles.items()):
            sim.cancel(handle)
            self._completion_handles[index] = sim.at(
                now + (handle.time - now) * ratio, self._complete, handle.arg
            )

    def remove_queued(self, request: Request) -> bool:
        """Pull a still-queued request out of the queue (hedge loser
        cancellation). Returns False when the request is not waiting here
        (already started service, completed, or drained)."""
        if request.queued_at != self.node_id or request.index in self.in_service:
            return False
        try:
            self.queue.remove(request)
        except ValueError:
            return False
        request.queued_at = -1
        self._record_queue()
        return True

    # ------------------------------------------------------------------
    def drain(self) -> list[Request]:
        """Remove and return all queued and in-service requests (crash).

        In-flight completion events are cancelled; callers (the failure
        injector) decide what happens to the drained requests.
        """
        dropped = list(self.in_service.values()) + list(self.queue)
        for request in dropped:
            request.queued_at = -1
        for handle in self._completion_handles.values():
            self.sim.cancel(handle)
        self._completion_handles.clear()
        self.in_service.clear()
        self.queue.clear()
        self._record_queue()
        return dropped

    def _record_queue(self) -> None:
        if self.queue_recorder is not None:
            self.queue_recorder.record(self.sim.now, float(self.queue_length))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServerNode {self.node_id} q={self.queue_length} "
            f"workers={self.workers} done={self.completed_count}>"
        )
