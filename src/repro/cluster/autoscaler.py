"""Closed-loop server-pool autoscaling over the soft-state machinery.

ROADMAP item 5's control loop: scale the *provisioned* server pool from
the run's own telemetry signals (goodput, shed rate, p95 latency)
instead of statically provisioning for peak. The actuator is the
paper's own soft-state availability protocol — deliberately so:

- **scale-up** starts a parked server's
  :class:`~repro.cluster.availability.ServicePublisher`; clients and
  dispatchers learn about the new capacity the way they learn about
  anything (a PUBLISH lands, the mapping-table entry goes live);
- **scale-down** *stops* the publisher, so the server's soft-state
  entries age out over the TTL while it keeps serving — and finishing —
  everything already queued. Nothing is drained or dropped: scale-down
  is graceful by construction, which the exactly-once hypothesis
  property in ``tests/property`` pins.

Shape mirrors the other opt-in subsystems exactly:

- :class:`AutoscalerPolicy` — frozen, JSON-native value object carried
  by ``SimulationConfig.autoscaler_params`` (cache-key aware);
- :class:`Autoscaler` — the runtime control loop, owned by the cluster
  as ``cluster.autoscaler`` (``None`` when off — the usual guard).

The control law (DESIGN.md §16) is deliberately simple and **draws no
randomness** (the tick schedule is deterministic, so enabled runs stay
bit-identical across the heap and calendar engines):

- every ``interval`` seconds, fold the window's completions, terminal
  failures, admission rejections (the per-server ``rejected_count``
  delta), and response times;
- **scale up** by ``step_up`` when the shed-or-fail fraction exceeds
  ``shed_high``, or the window p95 exceeds ``p95_high`` (when set);
- **scale down** by ``step_down`` when the window was clean (no sheds,
  no failures) *and* the demand estimate — completions × EWMA service
  time per active-server-second — sits below ``util_low``;
- honor ``cooldown`` seconds between scale-down actions (scale-up is
  never delayed — under-provisioning fails work), and clamp to
  ``[min_servers, max_servers]`` (``max_servers`` defaults to the
  cluster's full pool).

Provisioning cost is tracked as the time-integral of the active-pool
size (``provisioned_server_seconds``), which the autoscale campaign
divides goodput by — the headline goodput-vs-provisioning-cost metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.request import Request
    from repro.cluster.system import ServiceCluster

__all__ = ["AutoscalerPolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Declarative autoscaler knobs (all JSON-native scalars).

    The default instance disables the subsystem (``interval=None``).

    - ``interval`` — control-loop period in seconds; ``None`` disables.
    - ``min_servers`` / ``max_servers`` — pool bounds; ``max_servers=0``
      means "the cluster's full ``n_servers``".
    - ``initial_servers`` — pool size at t=0; ``0`` means
      ``min_servers``.
    - ``shed_high`` — shed-or-fail fraction of the window's offered
      work above which the loop scales up.
    - ``p95_high`` — window p95 response time (seconds) above which the
      loop scales up; ``None`` disables the latency trigger.
    - ``util_low`` — demand estimate (completions × EWMA service time
      per active-server-second) below which a clean window scales down.
    - ``ewma_alpha`` — smoothing for the observed-service-time EWMA
      feeding the demand estimate.
    - ``step_up`` / ``step_down`` — servers activated/parked per action.
    - ``cooldown`` — minimum seconds between scale-*down* actions
      (0 = every clean tick may shrink); scale-up is never delayed.
    """

    interval: Optional[float] = None
    min_servers: int = 1
    max_servers: int = 0
    initial_servers: int = 0
    shed_high: float = 0.02
    p95_high: Optional[float] = None
    util_low: float = 0.5
    ewma_alpha: float = 0.2
    step_up: int = 2
    step_down: int = 1
    cooldown: float = 0.0

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError(f"interval must be > 0 or None, got {self.interval}")
        if self.min_servers < 1:
            raise ValueError(f"min_servers must be >= 1, got {self.min_servers}")
        if self.max_servers < 0:
            raise ValueError(f"max_servers must be >= 0, got {self.max_servers}")
        if self.initial_servers < 0:
            raise ValueError(
                f"initial_servers must be >= 0, got {self.initial_servers}"
            )
        if not 0.0 <= self.shed_high < 1.0:
            raise ValueError(f"shed_high must be in [0, 1), got {self.shed_high}")
        if self.p95_high is not None and self.p95_high <= 0:
            raise ValueError(f"p95_high must be > 0 or None, got {self.p95_high}")
        if not 0.0 <= self.util_low <= 1.0:
            raise ValueError(f"util_low must be in [0, 1], got {self.util_low}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError(
                f"step_up/step_down must be >= 1, got {self.step_up}/{self.step_down}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")

    @property
    def enabled(self) -> bool:
        """True when the control loop should be installed at all."""
        return self.interval is not None

    @classmethod
    def field_names(cls) -> frozenset:
        """The set of knob names (used to validate config dicts)."""
        return frozenset(f.name for f in fields(cls))


class Autoscaler:
    """Runtime control loop for one cluster's :class:`AutoscalerPolicy`.

    Constructed before the availability subsystem wires publishers, so
    the cluster can gate its initial table priming and publisher starts
    on :meth:`is_active`; :meth:`install` (called once the publishers
    exist) schedules the first tick.
    """

    def __init__(self, cluster: "ServiceCluster", policy: AutoscalerPolicy):
        if not policy.enabled:
            raise ValueError("Autoscaler requires an enabled policy")
        n = cluster.n_servers
        resolved_max = policy.max_servers or n
        if resolved_max > n:
            raise ValueError(
                f"max_servers ({resolved_max}) exceeds the provisioned pool ({n})"
            )
        if policy.min_servers > resolved_max:
            raise ValueError(
                f"min_servers ({policy.min_servers}) exceeds max_servers "
                f"({resolved_max})"
            )
        initial = policy.initial_servers or policy.min_servers
        if not policy.min_servers <= initial <= resolved_max:
            raise ValueError(
                f"initial_servers ({initial}) outside "
                f"[{policy.min_servers}, {resolved_max}]"
            )
        self.cluster = cluster
        self.policy = policy
        self.min_servers = policy.min_servers
        self.max_servers = resolved_max
        #: active pool: the lowest-id ``initial`` servers (deterministic)
        self._active: set[int] = set(range(initial))
        # Window accumulators (reset every tick).
        self._window_completions = 0
        self._window_failures = 0
        self._window_responses: list[float] = []
        self._last_rejected = 0
        #: EWMA of observed service durations (demand estimate input)
        self.ewma_service = 0.0
        # Provisioning-cost integral.
        self._last_change = 0.0
        self._provisioned_ss = 0.0
        self._last_action = -math.inf
        #: (time, "up"/"down", active_after) scale events, in order
        self.events: list[tuple[float, str, int]] = []
        self.scale_ups = 0
        self.scale_downs = 0

    # ------------------------------------------------------------------
    def is_active(self, node_id: int) -> bool:
        """Whether ``node_id`` is in the provisioned (publishing) pool."""
        return node_id in self._active

    @property
    def n_active(self) -> int:
        return len(self._active)

    def install(self) -> None:
        """Start the control loop (publishers must exist by now)."""
        assert self.policy.interval is not None
        self.cluster.sim.after(self.policy.interval, self._tick)

    # ------------------------------------------------------------------
    # window signals (cluster lifecycle hooks)
    # ------------------------------------------------------------------
    def on_complete(self, request: "Request") -> None:
        self._window_completions += 1
        self._window_responses.append(request.response_time)
        elapsed = request.completion_time - request.start_time
        if math.isfinite(elapsed) and elapsed >= 0.0:
            if self.ewma_service == 0.0:
                self.ewma_service = elapsed
            else:
                self.ewma_service += self.policy.ewma_alpha * (
                    elapsed - self.ewma_service
                )

    def on_failure(self, request: "Request") -> None:
        self._window_failures += 1

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        policy = self.policy
        assert policy.interval is not None
        rejected = sum(server.rejected_count for server in self.cluster.servers)
        sheds = rejected - self._last_rejected
        self._last_rejected = rejected
        completions = self._window_completions
        failures = self._window_failures
        offered = completions + failures + sheds
        bad_fraction = (failures + sheds) / offered if offered else 0.0
        p95 = (
            float(np.percentile(np.asarray(self._window_responses), 95))
            if self._window_responses
            else 0.0
        )
        overloaded = offered > 0 and bad_fraction > policy.shed_high
        if policy.p95_high is not None and p95 > policy.p95_high:
            overloaded = True
        now = self.cluster.sim.now
        can_act = now - self._last_action >= policy.cooldown
        # Scale-up is never delayed by the cooldown: under-provisioning
        # actively fails work, so the loop reacts on every overloaded
        # tick. The cooldown only damps scale-*down* (flapping costs
        # publish/withdraw churn, not goodput).
        if overloaded:
            self._scale(policy.step_up)
        elif (
            can_act
            and completions > 0
            and failures == 0
            and sheds == 0
            and self._demand_fraction(completions) < policy.util_low
        ):
            self._scale(-policy.step_down)
        self._window_completions = 0
        self._window_failures = 0
        self._window_responses.clear()
        self.cluster.sim.after(policy.interval, self._tick)

    def _demand_fraction(self, completions: int) -> float:
        """Window demand per active-server-second (utilization proxy)."""
        assert self.policy.interval is not None
        capacity = self.policy.interval * max(1, self.n_active)
        return completions * self.ewma_service / capacity

    def _scale(self, delta: int) -> None:
        target = min(self.max_servers, max(self.min_servers, self.n_active + delta))
        if target == self.n_active:
            return
        now = self.cluster.sim.now
        self._provisioned_ss += self.n_active * (now - self._last_change)
        self._last_change = now
        if target > self.n_active:
            # Activate the lowest-id parked servers (deterministic).
            parked = (
                i for i in range(self.cluster.n_servers) if i not in self._active
            )
            for node_id in parked:
                if self.n_active >= target:
                    break
                self._active.add(node_id)
                self._start_publishing(node_id)
            self.scale_ups += 1
            self.events.append((now, "up", self.n_active))
        else:
            # Park the highest-id active servers; stopping the publisher
            # lets soft state age out while queued work finishes.
            for node_id in sorted(self._active, reverse=True):
                if self.n_active <= target:
                    break
                self._active.discard(node_id)
                publisher = self.cluster.publishers.get(node_id)
                if publisher is not None:
                    publisher.stop()
            self.scale_downs += 1
            self.events.append((now, "down", self.n_active))
        self._last_action = now

    def _start_publishing(self, node_id: int) -> None:
        publisher = self.cluster.publishers.get(node_id)
        if publisher is not None and self.cluster.should_publish(node_id):
            publisher.start()

    # ------------------------------------------------------------------
    def provisioned_server_seconds(self) -> float:
        """Time-integral of the active-pool size up to *now*."""
        now = self.cluster.sim.now
        return self._provisioned_ss + self.n_active * (now - self._last_change)

    def counters(self) -> dict[str, float]:
        """Archive-ready scaling tallies (chaos_counters channel)."""
        now = self.cluster.sim.now
        provisioned = self.provisioned_server_seconds()
        return {
            "autoscale_ups": float(self.scale_ups),
            "autoscale_downs": float(self.scale_downs),
            "autoscale_final_active": float(self.n_active),
            "autoscale_mean_active": (provisioned / now) if now > 0 else float(
                self.n_active
            ),
            "provisioned_server_seconds": provisioned,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Autoscaler active={self.n_active}/"
            f"[{self.min_servers},{self.max_servers}] "
            f"ups={self.scale_ups} downs={self.scale_downs}>"
        )
