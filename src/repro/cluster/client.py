"""Client node: originates service accesses.

A client is deliberately thin — selection logic lives in the policies —
but it carries two pieces of real machinery:

- per-policy local state (``state`` dict), e.g. the broadcast policy's
  perceived-load table or least-connections counters, which the paper
  stresses are *per-client* (clients do not share observations);
- a scalar CPU occupancy model (:meth:`occupy`) used by the
  prototype-fidelity mode, where sending/receiving polls costs client
  CPU and serializes behind earlier work (connected UDP sockets +
  ``select`` on a busy client node).
"""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Simulator

__all__ = ["ClientNode"]


class ClientNode:
    """An internal client (a node accessing services of other nodes)."""

    __slots__ = ("sim", "node_id", "state", "cpu_busy_until", "cpu_work_total")

    def __init__(self, sim: Simulator, node_id: int):
        self.sim = sim
        self.node_id = node_id
        self.state: dict[str, Any] = {}
        self.cpu_busy_until = 0.0
        self.cpu_work_total = 0.0

    def occupy(self, cost: float) -> float:
        """Charge ``cost`` seconds of client CPU; returns completion delay.

        Work is serialized: it starts at ``max(now, cpu_busy_until)``.
        The returned value is the delay from *now* until this work
        finishes, i.e. what the caller should wait before acting on it.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        now = self.sim.now
        start = now if now > self.cpu_busy_until else self.cpu_busy_until
        self.cpu_busy_until = start + cost
        self.cpu_work_total += cost
        return self.cpu_busy_until - now

    def cpu_utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` spent on charged CPU work."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return self.cpu_work_total / horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientNode {self.node_id}>"
