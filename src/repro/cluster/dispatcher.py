"""Multi-dispatcher tier: clients route through K dispatcher nodes.

Everything so far lets each client pick servers independently; the
production topology — and the setting of Hellemans & Van Houdt's
dispatcher work (PAPERS.md) — is a small tier of dispatchers fronting
many FCFS servers. This module models that tier as a first-class,
off-by-default subsystem, mirroring the shape of the reliability and
overload layers exactly:

- :class:`DispatcherPolicy` — a frozen, JSON-native value object
  carried by ``SimulationConfig.dispatcher_params`` (cache-key aware);
- :class:`DispatcherTier` / :class:`Dispatcher` — the runtime, owned by
  the cluster as ``cluster.dispatchers`` (``None`` when the subsystem
  is off — the same guard pattern as ``cluster.telemetry`` /
  ``cluster.reliability``).

Topology and lifecycle (DESIGN.md §16):

- Each :class:`Dispatcher` owns a :class:`~repro.cluster.client.
  ClientNode` *agent* whose node id continues after the client ids.
  The agent is the policy-facing identity: per-selector policy state
  (broadcast tables, JIQ idle queues, least-connections counters) lives
  in ``agent.state``, and when the availability subsystem is on each
  dispatcher subscribes its **own** :class:`~repro.cluster.availability.
  ServiceMappingTable` — dispatchers hold independently-stale views,
  optionally lagged by ``view_lag`` seconds.
- A request's selection hop becomes client → dispatcher (a FORWARD
  message over the request latency), then the *dispatcher* runs the
  cluster's load-balancing policy against its own view and dispatches
  to a server; the response returns server → dispatcher → client so
  the dispatcher observes completions (admission signal) and a dead
  dispatcher loses the response (the client's attempt timeout
  recovers, exactly like a lost message).
- Client→dispatcher **assignment**: ``"static"`` pins each client to
  ``client_index mod K``; ``"failover"`` starts from the same primary
  but, after an attempt timeout or an admission NACK, marks that
  (client, dispatcher) pair *suspect* for ``suspect_cooldown`` seconds
  and routes retries to the next non-suspect dispatcher.
- Per-dispatcher **admission** reuses :class:`~repro.cluster.overload.
  OverloadController` verbatim (CoDel-style, keyed on the dispatcher's
  in-flight count, ``workers = n_servers``, no jitter, no withdrawal):
  an overloaded dispatcher NACKs the forward and — under failover —
  pushes the client to its secondary.
- Per-dispatcher **breakers** reuse :class:`~repro.cluster.reliability.
  CircuitBreaker` per server: each dispatcher learns independently
  which servers are failing it (timeouts, rejects) and filters its own
  candidate sets, failing open like the reliability engine.

Dispatcher *fault injection* (crash storms, client↔dispatcher
partitions) rides the existing :class:`~repro.cluster.failures.
ChaosInjector` machinery — dispatcher node ids enter the injector's
shared ``dead`` set so in-flight messages are swallowed by the same
``NetworkFaults`` gate that handles server crashes.

Everything is **off by default**: a cluster built without a
:class:`DispatcherPolicy` (or with the all-default policy) takes
exactly the pre-existing code paths — no extra nodes, no extra
messages, no RNG draws — so paper-reproduction runs stay
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.client import ClientNode
from repro.net.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.request import Request
    from repro.cluster.system import ServiceCluster

__all__ = ["DispatcherPolicy", "Dispatcher", "DispatcherTier"]

_ASSIGNMENTS = ("static", "failover")


@dataclass(frozen=True)
class DispatcherPolicy:
    """Declarative dispatcher-tier knobs (all JSON-native scalars).

    Like :class:`~repro.cluster.overload.OverloadPolicy`, the policy is
    a plain value object so it can live inside a
    :class:`~repro.experiments.config.SimulationConfig`
    (``dispatcher_params``) and participate in the content-addressed
    result cache. The default instance disables the subsystem.

    - ``count`` — number of dispatchers (K); ``None`` disables the
      whole subsystem.
    - ``assignment`` — client→dispatcher mapping: ``"static"`` (pinned
      hash) or ``"failover"`` (hash primary, retries avoid dispatchers
      recently seen timing out or shedding).
    - ``suspect_cooldown`` — how long (seconds) a failover client
      avoids a dispatcher after a timeout/NACK against it.
    - ``view_lag`` — extra constant delay (seconds) on availability
      PUBLISH deliveries into dispatcher views (stale-view fault
      model; 0 = views as fresh as any client's).
    - ``admit_sojourn_target`` / ``admit_interval`` /
      ``admit_ewma_alpha`` — per-dispatcher CoDel-style admission over
      the dispatcher's in-flight count, reusing
      :class:`~repro.cluster.overload.OverloadController` with
      ``workers = n_servers``; ``None`` target disables admission.
    - ``breaker_threshold`` / ``breaker_cooldown`` — per-dispatcher
      per-server circuit breakers (each dispatcher's view filters
      independently); ``None`` threshold disables them.
    """

    count: Optional[int] = None
    assignment: str = "static"
    suspect_cooldown: float = 0.5
    view_lag: float = 0.0
    admit_sojourn_target: Optional[float] = None
    admit_interval: float = 0.05
    admit_ewma_alpha: float = 0.2
    breaker_threshold: Optional[int] = None
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got {self.count}")
        if self.assignment not in _ASSIGNMENTS:
            raise ValueError(
                f"assignment must be one of {_ASSIGNMENTS}, got {self.assignment!r}"
            )
        if self.suspect_cooldown <= 0:
            raise ValueError(
                f"suspect_cooldown must be > 0, got {self.suspect_cooldown}"
            )
        if self.view_lag < 0:
            raise ValueError(f"view_lag must be >= 0, got {self.view_lag}")
        if self.admit_sojourn_target is not None and self.admit_sojourn_target <= 0:
            raise ValueError(
                "admit_sojourn_target must be > 0 or None, "
                f"got {self.admit_sojourn_target}"
            )
        if self.admit_interval <= 0:
            raise ValueError(f"admit_interval must be > 0, got {self.admit_interval}")
        if not 0.0 < self.admit_ewma_alpha <= 1.0:
            raise ValueError(
                f"admit_ewma_alpha must be in (0, 1], got {self.admit_ewma_alpha}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1 or None, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )

    @property
    def enabled(self) -> bool:
        """True when the tier should be installed at all."""
        return self.count is not None

    @classmethod
    def field_names(cls) -> frozenset:
        """The set of knob names (used to validate config dicts)."""
        return frozenset(f.name for f in fields(cls))


class Dispatcher:
    """One dispatcher node: its own view, breakers, and admission."""

    __slots__ = (
        "index",
        "agent",
        "alive",
        "inflight",
        "admission",
        "breakers",
        "forwards",
        "sheds",
    )

    def __init__(self, tier: "DispatcherTier", index: int, node_id: int):
        cluster = tier.cluster
        policy = tier.policy
        self.index = index
        #: policy-facing identity: per-selector state (broadcast tables,
        #: JIQ idle queues, ...) lives in ``agent.state``
        self.agent = ClientNode(cluster.sim, node_id)
        self.alive = True
        #: requests forwarded through this dispatcher and not yet
        #: terminally resolved (the admission controller's load index)
        self.inflight = 0
        self.admission = None
        if policy.admit_sojourn_target is not None:
            from repro.cluster.overload import OverloadController, OverloadPolicy

            self.admission = OverloadController(
                OverloadPolicy(
                    sojourn_target=policy.admit_sojourn_target,
                    interval=policy.admit_interval,
                    ewma_alpha=policy.admit_ewma_alpha,
                ),
                cluster.sim,
                workers=cluster.n_servers,
            )
        #: per-server circuit breakers local to this dispatcher's view
        #: (empty dict when breakers are off)
        self.breakers = {}
        if policy.breaker_threshold is not None:
            from repro.cluster.reliability import CircuitBreaker

            self.breakers = {
                server.node_id: CircuitBreaker(
                    policy.breaker_threshold, policy.breaker_cooldown
                )
                for server in cluster.servers
            }
        self.forwards = 0
        self.sheds = 0

    @property
    def node_id(self) -> int:
        return self.agent.node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Dispatcher #{self.index} node={self.node_id} "
            f"alive={self.alive} inflight={self.inflight}>"
        )


class DispatcherTier:
    """Runtime for one cluster's :class:`DispatcherPolicy`.

    Installed as ``cluster.dispatchers`` (``None`` when the tier is
    off). The cluster calls in at well-defined lifecycle points
    (:meth:`route`, :meth:`release`, :meth:`on_attempt_timeout`,
    :meth:`on_server_reject`); message deliveries land on the
    ``_deliver_*`` handlers.
    """

    def __init__(self, cluster: "ServiceCluster", policy: DispatcherPolicy):
        assert policy.count is not None
        self.cluster = cluster
        self.policy = policy
        base = cluster.n_servers + cluster.n_clients
        self.dispatchers = [
            Dispatcher(self, k, base + k) for k in range(policy.count)
        ]
        self._by_node = {d.node_id: d for d in self.dispatchers}
        #: request index -> dispatcher index currently holding the
        #: in-flight accounting (exactly-once acquire/release)
        self._inflight_index: dict[int, int] = {}
        #: (client_node_id, dispatcher_index) -> suspect-until time
        #: (failover assignment only)
        self._suspect: dict[tuple[int, int], float] = {}
        # Counters (surfaced through the chaos_counters channel).
        self.rejects_sent = 0
        self.stale_forwards = 0
        self.stale_rejects = 0
        self.timeouts_charged = 0
        self.failovers = 0
        self.responses_dropped = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _primary_index(self, client_node_id: int) -> int:
        return (client_node_id - self.cluster.n_servers) % len(self.dispatchers)

    def _pick(self, client_node_id: int) -> int:
        primary = self._primary_index(client_node_id)
        if self.policy.assignment != "failover":
            return primary
        now = self.cluster.sim.now
        k = len(self.dispatchers)
        for offset in range(k):
            index = (primary + offset) % k
            if self._suspect.get((client_node_id, index), 0.0) <= now:
                if offset:
                    self.failovers += 1
                return index
        # Every dispatcher is suspect: fail open to the primary rather
        # than stalling (mirrors the breaker fail-open contract).
        return primary

    def _mark_suspect(self, client_node_id: int, index: int) -> None:
        if self.policy.assignment == "failover":
            self._suspect[(client_node_id, index)] = (
                self.cluster.sim.now + self.policy.suspect_cooldown
            )

    def route(self, client: ClientNode, request: "Request") -> None:
        """Forward a (re-)selection to the client's assigned dispatcher.

        Called by the cluster in place of running the policy at the
        client. The attempt timeout armed by ``_safe_select`` covers the
        forward hop, the dispatcher-side selection, and the dispatch —
        a forward swallowed by a dead/partitioned dispatcher recovers
        through it like any other lost message.
        """
        # A retry abandons the previous attempt's in-flight accounting.
        self.release(request)
        index = self._pick(client.node_id)
        dispatcher = self.dispatchers[index]
        request.dispatcher_id = index
        self.cluster.network.send(
            MessageKind.FORWARD,
            client.node_id,
            dispatcher.node_id,
            (request, request.retries),
            self._deliver_forward,
        )

    def _deliver_forward(self, message: Message) -> None:
        request, attempt = message.payload
        if request.done or request.queued_at >= 0 or request.retries != attempt:
            # The request moved on before the forward landed: its
            # timeout fired and a retry already queued somewhere, or
            # chaos duplicated the forward.
            self.stale_forwards += 1
            return
        dispatcher = self._by_node[message.dst]
        if not dispatcher.alive:
            # Crashed after the message cleared the fault gates; the
            # client's attempt timeout recovers.
            return
        if dispatcher.admission is not None and not dispatcher.admission.admit(
            dispatcher.inflight
        ):
            # Tier-level shed: NACK the client immediately (the attempt
            # timeout stays armed — loss recovery for an eaten NACK).
            dispatcher.sheds += 1
            self.rejects_sent += 1
            self._mark_suspect(request.client_id, dispatcher.index)
            self.cluster.network.send(
                MessageKind.REJECT,
                dispatcher.node_id,
                request.client_id,
                (request, attempt, dispatcher.index),
                self._deliver_tier_reject,
            )
            return
        dispatcher.forwards += 1
        self._acquire(dispatcher, request)
        self._select_at(dispatcher, request)

    def _select_at(self, dispatcher: Dispatcher, request: "Request") -> None:
        """Run the cluster's policy at the dispatcher's agent/view."""
        from repro.core.base import NoCandidatesError

        cluster = self.cluster
        cluster._selecting_request = request  # noqa: SLF001 - lifecycle hook
        try:
            cluster.policy.select(dispatcher.agent, request)
        except NoCandidatesError:
            # The dispatcher's whole view expired (mass failure / fresh
            # lagged view): re-select at this dispatcher after a delay.
            cluster.sim.after(
                cluster.reselect_delay, self._reselect_at, (dispatcher.index, request)
            )
        finally:
            cluster._selecting_request = None  # noqa: SLF001

    def _reselect_at(self, arg: tuple[int, "Request"]) -> None:
        index, request = arg
        if request.done or request.queued_at >= 0:
            return
        if self._inflight_index.get(request.index) != index:
            # The request was re-routed (timeout retry) meanwhile.
            return
        dispatcher = self.dispatchers[index]
        if not dispatcher.alive:
            return
        self._select_at(dispatcher, request)

    def _deliver_tier_reject(self, message: Message) -> None:
        request, attempt, index = message.payload
        if request.done or request.queued_at >= 0 or request.retries != attempt:
            self.stale_rejects += 1
            return
        self._mark_suspect(request.client_id, index)
        cluster = self.cluster
        handle = cluster._timeout_handles.pop(request.index, None)  # noqa: SLF001
        if handle is not None:
            cluster.sim.cancel(handle)
        cluster._retry(request)  # noqa: SLF001 - lifecycle hook

    # ------------------------------------------------------------------
    # in-flight accounting (exactly-once acquire/release)
    # ------------------------------------------------------------------
    def _acquire(self, dispatcher: Dispatcher, request: "Request") -> None:
        previous = self._inflight_index.pop(request.index, None)
        if previous is not None:
            self.dispatchers[previous].inflight -= 1
        self._inflight_index[request.index] = dispatcher.index
        dispatcher.inflight += 1

    def release(self, request: "Request") -> None:
        """Drop the in-flight accounting for a resolved/abandoned attempt.

        Idempotent; ``request.dispatcher_id`` is left intact so late
        bookkeeping (``selector_for``) still resolves to the dispatcher
        that handled the request.
        """
        index = self._inflight_index.pop(request.index, None)
        if index is not None:
            self.dispatchers[index].inflight -= 1

    def inflight_total(self) -> int:
        """Live in-flight accounting across the tier (test hook)."""
        return sum(d.inflight for d in self.dispatchers)

    # ------------------------------------------------------------------
    # response backhaul
    # ------------------------------------------------------------------
    def backhaul_target(self, request: "Request") -> Optional[Dispatcher]:
        """The dispatcher a server response should return through
        (``None`` for requests that never routed through the tier,
        e.g. hedge clones dispatched directly by the client)."""
        index = request.dispatcher_id
        if index < 0:
            return None
        return self.dispatchers[index]

    def _deliver_backhaul(self, message: Message) -> None:
        request: "Request" = message.payload
        dispatcher = self._by_node[message.dst]
        if not dispatcher.alive:
            # Response lost with the dispatcher; the client's attempt
            # timeout recovers (belt-and-braces — with a chaos injector
            # installed the dead set already swallowed the message).
            self.responses_dropped += 1
            return
        if dispatcher.admission is not None:
            dispatcher.admission.observe_completion(
                request, max(0, dispatcher.inflight - 1)
            )
        if dispatcher.breakers and request.server_id >= 0:
            dispatcher.breakers[request.server_id].record_success(self.cluster.sim.now)
        self.cluster.network.send(
            MessageKind.RESPONSE,
            dispatcher.node_id,
            request.client_id,
            request,
            self.cluster._deliver_response,  # noqa: SLF001 - lifecycle hook
        )

    # ------------------------------------------------------------------
    # failure signals
    # ------------------------------------------------------------------
    def on_attempt_timeout(self, request: "Request") -> None:
        """An attempt timed out: suspect the handling dispatcher and
        charge its breaker for the last server it reached (if any)."""
        index = request.dispatcher_id
        if index < 0:
            return
        self.timeouts_charged += 1
        self._mark_suspect(request.client_id, index)
        dispatcher = self.dispatchers[index]
        if dispatcher.breakers and request.server_id >= 0:
            dispatcher.breakers[request.server_id].record_failure(self.cluster.sim.now)

    def on_server_reject(self, request: "Request", server_id: int) -> None:
        """A server rejected the request: the handling dispatcher's
        breaker for that server absorbs the signal."""
        index = request.dispatcher_id
        if index < 0:
            return
        dispatcher = self.dispatchers[index]
        if dispatcher.breakers:
            dispatcher.breakers[server_id].record_failure(self.cluster.sim.now)

    def filter_view(self, node_id: int, members: Sequence[int]) -> Sequence[int]:
        """Apply the owning dispatcher's per-server breakers to a
        candidate set (identity for non-dispatcher selectors). Fails
        open like :meth:`ReliabilityEngine.filter_candidates`."""
        dispatcher = self._by_node.get(node_id)
        if dispatcher is None or not dispatcher.breakers:
            return members
        now = self.cluster.sim.now
        allowed = [s for s in members if dispatcher.breakers[s].allows(now)]
        return allowed if allowed else members

    def selector_agent(self, request: "Request") -> Optional[ClientNode]:
        """The dispatcher agent that handled ``request`` (``None`` when
        it never routed through the tier)."""
        index = request.dispatcher_id
        if index < 0:
            return None
        return self.dispatchers[index].agent

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """Archive-ready tier tallies (chaos_counters channel)."""
        sheds = 0
        forwards = 0
        breaker_opens = 0
        for dispatcher in self.dispatchers:
            forwards += dispatcher.forwards
            sheds += dispatcher.sheds
            breaker_opens += sum(b.opens for b in dispatcher.breakers.values())
        return {
            "dispatcher_forwards": float(forwards),
            "dispatcher_sheds": float(sheds),
            "dispatcher_rejects_sent": float(self.rejects_sent),
            "dispatcher_stale_forwards": float(self.stale_forwards),
            "dispatcher_stale_rejects": float(self.stale_rejects),
            "dispatcher_timeouts_charged": float(self.timeouts_charged),
            "dispatcher_failovers": float(self.failovers),
            "dispatcher_responses_dropped": float(self.responses_dropped),
            "dispatcher_breaker_opens": float(breaker_opens),
        }

    def per_dispatcher(self) -> list[dict[str, float]]:
        """Per-dispatcher accounting rows (telemetry export)."""
        return [
            {
                "index": float(d.index),
                "node_id": float(d.node_id),
                "forwards": float(d.forwards),
                "sheds": float(d.sheds),
                "inflight": float(d.inflight),
                "alive": float(d.alive),
            }
            for d in self.dispatchers
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DispatcherTier k={len(self.dispatchers)} "
            f"assignment={self.policy.assignment} "
            f"inflight={self.inflight_total()}>"
        )
