"""Per-request record threaded through the lifecycle."""

from __future__ import annotations

import math

__all__ = ["Request"]


class Request:
    """One service access, from client initiation to response receipt.

    Timestamps (seconds, simulation clock); ``nan`` until reached:

    - ``arrival_time`` — the client initiates the access (this is when
      the load balancing policy starts working);
    - ``dispatch_time`` — the policy has chosen a server and the request
      leaves the client (``dispatch_time - arrival_time`` is the paper's
      *polling time* for polling policies, 0 for instant policies);
    - ``enqueue_time`` — the request reaches the server's queue;
    - ``start_time`` — a worker begins service;
    - ``completion_time`` — service done, response sent;
    - ``response_time`` — filled at the client: response receipt minus
      ``arrival_time`` (the paper's performance index).
    """

    __slots__ = (
        "index",
        "client_id",
        "service_time",
        "arrival_time",
        "dispatch_time",
        "enqueue_time",
        "start_time",
        "completion_time",
        "response_time",
        "server_id",
        "retries",
        "failed",
        "done",
        "queued_at",
        "decision",
        "hedge",
        "rejects",
        "last_rejected_by",
        "dispatcher_id",
    )

    def __init__(self, index: int, client_id: int, service_time: float, arrival_time: float):
        self.index = index
        self.client_id = client_id
        self.service_time = service_time
        self.arrival_time = arrival_time
        self.dispatch_time = math.nan
        self.enqueue_time = math.nan
        self.start_time = math.nan
        self.completion_time = math.nan
        self.response_time = math.nan
        self.server_id = -1
        self.retries = 0
        self.failed = False
        #: terminal flag: set once on the first completion or terminal
        #: failure; later (duplicated/stale) deliveries of the same
        #: request are discarded against it
        self.done = False
        #: node id of the server currently holding the request (queued
        #: or in service), -1 otherwise; guards against the same request
        #: occupying two queues at once under duplication/timeout races
        self.queued_at = -1
        #: telemetry decision annotation ``(perceived_load, observed_at)``
        #: set by telemetry-aware policies via
        #: :meth:`repro.telemetry.TelemetryCollector.note_decision`;
        #: always None when telemetry is disabled
        self.decision = None
        #: back-pointer from a hedge copy to its primary request; None
        #: for ordinary requests. Copies share the primary's ``index``
        #: but carry their own ``done``/``queued_at`` guards so the
        #: duplicate-suppression machinery works per copy (see
        #: :mod:`repro.cluster.reliability`)
        self.hedge = None
        #: admission-control rejections this request has absorbed
        #: (static ``max_queue`` bound or adaptive shedding)
        self.rejects = 0
        #: node id of the server that most recently rejected this
        #: request, -1 otherwise; the immediately following re-selection
        #: excludes it from the candidate set (cleared at dispatch)
        self.last_rejected_by = -1
        #: index of the dispatcher-tier dispatcher handling the current
        #: attempt, -1 when the tier is off or the request was never
        #: routed through it (hedge clones dispatch directly); set by
        #: :meth:`repro.cluster.dispatcher.DispatcherTier.route`
        self.dispatcher_id = -1

    @property
    def poll_time(self) -> float:
        """Selection latency: dispatch - arrival (the paper's polling time)."""
        return self.dispatch_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        """Time spent waiting in the server queue."""
        return self.start_time - self.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Request #{self.index} client={self.client_id} "
            f"server={self.server_id} s={self.service_time:.6f}>"
        )
