"""Application-level service framework (Neptune's programming model).

The paper's infrastructure "encapsulates an application-level network
service through a service access interface which contains several
RPC-like access methods", and services *aggregate*: Figure 1's photo
album calls into a partitioned image store. This module provides that
programming model on top of the cluster substrate:

- a **handler** is a generator registered per service; it yields
  :func:`compute` directives (hold a worker thread and burn CPU) and
  :func:`call` directives (a nested, load-balanced access to another
  service — the worker thread blocks, exactly like Neptune's
  thread-pool servers) and returns its reply value;
- an :class:`AppNode` runs handlers on a bounded worker pool with a
  FIFO queue; its load index is queue length (queued + running);
- an :class:`ApplicationCluster` wires placement
  (:class:`~repro.cluster.service.PartitionMap`), random-polling or
  random selection per replica group, request/response messaging, and
  per-service response-time metrics.

Every node is simultaneously a server and an internal client (the
paper's flat architecture): nested calls from a handler are balanced
exactly like external ones.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.cluster.service import PartitionMap, ServiceSpec
from repro.core.base import NoCandidatesError, choose_min_with_ties
from repro.net.latency import ConstantLatency, PAPER_NET, PaperNetworkConstants
from repro.net.message import Message, MessageKind
from repro.net.transport import Network
from repro.sim.engine import SimulationError, Simulator
from repro.sim.monitor import TallyRecorder
from repro.sim.process import Process
from repro.sim.rng import RngHub

__all__ = [
    "ApplicationCluster",
    "AppNode",
    "AppRequest",
    "call",
    "compute",
]


class _Compute:
    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"compute time must be >= 0, got {seconds}")
        self.seconds = seconds


class _Call:
    __slots__ = ("service", "partition", "payload")

    def __init__(self, service: str, partition: int, payload: Any):
        self.service = service
        self.partition = partition
        self.payload = payload


def compute(seconds: float) -> _Compute:
    """Handler directive: occupy the worker for ``seconds`` of CPU."""
    return _Compute(seconds)


def call(service: str, partition: int = 0, payload: Any = None) -> _Call:
    """Handler directive: nested load-balanced access; yields the reply."""
    return _Call(service, partition, payload)


class AppRequest:
    """One service access in the application framework."""

    __slots__ = ("index", "service", "partition", "payload", "src_node",
                 "submit_time", "start_time", "finish_time")

    def __init__(self, index: int, service: str, partition: int, payload: Any,
                 src_node: int, submit_time: float):
        self.index = index
        self.service = service
        self.partition = partition
        self.payload = payload
        self.src_node = src_node
        self.submit_time = submit_time
        self.start_time = float("nan")
        self.finish_time = float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AppRequest #{self.index} {self.service}/p{self.partition}>"


Handler = Callable[["ApplicationCluster", AppRequest], Generator]


class AppNode:
    """A node executing service handlers on a worker thread pool."""

    __slots__ = ("cluster", "node_id", "workers", "running", "queue", "completed")

    def __init__(self, cluster: "ApplicationCluster", node_id: int, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cluster = cluster
        self.node_id = node_id
        self.workers = workers
        self.running = 0
        self.queue: deque[tuple[AppRequest, Callable[[Any], None]]] = deque()
        self.completed = 0

    @property
    def queue_length(self) -> int:
        """Load index: running + queued accesses."""
        return self.running + len(self.queue)

    def submit(self, request: AppRequest, on_done: Callable[[Any], None]) -> None:
        """Accept a request; ``on_done(result)`` fires at local completion."""
        if self.running < self.workers:
            self._start(request, on_done)
        else:
            self.queue.append((request, on_done))

    def _start(self, request: AppRequest, on_done: Callable[[Any], None]) -> None:
        self.running += 1
        request.start_time = self.cluster.sim.now
        handler = self.cluster.handler_for(request.service)
        process = Process(
            self.cluster.sim,
            self._drive(handler(self.cluster.node_context(self.node_id), request)),
            name=f"{request.service}@{self.node_id}",
        )
        process.add_callback(lambda p, r=request, cb=on_done: self._finish(p, r, cb))

    def _drive(self, generator: Generator) -> Generator:
        """Interpret handler directives on the simulator."""
        try:
            directive = next(generator)
        except StopIteration as stop:
            return stop.value
        while True:
            if isinstance(directive, _Compute):
                if directive.seconds > 0:
                    yield directive.seconds
                value = None
            elif isinstance(directive, _Call):
                value = yield self.cluster.async_call(
                    self.node_id, directive.service, directive.partition,
                    directive.payload,
                )
            else:
                raise TypeError(
                    f"handler yielded {directive!r}; expected compute()/call()"
                )
            try:
                directive = generator.send(value)
            except StopIteration as stop:
                return stop.value

    def _finish(self, process: Process, request: AppRequest,
                on_done: Callable[[Any], None]) -> None:
        self.running -= 1
        self.completed += 1
        request.finish_time = self.cluster.sim.now
        if self.queue:
            queued_request, queued_done = self.queue.popleft()
            self._start(queued_request, queued_done)
        if process.exception is not None:
            raise SimulationError(
                f"handler for {request.service!r} failed"
            ) from process.exception
        on_done(process.value)


class ApplicationCluster:
    """A multi-service cluster with handler-defined services.

    Parameters
    ----------
    n_nodes:
        Service nodes (ids 0..n_nodes-1). External client ids continue
        after them.
    poll_size:
        Replica selection: 0 = uniform random; d >= 1 = random polling
        with d inquiries (queue length read at inquiry arrival).
    workers:
        Worker threads per node.
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        workers: int = 2,
        poll_size: int = 2,
        n_clients: int = 1,
        constants: PaperNetworkConstants = PAPER_NET,
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if poll_size < 0:
            raise ValueError(f"poll_size must be >= 0, got {poll_size}")
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.sim = Simulator()
        self.rng_hub = RngHub(seed)
        self.constants = constants
        self.network = Network(
            self.sim, self.rng_hub.stream("net.latency"),
            ConstantLatency(constants.poll_one_way),
        )
        one_way = ConstantLatency(constants.request_one_way)
        self.network.set_latency(MessageKind.REQUEST, one_way)
        self.network.set_latency(MessageKind.RESPONSE, one_way)
        self.nodes = [AppNode(self, i, workers) for i in range(n_nodes)]
        self.n_clients = n_clients
        self.client_ids = [n_nodes + j for j in range(n_clients)]
        self.placement = PartitionMap()
        self.poll_size = poll_size
        self._handlers: dict[str, Handler] = {}
        self._rng_select = self.rng_hub.stream("app.select")
        self._next_request = 0
        self.response_times: dict[str, TallyRecorder] = {}
        self._outstanding = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def place_service(
        self,
        spec: ServiceSpec,
        node_ids: list[int],
        handler: Handler,
        workers: Optional[int] = None,
    ) -> None:
        """Place a service's replica groups and register its handler.

        ``workers`` optionally resizes the hosting nodes' thread pools —
        Neptune sizes the pool per service "to strike the best balance
        between concurrency and efficiency" (CPU-bound handlers want few
        threads; handlers that block on nested calls want many).
        """
        for node_id in node_ids:
            if not 0 <= node_id < len(self.nodes):
                raise ValueError(f"unknown node id {node_id}")
        self.placement.place(spec, node_ids)
        self._handlers[spec.name] = handler
        self.response_times[spec.name] = TallyRecorder()
        if workers is not None:
            for node_id in node_ids:
                self.set_workers(node_id, workers)

    def set_workers(self, node_id: int, workers: int) -> None:
        """Resize one node's worker pool (takes effect for new starts)."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.nodes[node_id].workers = workers

    def handler_for(self, service: str) -> Handler:
        try:
            return self._handlers[service]
        except KeyError:
            raise KeyError(f"no handler registered for service {service!r}") from None

    def node_context(self, node_id: int) -> "ApplicationCluster":
        """The context handlers receive (currently the cluster itself)."""
        return self

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def async_call(self, src_id: int, service: str, partition: int, payload: Any):
        """Balanced access to (service, partition); returns a Signal that
        succeeds with the handler's return value."""
        from repro.sim.events import Signal

        signal = Signal(self.sim, f"call:{service}")
        candidates = self.placement.replicas(service, partition)
        if not candidates:
            raise NoCandidatesError(f"no replicas for {service}/{partition}")
        request = AppRequest(
            self._next_request, service, partition, payload, src_id, self.sim.now
        )
        self._next_request += 1
        self._outstanding += 1

        def dispatch(target: int) -> None:
            self.network.send(
                MessageKind.REQUEST, src_id, target, request,
                lambda message: self.nodes[message.dst].submit(
                    message.payload, lambda result: respond(message.dst, result)
                ),
            )

        def respond(node_id: int, result: Any) -> None:
            self.network.send(
                MessageKind.RESPONSE, node_id, src_id, (request, result),
                deliver,
            )

        def deliver(message: Message) -> None:
            delivered_request, result = message.payload
            self.response_times[service].record(
                self.sim.now - delivered_request.submit_time
            )
            self._outstanding -= 1
            signal.succeed(result)

        self._select(src_id, candidates, dispatch)
        return signal

    def _select(self, src_id: int, candidates: list[int],
                on_chosen: Callable[[int], None]) -> None:
        if self.poll_size == 0 or len(candidates) == 1:
            on_chosen(candidates[int(self._rng_select.integers(len(candidates)))])
            return
        count = min(self.poll_size, len(candidates))
        if count == len(candidates):
            targets = list(candidates)
        else:
            picks = self._rng_select.choice(len(candidates), size=count, replace=False)
            targets = [candidates[i] for i in picks]
        replies: list[tuple[int, int]] = []

        def on_reply(message: Message) -> None:
            replies.append(message.payload)
            if len(replies) == len(targets):
                ids = [node for node, _ in replies]
                values = [q for _, q in replies]
                on_chosen(choose_min_with_ties(ids, values, self._rng_select))

        def on_poll(message: Message) -> None:
            node = self.nodes[message.dst]
            self.network.send(
                MessageKind.POLL_REPLY, node.node_id, message.src,
                (node.node_id, node.queue_length), on_reply,
            )

        for target in targets:
            self.network.send(MessageKind.POLL, src_id, target, None, on_poll)

    # ------------------------------------------------------------------
    # workload driving
    # ------------------------------------------------------------------
    def run_workload(
        self,
        service: str,
        interarrival: np.ndarray,
        partition_fn: Optional[Callable[[int, np.random.Generator], int]] = None,
        payload_fn: Optional[Callable[[int], Any]] = None,
    ) -> TallyRecorder:
        """Submit one access per gap from rotating external clients and
        run to completion; returns the service's response-time tally."""
        gaps = np.ascontiguousarray(interarrival, dtype=np.float64)
        if gaps.ndim != 1 or gaps.size == 0:
            raise ValueError("interarrival must be a non-empty 1-D array")
        arrival_times = np.cumsum(gaps)
        total = int(gaps.shape[0])
        done = [0]
        rng = self.rng_hub.stream("app.workload")

        def submit(index: int) -> None:
            if index + 1 < total:
                self.sim.at(float(arrival_times[index + 1]), submit, index + 1)
            client = self.client_ids[index % self.n_clients]
            partition = partition_fn(index, rng) if partition_fn else 0
            payload = payload_fn(index) if payload_fn else None
            signal = self.async_call(client, service, partition, payload)
            signal.add_callback(lambda s: done.__setitem__(0, done[0] + 1))

        self.sim.at(float(arrival_times[0]), submit, 0)
        while done[0] < total:
            executed = self.sim.events_executed
            self.sim.run(max_events=100_000)
            if self.sim.events_executed == executed:
                raise SimulationError("application workload deadlocked")
        return self.response_times[service]
