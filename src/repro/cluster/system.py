"""The service cluster: request lifecycle + policy context.

:class:`ServiceCluster` wires the simulator, the network, server and
client nodes, an optional availability subsystem, an optional
prototype-overhead model, and one load-balancing policy. It drives the
paper's request lifecycle:

1. a request *arrives* at a client (trace- or process-generated);
2. the policy *selects* a server — instantly (random/broadcast/ideal)
   or after polling/manager round trips (``poll_time`` is the
   select-to-dispatch latency);
3. the request travels to the server (half of the measured 516 µs
   request+response latency), queues FIFO, is serviced non-preemptively;
4. the response travels back; response time = receipt − arrival.

The cluster object is also the *context* passed to policies
(:meth:`available_servers`, :meth:`dispatch`, :meth:`poll_server`,
:attr:`servers`, :meth:`rng`, ...).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.availability import (
    AvailabilityChannel,
    ServiceMappingTable,
    ServicePublisher,
)
from repro.cluster.client import ClientNode
from repro.cluster.request import Request
from repro.cluster.server import ServerNode
from repro.net.latency import ConstantLatency, PAPER_NET, PaperNetworkConstants
from repro.net.message import Message, MessageKind
from repro.net.transport import Network
from repro.sim.calendar import make_simulator
from repro.sim.engine import EventHandle, SimulationError
from repro.sim.rng import RngHub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.autoscaler import AutoscalerPolicy
    from repro.cluster.dispatcher import DispatcherPolicy
    from repro.cluster.overload import OverloadPolicy
    from repro.cluster.reliability import ReliabilityPolicy
    from repro.core.base import LoadBalancer

__all__ = ["ServiceCluster", "ClusterMetrics"]

#: service name used when the availability subsystem is enabled with the
#: default single fully-replicated service
DEFAULT_SERVICE = "service"


class _RunComplete(Exception):
    """Internal: unwinds the event loop the moment the last request
    finishes, so self-perpetuating control loops (broadcast
    announcements, availability refreshes) don't keep executing."""


class ClusterMetrics:
    """Per-request measurement arrays (NumPy, preallocated)."""

    __slots__ = (
        "n",
        "arrival_time",
        "response_time",
        "poll_time",
        "queue_wait",
        "server_id",
        "retries",
        "failed",
    )

    def __init__(self, n: int):
        self.n = n
        self.arrival_time = np.full(n, np.nan)
        self.response_time = np.full(n, np.nan)
        self.poll_time = np.full(n, np.nan)
        self.queue_wait = np.full(n, np.nan)
        self.server_id = np.full(n, -1, dtype=np.int32)
        self.retries = np.zeros(n, dtype=np.int32)
        self.failed = np.zeros(n, dtype=bool)

    def record(self, request: Request) -> None:
        i = request.index
        self.arrival_time[i] = request.arrival_time
        self.response_time[i] = request.response_time
        self.poll_time[i] = request.poll_time
        self.queue_wait[i] = request.queue_wait
        self.server_id[i] = request.server_id
        self.retries[i] = request.retries
        self.failed[i] = request.failed

    def measurement_slice(self, warmup_fraction: float = 0.1) -> np.ndarray:
        """Boolean mask of completed, post-warmup requests."""
        if not 0 <= warmup_fraction < 1:
            raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        mask = np.isfinite(self.response_time) & ~self.failed
        mask[: int(self.n * warmup_fraction)] = False
        return mask

    def summary(self, warmup_fraction: float = 0.1) -> dict[str, float]:
        """Headline statistics over the measurement window (seconds)."""
        mask = self.measurement_slice(warmup_fraction)
        responses = self.response_time[mask]
        polls = self.poll_time[mask]
        out = {
            "n_measured": int(mask.sum()),
            "n_failed": int(self.failed.sum()),
            "mean_response_time": float(responses.mean()) if responses.size else math.nan,
            "p50_response_time": float(np.percentile(responses, 50)) if responses.size else math.nan,
            "p90_response_time": float(np.percentile(responses, 90)) if responses.size else math.nan,
            "p95_response_time": float(np.percentile(responses, 95)) if responses.size else math.nan,
            "p99_response_time": float(np.percentile(responses, 99)) if responses.size else math.nan,
            "mean_poll_time": float(polls.mean()) if polls.size else math.nan,
        }
        return out

    def server_counts(self, n_servers: int, warmup_fraction: float = 0.1) -> np.ndarray:
        """Requests completed per server over the measurement window."""
        mask = self.measurement_slice(warmup_fraction)
        return np.bincount(self.server_id[mask], minlength=n_servers)


class ServiceCluster:
    """A simulated cluster running one policy over one workload.

    Parameters
    ----------
    n_servers, n_clients:
        Pool sizes; the paper's experiments use 16 servers and up to 6
        client nodes.
    policy:
        A :class:`repro.core.base.LoadBalancer`; bound to this cluster.
    seed:
        Experiment seed; all randomness derives from it via named
        substreams.
    constants:
        Measured network constants (defaults to the paper's).
    overhead:
        Optional prototype-fidelity overhead model
        (:class:`repro.prototype.PrototypeOverheadModel`); ``None``
        selects the paper's pure simulation model (§2).
    workers:
        Service units per server (1 = the paper's model).
    server_speeds:
        Optional per-server speed factors (heterogeneity ablation).
    availability:
        When True, run the publish/subscribe availability subsystem and
        derive candidate sets from soft state (required for failure
        experiments); when False (default), membership is static.
    request_timeout / max_retries:
        Client-side loss recovery (used with failures).
    reselect_delay:
        Wait before re-selecting after a ``NoCandidatesError`` (every
        server's soft state expired). Defaults to ``request_timeout``
        when one is set, else to 5× the workload's mean service time
        (derived in :meth:`load_workload`).
    reliability:
        Optional :class:`repro.cluster.reliability.ReliabilityPolicy`
        — deadline budgets, backoff, retry budgets, hedging, breakers.
        ``None`` (or an all-default policy) keeps the naive lifecycle
        bit-identical to a cluster built without the parameter.
    overload:
        Optional :class:`repro.cluster.overload.OverloadPolicy` —
        CoDel-style adaptive admission, fast-reject NACKs, and
        load-aware availability withdrawal, per server. ``None`` (or a
        disabled policy) keeps every path bit-identical to a cluster
        built without the parameter (DESIGN.md §12).
    dispatcher:
        Optional :class:`repro.cluster.dispatcher.DispatcherPolicy` —
        routes selections through K dispatcher nodes, each with its own
        soft-state view, admission, and breakers (DESIGN.md §16).
        ``None`` (or a disabled policy) keeps every path bit-identical
        to a cluster built without the parameter.
    autoscaler:
        Optional :class:`repro.cluster.autoscaler.AutoscalerPolicy` —
        closed-loop scaling of the publishing server pool from
        goodput/shed/p95 window signals; requires ``availability=True``.
        ``None`` (or a disabled policy) changes nothing.
    engine:
        Event-queue implementation ("heap" or "calendar"); both give
        bit-identical results (see :mod:`repro.sim.calendar`).
    """

    def __init__(
        self,
        n_servers: int,
        policy: "LoadBalancer",
        seed: int = 0,
        n_clients: int = 6,
        constants: PaperNetworkConstants = PAPER_NET,
        overhead=None,
        workers: int = 1,
        server_speeds: Optional[list[float]] = None,
        record_server_queues: bool = False,
        availability: bool = False,
        availability_refresh: float = 1.0,
        availability_ttl: float = 3.0,
        request_timeout: Optional[float] = None,
        max_retries: int = 5,
        server_max_queue: Optional[int] = None,
        reselect_delay: Optional[float] = None,
        reliability: Optional["ReliabilityPolicy"] = None,
        overload: Optional["OverloadPolicy"] = None,
        dispatcher: Optional["DispatcherPolicy"] = None,
        autoscaler: Optional["AutoscalerPolicy"] = None,
        engine: str = "heap",
    ):
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        if server_speeds is not None and len(server_speeds) != n_servers:
            raise ValueError("server_speeds length must equal n_servers")
        self.sim = make_simulator(engine)
        self.rng_hub = RngHub(seed)
        self.constants = constants
        self.overhead = overhead
        self.n_servers = n_servers
        self.n_clients = n_clients
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        if reselect_delay is not None and reselect_delay <= 0:
            raise ValueError(f"reselect_delay must be > 0, got {reselect_delay}")
        self._reselect_delay = reselect_delay
        #: fallback for the derived re-select delay until load_workload
        #: computes one from the workload's mean service time
        self._derived_reselect_delay = 0.1

        self.network = Network(
            self.sim, self.rng_hub.stream("net.latency"),
            ConstantLatency(constants.poll_one_way),
        )
        one_way = ConstantLatency(constants.request_one_way)
        poll_way = ConstantLatency(constants.poll_one_way)
        manager_way = ConstantLatency(constants.manager_one_way)
        self.network.set_latency(MessageKind.REQUEST, one_way)
        self.network.set_latency(MessageKind.RESPONSE, one_way)
        self.network.set_latency(MessageKind.REJECT, one_way)
        self.network.set_latency(MessageKind.FORWARD, one_way)
        self.network.set_latency(MessageKind.POLL, poll_way)
        self.network.set_latency(MessageKind.POLL_REPLY, poll_way)
        self.network.set_latency(MessageKind.BROADCAST, poll_way)
        self.network.set_latency(MessageKind.PUBLISH, poll_way)
        self.network.set_latency(MessageKind.MANAGER_QUERY, manager_way)
        self.network.set_latency(MessageKind.MANAGER_REPLY, manager_way)
        self.network.set_latency(MessageKind.MANAGER_NOTIFY, manager_way)

        self.servers = [
            ServerNode(
                self.sim,
                node_id=i,
                workers=workers,
                speed=1.0 if server_speeds is None else server_speeds[i],
                record_queue=record_server_queues,
                max_queue=server_max_queue,
            )
            for i in range(n_servers)
        ]
        for server in self.servers:
            server.on_complete = self._on_server_complete
        # Client node ids continue after server ids.
        self.clients = [ClientNode(self.sim, n_servers + j) for j in range(n_clients)]
        self._static_members = list(range(n_servers))

        # Dispatcher tier (optional): K dispatcher agents whose node ids
        # continue after the client ids; clients forward selections to
        # them instead of running the policy locally (DESIGN.md §16).
        # Built before the availability block so dispatcher views can
        # subscribe alongside client tables.
        #: the active :class:`~repro.cluster.dispatcher.DispatcherTier`
        #: (None when the tier is off)
        self.dispatchers = None
        if dispatcher is not None and dispatcher.enabled:
            from repro.cluster.dispatcher import DispatcherTier

            self.dispatchers = DispatcherTier(self, dispatcher)

        # Closed-loop autoscaler (optional): scales the *publishing*
        # server pool through the soft-state machinery, so it requires
        # the availability subsystem. Built before the availability
        # block so initial table priming and publisher starts can be
        # gated on the initial active set.
        #: the active :class:`~repro.cluster.autoscaler.Autoscaler`
        #: (None when autoscaling is off)
        self.autoscaler = None
        if autoscaler is not None and autoscaler.enabled:
            from repro.cluster.autoscaler import Autoscaler

            if not availability:
                raise ValueError(
                    "autoscaler requires availability=True (scale-up/-down "
                    "actuates through soft-state publish/withdrawal)"
                )
            self.autoscaler = Autoscaler(self, autoscaler)

        # Availability subsystem (optional).
        self.availability_enabled = availability
        self.publishers: dict[int, ServicePublisher] = {}
        self.mapping_tables: dict[int, ServiceMappingTable] = {}
        if availability:
            channel = AvailabilityChannel(self.network)
            self.availability_channel = channel
            scaler = self.autoscaler
            # Subscribe selector views (clients, plus dispatcher agents
            # when the tier is on) before the first publish round so no
            # announcement is lost to construction ordering.
            selector_nodes = list(self.clients)
            if self.dispatchers is not None:
                selector_nodes += [d.agent for d in self.dispatchers.dispatchers]
            view_lag = 0.0 if dispatcher is None else dispatcher.view_lag
            for node in selector_nodes:
                table = ServiceMappingTable(self.sim, ttl=availability_ttl)
                is_dispatcher_view = node.node_id >= n_servers + n_clients
                if is_dispatcher_view and view_lag > 0.0:
                    # Stale-view fault model: the dispatcher's view sees
                    # every PUBLISH a constant ``view_lag`` late.
                    channel.subscribe(
                        node.node_id,
                        lambda message, _table=table: self.sim.after(
                            view_lag, _table._on_publish, message  # noqa: SLF001
                        ),
                    )
                else:
                    table.subscribe(channel, node.node_id)
                # Prime the table so the first arrivals (before the first
                # publish round lands) see the initially-active membership.
                for server in self.servers:
                    if scaler is not None and not scaler.is_active(server.node_id):
                        continue
                    table._on_publish(  # noqa: SLF001 - controlled priming
                        Message(
                            MessageKind.PUBLISH,
                            server.node_id,
                            node.node_id,
                            (server.node_id, ((DEFAULT_SERVICE, 0),), 0.0),
                            0,
                            0.0,
                        )
                    )
                self.mapping_tables[node.node_id] = table
            for server in self.servers:
                publisher = ServicePublisher(
                    self.sim,
                    channel,
                    server.node_id,
                    entries=[(DEFAULT_SERVICE, 0)],
                    mean_interval=availability_refresh,
                    rng=self.rng_hub.stream(f"availability.publish.{server.node_id}"),
                )
                self.publishers[server.node_id] = publisher
                # Parked (not-yet-provisioned) servers stay silent until
                # the autoscaler activates them.
                if scaler is None or scaler.is_active(server.node_id):
                    publisher.start()
            if scaler is not None:
                scaler.install()

        # Overload-control subsystem (optional): one controller per
        # server, consulted by ServerNode.enqueue after the static
        # max_queue bound. Installed only when a mechanism is enabled so
        # default runs take identical code paths (the None-guard pattern
        # shared with telemetry/reliability).
        #: the active :class:`~repro.cluster.overload.OverloadPolicy`
        #: (None when overload control is off)
        self.overload = None
        if overload is not None and overload.enabled:
            from repro.cluster.overload import OverloadController

            self.overload = overload
            for server in self.servers:
                rng = (
                    self.rng_hub.stream(f"overload.shed.{server.node_id}")
                    if overload.shed_jitter > 0.0
                    else None
                )
                controller = OverloadController(
                    overload, self.sim, workers=workers, rng=rng
                )
                server.overload = controller
                if self.availability_enabled and overload.withdraw_after is not None:
                    publisher = self.publishers[server.node_id]
                    controller.on_withdraw = publisher.stop
                    controller.on_rejoin = self._make_rejoin(server, publisher)

        # Workload slots.
        self.n_requests = 0
        self._service_times: Optional[np.ndarray] = None
        self._arrival_times: Optional[np.ndarray] = None
        self.metrics: Optional[ClusterMetrics] = None
        self._completed = 0
        self._runner_active = False
        self._timeout_handles: dict[int, EventHandle] = {}

        # Resilience accounting (chaos campaigns read these).
        #: client-side request timeouts that actually triggered a retry
        self.request_timeouts_fired = 0
        #: retries triggered by a server crash/drain (distinct from
        #: timeout-driven retries, so chaos reports can attribute them)
        self.server_loss_retries = 0
        #: duplicated/stale REQUEST deliveries discarded (a copy of the
        #: request was already queued somewhere, or it already finished)
        self.duplicate_deliveries_ignored = 0
        #: RESPONSE deliveries discarded because the request had already
        #: completed or terminally failed (duplication / timeout races)
        self.stale_responses_ignored = 0
        #: fast-reject NACKs sent by overloaded servers
        self.rejects_sent = 0
        #: REJECT deliveries discarded because the request had already
        #: moved on (retry raced the NACK, or duplication)
        self.stale_rejects_ignored = 0
        #: request currently inside policy.select (candidate-set
        #: filtering excludes the server that just rejected it)
        self._selecting_request: Optional[Request] = None
        #: optional :class:`repro.cluster.failures.ChaosInjector`
        #: installed by the experiment runner for chaos configs
        self.chaos = None
        #: optional :class:`repro.telemetry.TelemetryCollector` installed
        #: by the experiment runner for telemetry-enabled configs; every
        #: touch point guards with ``is not None`` (zero overhead off,
        #: same pattern as ``Simulator.trace``)
        self.telemetry = None
        #: optional :class:`repro.verify.InvariantOracle` installed by the
        #: experiment runner for verify-enabled configs; every touch
        #: point guards with ``is not None`` (zero overhead off, same
        #: pattern as telemetry)
        self.oracle = None
        #: optional :class:`repro.cluster.reliability.ReliabilityEngine`
        #: — installed only when a policy with at least one mechanism
        #: enabled is passed, so naive runs take identical code paths
        self.reliability = None
        if reliability is not None and reliability.enabled:
            from repro.cluster.reliability import ReliabilityEngine

            self.reliability = ReliabilityEngine(self, reliability)

        self.policy = policy
        policy.bind(self)

    # ------------------------------------------------------------------
    # policy context API
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic substream (see :class:`RngHub`)."""
        return self.rng_hub.stream(name)

    def available_servers(self, client: ClientNode) -> list[int]:
        """Candidate server ids for this client's next access.

        Soft-state membership first (when the availability subsystem is
        on), then rejection exclusion, then circuit-breaker filtering
        (when the reliability layer has breakers): a breaker reacts to
        consecutive failures within milliseconds while soft-state
        expiry needs a full TTL.

        Rejection exclusion: while re-selecting a request that was just
        rejected, the rejecting server is dropped from the candidate
        set (when alternatives exist) — a saturated server must not be
        re-picked for the immediate retry it just bounced.
        """
        if not self.availability_enabled:
            members = self._static_members
        else:
            members = self.mapping_tables[client.node_id].available(DEFAULT_SERVICE, 0)
        selecting = self._selecting_request
        if selecting is not None and selecting.last_rejected_by >= 0:
            filtered = [s for s in members if s != selecting.last_rejected_by]
            if filtered:
                members = filtered
        if self.dispatchers is not None:
            members = self.dispatchers.filter_view(client.node_id, members)
        if self.reliability is not None:
            return list(self.reliability.filter_candidates(members))
        return members

    def should_publish(self, node_id: int) -> bool:
        """Whether server ``node_id`` may (re)start its availability
        publisher right now.

        Single source of truth for every publisher-restart site (crash
        recovery, overload rejoin, autoscale activation): a dead server
        must stay silent, an overload-withdrawn server re-advertises
        only through its controller's own rejoin, and a server the
        autoscaler has parked stays out of the pool even across a
        crash/recover cycle.
        """
        server = self.servers[node_id]
        if not server.alive:
            return False
        if server.overload is not None and server.overload.withdrawn:
            return False
        if self.autoscaler is not None and not self.autoscaler.is_active(node_id):
            return False
        return True

    def _make_rejoin(self, server: ServerNode, publisher: ServicePublisher):
        """Recovery callback for an overload-withdrawn server: resume
        publishing — unless the server crashed while withdrawn (the
        chaos injector owns the publisher of a dead node) or the
        autoscaler has parked it meanwhile."""

        def rejoin() -> None:
            if self.should_publish(server.node_id):
                publisher.start()

        return rejoin

    def client_for(self, request: Request) -> ClientNode:
        """The client node that originated ``request`` (node ids for
        clients continue after server ids)."""
        return self.clients[(request.client_id - self.n_servers) % self.n_clients]

    @property
    def selector_agents(self) -> list[ClientNode]:
        """The nodes that run ``policy.select`` and hold per-selector
        policy state: the dispatcher agents when the tier is on, the
        clients themselves otherwise. Policies that keep local state
        (broadcast tables, JIQ idle queues, least-connections counters)
        set up and address state through this list, never
        ``self.clients`` directly."""
        if self.dispatchers is not None:
            return [d.agent for d in self.dispatchers.dispatchers]
        return self.clients

    def selector_for(self, request: Request) -> ClientNode:
        """The selector node whose policy state should absorb a
        lifecycle notification for ``request``: the handling dispatcher
        agent when the tier routed it, else the originating client."""
        if self.dispatchers is not None:
            agent = self.dispatchers.selector_agent(request)
            if agent is not None:
                return agent
        return self.client_for(request)

    @property
    def reselect_delay(self) -> float:
        """Delay before re-selecting after an empty candidate set."""
        if self._reselect_delay is not None:
            return self._reselect_delay
        if self.request_timeout is not None:
            return self.request_timeout
        return self._derived_reselect_delay

    def poll_server(
        self,
        client: ClientNode,
        server_id: int,
        on_reply: Callable[[int, int, float], None],
    ) -> None:
        """Send a load inquiry; ``on_reply(server_id, queue_length, observed_at)``.

        ``observed_at`` is the simulation time the queue length was read
        at the server — the reply's information is already that old when
        the callback fires (telemetry derives decision staleness from it).

        Simulation model: one idle UDP round trip (290 µs), queue length
        read when the inquiry reaches the server.

        Prototype model (``overhead`` set): additionally charges client
        CPU for the send/receive, steals server CPU for handling the
        inquiry, and delays the reply by a load-dependent scheduling
        delay — the two §4.1 overhead sources. The queue length is still
        the value at inquiry arrival, so a slow reply carries *stale*
        information (§3.2's motivation for discarding slow polls).
        """
        overhead = self.overhead
        send_delay = 0.0
        if overhead is not None:
            send_delay = client.occupy(overhead.poll_send_cost)

        def deliver_poll(_message: Message) -> None:
            server = self.servers[server_id]
            queue_length = server.queue_length
            observed_at = self.sim.now
            extra = 0.0
            if overhead is not None:
                extra = overhead.sample_reply_delay(
                    server, self.rng_hub.stream("overhead.poll_delay")
                )
                server.steal_cpu(overhead.poll_cpu_cost)

            def deliver_reply(_reply: Message) -> None:
                if overhead is not None:
                    recv_delay = client.occupy(overhead.poll_recv_cost)
                    if recv_delay > 0.0:
                        self.sim.after(
                            recv_delay,
                            lambda: on_reply(server_id, queue_length, observed_at),
                        )
                        return
                on_reply(server_id, queue_length, observed_at)

            self.network.send(
                MessageKind.POLL_REPLY,
                server_id,
                client.node_id,
                None,
                deliver_reply,
                extra_delay=extra,
            )

        self.network.send(
            MessageKind.POLL,
            client.node_id,
            server_id,
            None,
            deliver_poll,
            extra_delay=send_delay,
        )

    def dispatch(self, client: ClientNode, request: Request, server_id: int) -> None:
        """Send ``request`` to ``server_id`` (policies call this once
        they have decided)."""
        if request.done:
            # A stale poll round decided after the request already
            # finished through another path (timeout retry + chaos).
            return
        if self.oracle is not None:
            self.oracle.on_dispatch(request, server_id)
        # The rejection exclusion only covers the selection that just
        # committed; later retries see the full candidate set again.
        request.last_rejected_by = -1
        request.dispatch_time = self.sim.now
        self.policy.notify_dispatch(client, request, server_id)
        self.network.send(
            MessageKind.REQUEST,
            client.node_id,
            server_id,
            request,
            self._deliver_request,
        )
        # Replace (never stack) the attempt timeout: the deadline is
        # measured from this dispatch, superseding any select-phase
        # timeout armed by _safe_select.
        self._arm_attempt_timeout(request)
        if self.reliability is not None:
            self.reliability.on_dispatch(client, request, server_id)

    def _arm_attempt_timeout(self, request: Request) -> None:
        """(Re-)arm the per-attempt timeout: the flat ``request_timeout``
        when the reliability layer is off, the deadline-budget share
        otherwise. No-op when neither is configured."""
        timeout = (
            self.request_timeout
            if self.reliability is None
            else self.reliability.attempt_timeout(request)
        )
        if timeout is None:
            return
        old = self._timeout_handles.pop(request.index, None)
        if old is not None:
            self.sim.cancel(old)
        self._timeout_handles[request.index] = self.sim.after(
            timeout, self._on_request_timeout, request
        )

    # ------------------------------------------------------------------
    # lifecycle internals
    # ------------------------------------------------------------------
    def load_workload(self, interarrival: np.ndarray, service: np.ndarray) -> None:
        """Install the request stream (aligned gap/service arrays)."""
        gaps = np.ascontiguousarray(interarrival, dtype=np.float64)
        service_times = np.ascontiguousarray(service, dtype=np.float64)
        if gaps.shape != service_times.shape or gaps.ndim != 1 or gaps.size == 0:
            raise ValueError("interarrival and service must be equal-length non-empty 1-D")
        self.n_requests = int(gaps.shape[0])
        self._arrival_times = np.cumsum(gaps)
        extra = 0.0 if self.overhead is None else self.overhead.request_cpu_overhead
        self._service_times = service_times + extra
        # Default NoCandidates re-select delay, used only when neither
        # reselect_delay nor request_timeout is configured: a few mean
        # service times, not a flat 100 ms (which is ~20x the mean
        # service time of a fine-grain request).
        mean_service = float(self._service_times.mean())
        if mean_service > 0.0:
            self._derived_reselect_delay = 5.0 * mean_service
        self.metrics = ClusterMetrics(self.n_requests)
        self._completed = 0

    def run(self, max_events_per_chunk: int = 200_000) -> ClusterMetrics:
        """Run until every request has completed (or failed terminally)."""
        if self._arrival_times is None or self.metrics is None:
            raise SimulationError("load_workload() must be called before run()")
        self.sim.at(float(self._arrival_times[0]), self._on_arrival, 0)
        self._runner_active = True
        try:
            while self._completed < self.n_requests:
                executed_before = self.sim.events_executed
                try:
                    self.sim.run(max_events=max_events_per_chunk)
                except _RunComplete:
                    break
                if self.sim.events_executed == executed_before:
                    raise SimulationError(
                        f"deadlock: {self.n_requests - self._completed} requests "
                        "incomplete but no events pending (a message was dropped "
                        "without request_timeout set?)"
                    )
        finally:
            self._runner_active = False
        if self.oracle is not None:
            self.oracle.on_run_end()
        return self.metrics

    def _on_arrival(self, index: int) -> None:
        assert self._arrival_times is not None and self._service_times is not None
        if index + 1 < self.n_requests:
            self.sim.at(float(self._arrival_times[index + 1]), self._on_arrival, index + 1)
        client = self.clients[index % self.n_clients]
        request = Request(
            index=index,
            client_id=client.node_id,
            service_time=float(self._service_times[index]),
            arrival_time=self.sim.now,
        )
        if self.oracle is not None:
            self.oracle.on_arrival(request)
        self._safe_select(client, request)

    def _safe_select(self, client: ClientNode, request: Request) -> None:
        """Run the policy; an empty candidate set becomes a delayed retry
        (e.g. every server's soft state expired after a mass failure).

        When ``request_timeout`` is set it covers the *whole* attempt,
        select phase included: a poll round whose replies are all lost
        to faults would otherwise stall the request forever. The handle
        armed here is superseded by :meth:`dispatch` (same deadline
        semantics as before for requests that do get dispatched).
        """
        from repro.core.base import NoCandidatesError

        self._arm_attempt_timeout(request)
        if self.dispatchers is not None:
            # Dispatcher tier: the selection happens at the assigned
            # dispatcher, one FORWARD hop away; the timeout armed above
            # covers the hop + remote selection + dispatch.
            self.dispatchers.route(client, request)
            return
        self._selecting_request = request
        try:
            self.policy.select(client, request)
        except NoCandidatesError:
            handle = self._timeout_handles.pop(request.index, None)
            if handle is not None:
                self.sim.cancel(handle)
            self.sim.after(self.reselect_delay, self._retry, request)
        finally:
            self._selecting_request = None

    def _deliver_request(self, message: Message) -> None:
        server = self.servers[message.dst]
        request: Request = message.payload
        if request.done or request.queued_at >= 0:
            # Duplicated delivery, or a timeout retry raced an earlier
            # copy: at most one live copy may occupy a server queue, and
            # a finished request never re-enters service.
            self.duplicate_deliveries_ignored += 1
            return
        if self.reliability is not None and self.reliability.copy_collides(
            request, server.node_id
        ):
            # A sibling copy (primary or hedge) of the same request is
            # already held by this server; two copies sharing an index
            # must never coexist in one server's bookkeeping.
            self.duplicate_deliveries_ignored += 1
            return
        if not server.alive:
            self.handle_server_loss(request)
            return
        if not server.enqueue(request):
            if self.reliability is not None and self.reliability.is_clone(request):
                # A rejected hedge copy is simply dropped — it must not
                # touch the primary's timeout handle (shared index) or
                # spawn a parallel retry lifecycle.
                self.reliability.on_clone_lost(request)
                return
            # Admission control rejected (static bound or adaptive
            # shedding): the retry, whenever it runs, must not re-pick
            # this server, and its breaker absorbs the signal.
            request.rejects += 1
            request.last_rejected_by = server.node_id
            if server.overload is not None and server.overload.policy.fast_reject:
                # Fast-reject NACK: tell the client now, over the wire,
                # instead of letting it burn its timeout budget. The
                # attempt timeout stays armed — it is the loss-recovery
                # path for a NACK the network eats.
                self.rejects_sent += 1
                self.network.send(
                    MessageKind.REJECT,
                    server.node_id,
                    request.client_id,
                    (request, request.retries),
                    self._deliver_reject,
                )
                return
            # Naive path (no overload controller): instant local retry
            # (counts against max_retries).
            if self.dispatchers is not None:
                self.dispatchers.on_server_reject(request, server.node_id)
            if self.reliability is not None:
                self.reliability.on_reject(request, server.node_id)
            handle = self._timeout_handles.pop(request.index, None)
            if handle is not None:
                self.sim.cancel(handle)
            self._retry(request)

    def _deliver_reject(self, message: Message) -> None:
        """A fast-reject NACK reached the client: retry elsewhere.

        Stale guards mirror ``_deliver_response``: the request may have
        moved on before the NACK landed — its attempt timeout fired and
        the retry already queued somewhere (``queued_at``), a later
        attempt is underway (``retries`` mismatch), it finished through
        a sibling copy (``done``) — or chaos duplicated the NACK.
        """
        request, attempt = message.payload
        if request.done or request.queued_at >= 0 or request.retries != attempt:
            self.stale_rejects_ignored += 1
            return
        handle = self._timeout_handles.pop(request.index, None)
        if handle is not None:
            self.sim.cancel(handle)
        if self.dispatchers is not None:
            self.dispatchers.on_server_reject(request, message.src)
        if self.reliability is not None:
            self.reliability.on_reject(request, message.src)
        self._retry(request)

    def _on_server_complete(self, server: ServerNode, request: Request) -> None:
        if self.dispatchers is not None:
            # Tier-routed requests return through their dispatcher so it
            # observes the completion (admission/breaker signals); a
            # dead dispatcher loses the response and the client's
            # attempt timeout recovers. Hedge clones (dispatcher_id
            # == -1) keep the direct server→client path.
            dispatcher = self.dispatchers.backhaul_target(request)
            if dispatcher is not None:
                self.network.send(
                    MessageKind.RESPONSE,
                    server.node_id,
                    dispatcher.node_id,
                    request,
                    self.dispatchers._deliver_backhaul,  # noqa: SLF001
                )
                return
        self.network.send(
            MessageKind.RESPONSE,
            server.node_id,
            request.client_id,
            request,
            self._deliver_response,
        )

    def _deliver_response(self, message: Message) -> None:
        winner: Request = message.payload
        # Hedge copies resolve to their primary: the outcome is recorded
        # exactly once against the canonical object, whichever copy's
        # response arrived first.
        request = winner if self.reliability is None else self.reliability.primary_of(winner)
        if winner.done or request.done:
            # Duplicated RESPONSE, or a late response for a request that
            # already completed/failed via a retry path (possibly via a
            # sibling hedge copy): never record a second outcome.
            self.stale_responses_ignored += 1
            return
        winner.done = True
        request.done = True
        handle = self._timeout_handles.pop(request.index, None)
        if handle is not None:
            self.sim.cancel(handle)
        winner.response_time = self.sim.now - winner.arrival_time
        if winner is not request:
            # Fold the winning copy's outcome into the primary record.
            request.response_time = winner.response_time
            request.enqueue_time = winner.enqueue_time
            request.start_time = winner.start_time
            request.completion_time = winner.completion_time
            request.server_id = winner.server_id
        assert self.metrics is not None
        self.metrics.record(request)
        if self.telemetry is not None:
            self.telemetry.on_request_complete(request)
        if self.oracle is not None:
            self.oracle.on_terminal(request, failed=False)
        self._completed += 1
        if self.dispatchers is not None:
            self.dispatchers.release(request)
        if self.autoscaler is not None:
            self.autoscaler.on_complete(request)
        # Completion notifications go to the selector that dispatched —
        # the dispatcher agent under the tier, the client otherwise —
        # so per-selector policy state (least-connections counters, ...)
        # is decremented where it was incremented.
        self.policy.notify_complete(self.selector_for(request), request)
        if self.reliability is not None:
            self.reliability.on_complete(request, winner)
        if self._completed >= self.n_requests and self._runner_active:
            raise _RunComplete

    def _on_request_timeout(self, request: Request) -> None:
        self._timeout_handles.pop(request.index, None)
        if request.done:
            return
        self.request_timeouts_fired += 1
        if self.dispatchers is not None:
            self.dispatchers.on_attempt_timeout(request)
        if self.reliability is not None:
            self.reliability.on_attempt_failure(request)
        self._retry(request)

    def handle_server_loss(self, request: Request) -> None:
        """A server crashed with this request queued/in flight."""
        if self.reliability is not None and self.reliability.is_clone(request):
            # A hedge copy hit a dead server: drop the copy; the primary
            # request's own timeout/deadline machinery recovers. (Must
            # not fall through to _retry — a clone shares the primary's
            # index, so it would cancel the primary's timeout handle.)
            self.reliability.on_clone_lost(request)
            return
        self.server_loss_retries += 1
        handle = self._timeout_handles.pop(request.index, None)
        if handle is not None:
            self.sim.cancel(handle)
        if self.reliability is not None:
            self.reliability.on_attempt_failure(request)
        self._retry(request)

    def _retry(self, request: Request) -> None:
        if request.done:
            return
        if self.reliability is not None and self.reliability.is_clone(request):
            # Admission-control rejection of a hedge copy: drop the
            # copy, never spawn a parallel retry lifecycle for it.
            self.reliability.on_clone_lost(request)
            return
        request.retries += 1
        client = self.client_for(request)
        if request.retries > self.max_retries or (
            self.reliability is not None
            and self.reliability.should_fail_fast(request)
        ):
            request.done = True
            request.failed = True
            request.response_time = math.nan
            assert self.metrics is not None
            self.metrics.record(request)
            if self.telemetry is not None:
                self.telemetry.on_request_complete(request)
            if self.dispatchers is not None:
                self.dispatchers.release(request)
            if self.autoscaler is not None:
                self.autoscaler.on_failure(request)
            # Terminal failures release per-selector policy state too
            # (least-connections charges, manager counts) — a failed
            # request is no longer outstanding anywhere.
            self.policy.notify_complete(self.selector_for(request), request)
            if self.reliability is not None:
                self.reliability.on_terminal(request)
            if self.oracle is not None:
                self.oracle.on_terminal(request, failed=True)
            self._completed += 1
            if self._completed >= self.n_requests and self._runner_active:
                raise _RunComplete
            return
        if self.reliability is not None:
            self.reliability.on_retry(request)
            delay = self.reliability.backoff_delay(request)
            if delay > 0.0:
                self.sim.after(delay, self._reselect, request)
                return
        self._safe_select(client, request)

    def _reselect(self, request: Request) -> None:
        """Run the deferred (post-backoff) re-selection for a retry."""
        if request.done:
            return
        self._safe_select(self.client_for(request), request)

    # ------------------------------------------------------------------
    def overload_counters(self) -> dict[str, float]:
        """Archive-ready admission/overload tallies.

        ``requests_rejected`` (the per-server ``rejected_count`` sum) is
        always present — rejections from the static ``max_queue`` bound
        must be visible even on runs without the overload subsystem.
        The shedding/withdrawal/NACK counters appear only when overload
        control is enabled.
        """
        counters: dict[str, float] = {
            "requests_rejected": float(
                sum(server.rejected_count for server in self.servers)
            ),
        }
        if self.overload is not None:
            totals = {
                "requests_shed": 0,
                "shed_jitter_admits": 0,
                "overload_withdrawals": 0,
                "overload_rejoins": 0,
            }
            for server in self.servers:
                if server.overload is None:
                    continue
                for name, value in server.overload.counters().items():
                    totals[name] += value
            counters.update({name: float(value) for name, value in totals.items()})
            counters["rejects_sent"] = float(self.rejects_sent)
            counters["stale_rejects_ignored"] = float(self.stale_rejects_ignored)
        return counters

    def total_stolen_cpu(self) -> float:
        """CPU seconds stolen from services by poll handling (all servers)."""
        return sum(server.stolen_cpu_total for server in self.servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServiceCluster servers={self.n_servers} clients={self.n_clients} "
            f"policy={self.policy.describe()} completed={self._completed}/{self.n_requests}>"
        )
