"""Failure injection: transient server crashes and recoveries.

The paper's architecture claim (§3.1) is that the flat, soft-state
design "allows the service infrastructure to operate smoothly in the
presence of transient failures and service evolution". This module
makes that claim testable: crash a server at a chosen time (it goes
network-silent and drops its queue), recover it later, and verify that
clients route around the failure via mapping-table expiry plus request
retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.system import ServiceCluster

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules crashes/recoveries against a :class:`ServiceCluster`."""

    def __init__(self, cluster: "ServiceCluster"):
        self.cluster = cluster
        self.dead: set[int] = set()
        self.crash_log: list[tuple[float, int, str]] = []
        cluster.network.drop_filter = self._drop_if_dead

    def _drop_if_dead(self, message: Message) -> bool:
        return message.src in self.dead or message.dst in self.dead

    def schedule_crash(self, node_id: int, at: float) -> None:
        """Crash server ``node_id`` at simulation time ``at``."""
        self.cluster.sim.at(at, self._crash, node_id)

    def schedule_recovery(self, node_id: int, at: float) -> None:
        """Recover server ``node_id`` at simulation time ``at``."""
        self.cluster.sim.at(at, self._recover, node_id)

    def _crash(self, node_id: int) -> None:
        cluster = self.cluster
        server = cluster.servers[node_id]
        if not server.alive:
            return
        server.alive = False
        self.dead.add(node_id)
        self.crash_log.append((cluster.sim.now, node_id, "crash"))
        publisher = cluster.publishers.get(node_id)
        if publisher is not None:
            publisher.stop()
        # Requests queued or in service are lost; hand them back to the
        # cluster for retry (a real client would detect this by timeout —
        # the cluster also supports that path via request_timeout).
        for request in server.drain():
            cluster.handle_server_loss(request)

    def _recover(self, node_id: int) -> None:
        cluster = self.cluster
        server = cluster.servers[node_id]
        if server.alive:
            return
        server.alive = True
        self.dead.discard(node_id)
        self.crash_log.append((cluster.sim.now, node_id, "recover"))
        publisher = cluster.publishers.get(node_id)
        if publisher is not None:
            publisher.start()
