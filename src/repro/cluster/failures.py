"""Failure injection: crashes, stragglers, partitions, message chaos.

The paper's architecture claim (§3.1) is that the flat, soft-state
design "allows the service infrastructure to operate smoothly in the
presence of transient failures and service evolution". This module
makes that claim testable, at two levels:

- :class:`FailureInjector` — the original clean-failure tool: crash a
  server at a chosen time (it goes network-silent and drops its queue),
  recover it later, and verify that clients route around the failure
  via mapping-table expiry plus request retries.
- :class:`ChaosInjector` — the campaign tool: on top of crashes it
  injects *stragglers* (a server's service rate degraded by a factor
  for an interval), *crash storms* (correlated multi-node crashes),
  and *partition schedules* (timed bidirectional cuts), and installs a
  :class:`~repro.net.faults.NetworkFaults` for message loss,
  duplication, and jitter. Every random decision flows through named
  cluster substreams (``chaos.net``, ``chaos.schedule``) so a chaos
  run is bit-identical at a fixed seed under both event engines.

:func:`resilience_counters` condenses a finished chaos run into the
flat ``{name: float}`` dict the experiment layer archives.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.net.faults import NetworkFaults, PartitionPair
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.system import ClusterMetrics, ServiceCluster

__all__ = ["FailureInjector", "ChaosSpec", "ChaosInjector", "resilience_counters"]


class FailureInjector:
    """Schedules crashes/recoveries against a :class:`ServiceCluster`."""

    def __init__(self, cluster: "ServiceCluster"):
        self.cluster = cluster
        self.dead: set[int] = set()
        self.crash_log: list[tuple[float, int, str]] = []
        # Compose with (never clobber) any filter already installed —
        # a message is dropped when *either* filter says so.
        previous = cluster.network.drop_filter
        if previous is None:
            cluster.network.drop_filter = self._drop_if_dead
        else:
            cluster.network.drop_filter = (
                lambda message: previous(message) or self._drop_if_dead(message)
            )

    def _drop_if_dead(self, message: Message) -> bool:
        return message.src in self.dead or message.dst in self.dead

    def schedule_crash(self, node_id: int, at: float) -> None:
        """Crash server ``node_id`` at simulation time ``at``."""
        self.cluster.sim.at(at, self._crash, node_id)

    def schedule_recovery(self, node_id: int, at: float) -> None:
        """Recover server ``node_id`` at simulation time ``at``."""
        self.cluster.sim.at(at, self._recover, node_id)

    def _crash(self, node_id: int) -> None:
        cluster = self.cluster
        server = cluster.servers[node_id]
        if not server.alive:
            return
        server.alive = False
        self.dead.add(node_id)
        self.crash_log.append((cluster.sim.now, node_id, "crash"))
        publisher = cluster.publishers.get(node_id)
        if publisher is not None:
            publisher.stop()
        # Requests queued or in service are lost; hand them back to the
        # cluster for retry (a real client would detect this by timeout —
        # the cluster also supports that path via request_timeout).
        for request in server.drain():
            cluster.handle_server_loss(request)

    def _recover(self, node_id: int) -> None:
        cluster = self.cluster
        server = cluster.servers[node_id]
        if server.alive:
            return
        server.alive = True
        self.dead.discard(node_id)
        self.crash_log.append((cluster.sim.now, node_id, "recover"))
        publisher = cluster.publishers.get(node_id)
        # A recovering server re-advertises only when nothing else holds
        # it out of the pool: a server that crashed *while withdrawn* by
        # its overload controller must stay silent until the controller
        # itself rejoins (its withdrawn flag survived the crash), and a
        # server the autoscaler parked stays parked across the cycle.
        if publisher is not None and cluster.should_publish(node_id):
            publisher.start()

    # ------------------------------------------------------------------
    # dispatcher-tier faults (require cluster.dispatchers)
    # ------------------------------------------------------------------
    def schedule_dispatcher_crash(self, index: int, at: float) -> None:
        """Crash dispatcher ``index`` at simulation time ``at``: it goes
        network-silent (forwards and responses to it are swallowed via
        the shared ``dead`` set) until recovery."""
        self.cluster.sim.at(at, self._crash_dispatcher, index)

    def schedule_dispatcher_recovery(self, index: int, at: float) -> None:
        """Recover dispatcher ``index`` at simulation time ``at``."""
        self.cluster.sim.at(at, self._recover_dispatcher, index)

    def _crash_dispatcher(self, index: int) -> None:
        tier = self.cluster.dispatchers
        assert tier is not None, "dispatcher faults require the dispatcher tier"
        dispatcher = tier.dispatchers[index]
        if not dispatcher.alive:
            return
        dispatcher.alive = False
        self.dead.add(dispatcher.node_id)
        self.crash_log.append((self.cluster.sim.now, dispatcher.node_id, "crash"))

    def _recover_dispatcher(self, index: int) -> None:
        tier = self.cluster.dispatchers
        assert tier is not None, "dispatcher faults require the dispatcher tier"
        dispatcher = tier.dispatchers[index]
        if dispatcher.alive:
            return
        dispatcher.alive = True
        self.dead.discard(dispatcher.node_id)
        self.crash_log.append((self.cluster.sim.now, dispatcher.node_id, "recover"))


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative chaos intensity knobs (all JSON-native scalars).

    The spec is deliberately *declarative* — counts and fractions, not
    concrete times or node ids — so it can live inside a
    :class:`~repro.experiments.config.SimulationConfig` and participate
    in the content-addressed result cache. The concrete schedule
    (which nodes, when) is derived deterministically from the cluster's
    ``chaos.schedule`` RNG substream at install time.

    Message-level faults (applied for the whole run):

    - ``loss`` / ``duplicate`` — per-message probabilities;
    - ``jitter_mean`` — mean extra exponential one-way delay (seconds).

    Scheduled events (start times uniform in the middle of the run):

    - ``stragglers`` servers have their service rate divided by
      ``straggle_factor`` for ``straggle_frac`` of the workload horizon;
    - ``partitions`` timed cuts isolate ``partition_servers`` servers
      from everyone else for ``partition_frac`` of the horizon;
    - ``storms`` correlated crash events take ``storm_size`` servers
      down simultaneously, recovering after ``storm_frac`` of the
      horizon.

    Dispatcher-tier faults (require ``dispatcher_params`` on the
    config — scheduling them against a cluster without the tier is a
    loud error):

    - ``dispatcher_storms`` crash events take ``dispatcher_storm_size``
      dispatchers network-silent, recovering after
      ``dispatcher_storm_frac`` of the horizon (at least one dispatcher
      always survives, mirroring the server-storm clamp);
    - ``dispatcher_partitions`` timed cuts isolate one dispatcher from
      every *client* (its server-side view stays fresh; its clients
      must time out and — under failover assignment — route around it)
      for ``dispatcher_partition_frac`` of the horizon.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    jitter_mean: float = 0.0
    stragglers: int = 0
    straggle_factor: float = 4.0
    straggle_frac: float = 0.25
    partitions: int = 0
    partition_frac: float = 0.12
    partition_servers: int = 1
    storms: int = 0
    storm_size: int = 2
    storm_frac: float = 0.1
    dispatcher_storms: int = 0
    dispatcher_storm_size: int = 1
    dispatcher_storm_frac: float = 0.25
    dispatcher_partitions: int = 0
    dispatcher_partition_frac: float = 0.12

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(f"duplicate must be in [0, 1], got {self.duplicate}")
        if self.jitter_mean < 0:
            raise ValueError(f"jitter_mean must be >= 0, got {self.jitter_mean}")
        if self.straggle_factor <= 0:
            raise ValueError(f"straggle_factor must be > 0, got {self.straggle_factor}")
        for name in (
            "stragglers",
            "partitions",
            "partition_servers",
            "storms",
            "storm_size",
            "dispatcher_storms",
            "dispatcher_storm_size",
            "dispatcher_partitions",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in (
            "straggle_frac",
            "partition_frac",
            "storm_frac",
            "dispatcher_storm_frac",
            "dispatcher_partition_frac",
        ):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {getattr(self, name)}")

    @classmethod
    def field_names(cls) -> frozenset:
        """The set of knob names (used to validate config dicts)."""
        return frozenset(f.name for f in fields(cls))


class ChaosInjector(FailureInjector):
    """Drives a full chaos campaign against one cluster run.

    Construction installs a :class:`NetworkFaults` on the cluster's
    network (sharing this injector's live ``dead`` set, so in-flight
    messages to crashing nodes are swallowed) and — when a ``spec`` is
    given — derives the whole event schedule from the cluster's
    ``chaos.schedule`` substream. The workload must already be loaded
    (the schedule scales with the arrival horizon).

    Every scheduled event is recorded in :attr:`events` as
    ``(kind, start_time)``; the recovery-time metric is computed against
    these start times after the run.
    """

    def __init__(self, cluster: "ServiceCluster", spec: Optional[ChaosSpec] = None):
        super().__init__(cluster)
        spec = spec if spec is not None else ChaosSpec()
        self.spec = spec
        self.faults = NetworkFaults(
            cluster.rng_hub.stream("chaos.net"),
            loss=spec.loss,
            duplicate=spec.duplicate,
            jitter_mean=spec.jitter_mean,
            unreachable=self.dead,
        )
        cluster.network.faults = self.faults
        #: (kind, start_time) for every scheduled chaos event
        self.events: list[tuple[str, float]] = []
        #: human-readable event log, appended as events execute
        self.chaos_log: list[tuple[float, str, str]] = []
        self._schedule(spec)

    # ------------------------------------------------------------------
    # schedule derivation
    # ------------------------------------------------------------------
    def _schedule(self, spec: ChaosSpec) -> None:
        if (
            spec.stragglers == 0
            and spec.partitions == 0
            and spec.storms == 0
            and spec.dispatcher_storms == 0
            and spec.dispatcher_partitions == 0
        ):
            return
        cluster = self.cluster
        if cluster._arrival_times is None:  # noqa: SLF001 - lifecycle check
            raise ValueError(
                "ChaosInjector with scheduled events requires load_workload() first "
                "(the event schedule scales with the arrival horizon)"
            )
        horizon = float(cluster._arrival_times[-1])  # noqa: SLF001
        rng = cluster.rng_hub.stream("chaos.schedule")
        n = cluster.n_servers

        def start_time() -> float:
            # Events start in the middle of the run so the warmup slice
            # stays clean and there is workload left to recover into.
            return float(rng.uniform(0.05, 0.7)) * horizon

        for _ in range(spec.stragglers):
            node = int(rng.integers(0, n))
            at = start_time()
            self.schedule_straggle(node, at, spec.straggle_frac * horizon, spec.straggle_factor)
        for _ in range(spec.partitions):
            k = min(max(1, spec.partition_servers), n - 1)
            isolated = sorted(int(i) for i in rng.choice(n, size=k, replace=False))
            everyone_else = [i for i in range(n) if i not in isolated] + [
                client.node_id for client in cluster.clients
            ]
            at = start_time()
            self.schedule_partition(isolated, everyone_else, at, spec.partition_frac * horizon)
        for _ in range(spec.storms):
            k = min(max(1, spec.storm_size), n - 1)
            victims = sorted(int(i) for i in rng.choice(n, size=k, replace=False))
            at = start_time()
            self.events.append(("storm", at))
            for node in victims:
                self.schedule_crash(node, at)
                self.schedule_recovery(node, at + spec.storm_frac * horizon)
        # Dispatcher-tier faults draw *after* every server-fault draw,
        # so adding tier knobs to a spec never perturbs an existing
        # server-fault schedule at the same seed.
        if spec.dispatcher_storms == 0 and spec.dispatcher_partitions == 0:
            return
        tier = cluster.dispatchers
        if tier is None:
            raise ValueError(
                "dispatcher_storms/dispatcher_partitions require the dispatcher "
                "tier (set dispatcher_params on the config)"
            )
        n_dispatchers = len(tier.dispatchers)
        client_ids = [client.node_id for client in cluster.clients]
        for _ in range(spec.dispatcher_storms):
            # Mirror the server-storm clamp: at least one dispatcher
            # survives (a 1-dispatcher tier cannot storm).
            k = min(max(1, spec.dispatcher_storm_size), n_dispatchers - 1)
            if k == 0:
                continue
            victims = sorted(
                int(i) for i in rng.choice(n_dispatchers, size=k, replace=False)
            )
            at = start_time()
            self.events.append(("dispatcher_storm", at))
            for index in victims:
                self.schedule_dispatcher_crash(index, at)
                self.schedule_dispatcher_recovery(
                    index, at + spec.dispatcher_storm_frac * horizon
                )
        for _ in range(spec.dispatcher_partitions):
            index = int(rng.integers(0, n_dispatchers))
            at = start_time()
            self.schedule_partition(
                [tier.dispatchers[index].node_id],
                client_ids,
                at,
                spec.dispatcher_partition_frac * horizon,
            )

    # ------------------------------------------------------------------
    # event primitives (also usable directly by tests)
    # ------------------------------------------------------------------
    def schedule_straggle(
        self, node_id: int, at: float, duration: float, factor: float
    ) -> None:
        """Divide server ``node_id``'s speed by ``factor`` over
        ``[at, at + duration)``; multiplicative, so overlaps compose."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.events.append(("straggle", at))
        self.cluster.sim.at(at, self._straggle_start, (node_id, factor))
        self.cluster.sim.at(at + duration, self._straggle_end, (node_id, factor))

    def _straggle_start(self, arg: tuple[int, float]) -> None:
        node_id, factor = arg
        server = self.cluster.servers[node_id]
        server.set_speed(server.speed / factor)
        self.chaos_log.append((self.cluster.sim.now, "straggle_start", f"server {node_id}"))

    def _straggle_end(self, arg: tuple[int, float]) -> None:
        node_id, factor = arg
        server = self.cluster.servers[node_id]
        server.set_speed(server.speed * factor)
        self.chaos_log.append((self.cluster.sim.now, "straggle_end", f"server {node_id}"))

    def schedule_partition(
        self,
        group_a: Iterable[int],
        group_b: Iterable[int],
        at: float,
        duration: float,
    ) -> None:
        """Sever ``group_a`` from ``group_b`` over ``[at, at + duration)``.

        Messages crossing the cut are dropped at send time; messages
        already in flight when the cut activates are dropped at
        delivery time.
        """
        pair = (frozenset(int(n) for n in group_a), frozenset(int(n) for n in group_b))
        self.events.append(("partition", at))
        self.cluster.sim.at(at, self._partition_start, pair)
        self.cluster.sim.at(at + duration, self._partition_end, pair)

    def _partition_start(self, pair: PartitionPair) -> None:
        self.faults.add_partition(pair[0], pair[1])
        self.chaos_log.append(
            (self.cluster.sim.now, "partition_start", f"isolated {sorted(pair[0])}")
        )

    def _partition_end(self, pair: PartitionPair) -> None:
        self.faults.remove_partition(pair)
        self.chaos_log.append(
            (self.cluster.sim.now, "partition_end", f"healed {sorted(pair[0])}")
        )

    def _crash(self, node_id: int) -> None:  # extend the log, keep semantics
        super()._crash(node_id)
        self.chaos_log.append((self.cluster.sim.now, "crash", f"server {node_id}"))

    def _recover(self, node_id: int) -> None:
        super()._recover(node_id)
        self.chaos_log.append((self.cluster.sim.now, "recover", f"server {node_id}"))

    def _crash_dispatcher(self, index: int) -> None:
        super()._crash_dispatcher(index)
        self.chaos_log.append(
            (self.cluster.sim.now, "dispatcher_crash", f"dispatcher {index}")
        )

    def _recover_dispatcher(self, index: int) -> None:
        super()._recover_dispatcher(index)
        self.chaos_log.append(
            (self.cluster.sim.now, "dispatcher_recover", f"dispatcher {index}")
        )


def resilience_counters(
    injector: "ChaosInjector", metrics: "ClusterMetrics"
) -> dict[str, float]:
    """Condense a finished chaos run into archive-ready counters.

    Recovery time per chaos event = backlog drain time: for an event
    starting at ``t``, the largest ``completion - t`` over completed
    requests that arrived at or before ``t`` but completed after it
    (0 when no request straddles the event).
    """
    cluster = injector.cluster
    faults = injector.faults
    counters: dict[str, float] = {
        "messages_lost": float(faults.total_lost()),
        "messages_duplicated": float(faults.total_duplicated()),
        "messages_partition_dropped": float(faults.total_partition_dropped()),
        "request_timeouts_fired": float(cluster.request_timeouts_fired),
        "server_loss_retries": float(cluster.server_loss_retries),
        "duplicate_deliveries_ignored": float(cluster.duplicate_deliveries_ignored),
        "stale_responses_ignored": float(cluster.stale_responses_ignored),
        "total_retries": float(int(metrics.retries.sum())),
        "requests_lost": float(int(metrics.failed.sum())),
        "n_chaos_events": float(len(injector.events)),
    }
    if cluster.reliability is not None:
        counters.update(cluster.reliability.counters())
    # Admission-control visibility: the rejected_count sum is always
    # reported (rejections were previously invisible in every report);
    # shed/withdrawal/NACK counters join it when overload control is on.
    counters.update(cluster.overload_counters())
    if cluster.dispatchers is not None:
        counters.update(cluster.dispatchers.counters())
    if cluster.autoscaler is not None:
        counters.update(cluster.autoscaler.counters())
    completed = np.isfinite(metrics.response_time) & ~metrics.failed
    arrivals = metrics.arrival_time[completed]
    completions = arrivals + metrics.response_time[completed]
    recoveries = []
    for _, start in injector.events:
        straddling = (arrivals <= start) & (completions > start)
        recoveries.append(
            float((completions[straddling] - start).max()) if straddling.any() else 0.0
        )
    # 0.0 (not NaN) when no events: these dicts are compared by value in
    # the parity harness and regression tests, where NaN != NaN.
    counters["recovery_mean_s"] = float(np.mean(recoveries)) if recoveries else 0.0
    counters["recovery_max_s"] = float(np.max(recoveries)) if recoveries else 0.0
    return counters
