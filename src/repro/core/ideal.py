"""The IDEAL baseline (paper §2 and §4).

"an approach in which all server load indices can be accurately
acquired on the client side free-of-cost whenever a service request is
to be made" — i.e. join-the-shortest-queue with an instantaneous,
exact oracle. Requests still pay the normal request/response network
latency and queueing; only the *information* is free.

Note the oracle is still not clairvoyant: requests dispatched in the
last 258 µs are in flight and invisible in queue lengths, so two
near-simultaneous selects can pick the same minimum. That matches both
the paper's simulation IDEAL and physical reality.

``weight_by_speed=True`` divides queue length by server speed (a
heterogeneity extension; no-op for homogeneous clusters).
"""

from __future__ import annotations

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["IdealOracle"]


class IdealOracle(LoadBalancer):
    name = "ideal"

    def __init__(self, weight_by_speed: bool = False):
        super().__init__()
        self.weight_by_speed = weight_by_speed

    def _setup(self) -> None:
        self._rng = self.ctx.rng("policy.ideal.ties")

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        servers = self.ctx.servers
        if self.weight_by_speed:
            values = [
                (servers[i].queue_length + 1) / servers[i].speed for i in candidates
            ]
        else:
            values = [servers[i].queue_length for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            # The oracle reads live queue lengths: staleness is zero.
            telemetry.note_decision(
                request, float(servers[server_id].queue_length), self.ctx.sim.now
            )
        self.ctx.dispatch(client, request, server_id)

    def describe(self) -> str:
        return "ideal(weighted)" if self.weight_by_speed else "ideal"
