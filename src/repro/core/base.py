"""Load balancer interface and shared helpers.

A policy is bound to exactly one :class:`~repro.cluster.system.ServiceCluster`
(its *context*), and must route every request it is handed:
``select(client, request)`` must eventually call
``ctx.dispatch(client, request, server_id)`` — synchronously (random,
broadcast, ideal) or after asynchronous message exchanges (polling,
manager).

The context API a policy may use:

- ``ctx.sim`` / ``ctx.rng(name)`` / ``ctx.network`` / ``ctx.constants``
- ``ctx.servers`` — the :class:`ServerNode` list (index = node id);
  *only* oracle-style policies may read ``servers[i].queue_length``
  directly — distributed policies must learn load via messages.
- ``ctx.available_servers(client)`` — current candidate ids.
- ``ctx.poll_server(client, server_id, on_reply)`` — one load inquiry;
  ``on_reply(server_id, queue_length, observed_at)`` fires with the
  time the queue length was read at the server.
- ``ctx.dispatch(client, request, server_id)`` — commit the choice.
- ``ctx.telemetry`` — the run's
  :class:`~repro.telemetry.TelemetryCollector`, or ``None`` when
  telemetry is off. Policies that act on load information should guard
  with ``is not None`` and call
  ``ctx.telemetry.note_decision(request, perceived_load, observed_at)``
  when they commit, so spans carry decision staleness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.client import ClientNode
    from repro.cluster.request import Request
    from repro.cluster.system import ServiceCluster

__all__ = ["LoadBalancer", "choose_min_with_ties", "NoCandidatesError"]


class NoCandidatesError(RuntimeError):
    """Raised when a policy is asked to select with no live servers."""


def choose_min_with_ties(
    candidates: Sequence[int],
    values: Sequence[float],
    rng: np.random.Generator,
) -> int:
    """The candidate with the minimum value; ties broken uniformly.

    Random tie-breaking matters: with identical perceived loads (e.g.
    freshly initialized broadcast tables) deterministic argmin would
    flock every client to server 0.
    """
    if len(candidates) == 0:
        raise NoCandidatesError("empty candidate set")
    if len(candidates) != len(values):
        raise ValueError("candidates and values must have equal length")
    best = min(values)
    ties = [candidate for candidate, value in zip(candidates, values) if value == best]
    if len(ties) == 1:
        return ties[0]
    return ties[int(rng.integers(len(ties)))]


class LoadBalancer(ABC):
    """Base class for all policies."""

    #: registry key; subclasses override
    name: str = "abstract"

    def __init__(self) -> None:
        self.ctx: Optional["ServiceCluster"] = None

    def bind(self, ctx: "ServiceCluster") -> None:
        """Attach to a cluster; called exactly once by the cluster."""
        if self.ctx is not None:
            raise RuntimeError(f"policy {self.describe()} is already bound")
        self.ctx = ctx
        self._setup()

    def _setup(self) -> None:
        """Hook for post-bind initialization (tables, loops)."""

    @abstractmethod
    def select(self, client: "ClientNode", request: "Request") -> None:
        """Route ``request``: must lead to ``ctx.dispatch(...)``."""

    def notify_dispatch(
        self, client: "ClientNode", request: "Request", server_id: int
    ) -> None:
        """Called by the cluster at dispatch (for local bookkeeping)."""

    def notify_complete(self, client: "ClientNode", request: "Request") -> None:
        """Called by the cluster when the response reaches the client."""

    def describe(self) -> str:
        """Human-readable policy label for tables and figures."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
