"""Policy registry: build policies by name (used by experiment configs)."""

from __future__ import annotations

from typing import Callable

from repro.core.base import LoadBalancer
from repro.core.broadcast import BroadcastPolicy
from repro.core.ideal import IdealOracle
from repro.core.jiq import JoinIdleQueuePolicy
from repro.core.least_connections import LeastConnectionsPolicy
from repro.core.manager import CentralizedManagerPolicy
from repro.core.polling import RandomPollingPolicy
from repro.core.random_policy import RandomPolicy
from repro.core.round_robin import RoundRobinPolicy
from repro.core.stale import GlobalSnapshotPolicy

__all__ = ["make_policy", "available_policies"]

_REGISTRY: dict[str, Callable[..., LoadBalancer]] = {
    "random": RandomPolicy,
    "round_robin": RoundRobinPolicy,
    "ideal": IdealOracle,
    "jsq": IdealOracle,  # alias: IDEAL *is* join-shortest-queue with a free oracle
    "broadcast": BroadcastPolicy,
    "polling": RandomPollingPolicy,
    "manager": CentralizedManagerPolicy,
    "stale_jsq": GlobalSnapshotPolicy,
    "least_connections": LeastConnectionsPolicy,
    "jiq": JoinIdleQueuePolicy,
}


def available_policies() -> list[str]:
    """Registered policy names."""
    return sorted(_REGISTRY)


def make_policy(name: str, **params) -> LoadBalancer:
    """Instantiate a policy by registry name.

    Examples: ``make_policy("polling", poll_size=2)``,
    ``make_policy("broadcast", mean_interval=0.1)``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(**params)
