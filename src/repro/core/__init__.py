"""Load balancing policies (the paper's subject).

The paper's policies:

- :class:`~repro.core.random_policy.RandomPolicy` — uniform random.
- :class:`~repro.core.broadcast.BroadcastPolicy` — server-push load
  announcements at randomized intervals (§2.2).
- :class:`~repro.core.polling.RandomPollingPolicy` — client-pull
  power-of-d polling, with the §3.2 discard-slow-polls optimization.
- :class:`~repro.core.ideal.IdealOracle` — the free, always-accurate
  baseline the figures normalize against.
- :class:`~repro.core.manager.CentralizedManagerPolicy` — the prototype
  emulation of IDEAL via a central load-index manager over TCP (§4).

Extensions (ablations beyond the paper):

- :class:`~repro.core.round_robin.RoundRobinPolicy`,
- :class:`~repro.core.stale.GlobalSnapshotPolicy` (stale-info JSQ,
  after Mitzenmacher 2000),
- :class:`~repro.core.least_connections.LeastConnectionsPolicy`
  (client-local counts, the nginx/HAProxy family).

Use :func:`~repro.core.registry.make_policy` to build by name.
"""

from repro.core.base import LoadBalancer, choose_min_with_ties
from repro.core.random_policy import RandomPolicy
from repro.core.round_robin import RoundRobinPolicy
from repro.core.ideal import IdealOracle
from repro.core.jiq import JoinIdleQueuePolicy
from repro.core.broadcast import BroadcastPolicy
from repro.core.polling import RandomPollingPolicy
from repro.core.manager import CentralizedManagerPolicy
from repro.core.stale import GlobalSnapshotPolicy
from repro.core.least_connections import LeastConnectionsPolicy
from repro.core.registry import available_policies, make_policy

__all__ = [
    "BroadcastPolicy",
    "CentralizedManagerPolicy",
    "GlobalSnapshotPolicy",
    "IdealOracle",
    "JoinIdleQueuePolicy",
    "LeastConnectionsPolicy",
    "LoadBalancer",
    "RandomPolicy",
    "RandomPollingPolicy",
    "RoundRobinPolicy",
    "available_policies",
    "choose_min_with_ties",
    "make_policy",
]
