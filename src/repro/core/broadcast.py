"""Broadcast policy (paper §2.2).

"an agent is deployed at each server which collects the server load
information and announces it through a broadcast channel at various
intervals. It is important to have non-fixed broadcast intervals to
avoid the system self-synchronization. The intervals we use are evenly
distributed between 0.5 and 1.5 times the mean value. Each client
listens at this broadcast channel and maintains the server load
information locally. Then every service request is made to a server
with the lightest workload."

Faithfulness notes:

- Clients do **not** locally increment the perceived queue of the
  server they just picked. That is exactly what produces the paper's
  *flocking effect* — between consecutive broadcasts every client
  floods the single perceived-minimum server.
- Ties are broken uniformly at random (all tables start at zero, so a
  deterministic argmin would initially flock to server 0 forever).
- Announcement messages travel at the one-way UDP latency; each client
  applies updates at its own delivery time.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["BroadcastPolicy"]

_TABLE_KEY = "broadcast.table"
#: per-entry announce time of the value in _TABLE_KEY (t=0 for the
#: initial all-zero table) — what telemetry staleness is measured from
_TABLE_TIME_KEY = "broadcast.table_time"


class BroadcastPolicy(LoadBalancer):
    name = "broadcast"

    def __init__(self, mean_interval: float):
        super().__init__()
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be > 0, got {mean_interval}")
        self.mean_interval = mean_interval
        self.broadcasts_sent = 0

    def _setup(self) -> None:
        ctx = self.ctx
        self._rng_ties = ctx.rng("policy.broadcast.ties")
        self._rng_intervals = ctx.rng("policy.broadcast.intervals")
        from repro.net.transport import BroadcastChannel

        self._channel = BroadcastChannel(ctx.network)
        for client in ctx.selector_agents:
            client.state[_TABLE_KEY] = np.zeros(ctx.n_servers)
            client.state[_TABLE_TIME_KEY] = np.zeros(ctx.n_servers)
            self._channel.subscribe(
                client.node_id,
                lambda message, c=client: self._on_announcement(c, message),
            )
        for server in ctx.servers:
            self._schedule_announcement(server.node_id)

    # ------------------------------------------------------------------
    def _schedule_announcement(self, server_id: int) -> None:
        delay = float(self._rng_intervals.uniform(0.5, 1.5)) * self.mean_interval
        self.ctx.sim.after(delay, self._announce, server_id)

    def _announce(self, server_id: int) -> None:
        server = self.ctx.servers[server_id]
        if server.alive:
            self.broadcasts_sent += 1
            self._channel.publish(server_id, payload=(server_id, server.queue_length))
        self._schedule_announcement(server_id)

    def _on_announcement(self, client, message) -> None:
        server_id, queue_length = message.payload
        client.state[_TABLE_KEY][server_id] = queue_length
        # The load index was read when the server *sent* the
        # announcement, not when it arrived here.
        client.state[_TABLE_TIME_KEY][server_id] = message.send_time

    # ------------------------------------------------------------------
    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        table = client.state[_TABLE_KEY]
        values = [table[i] for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng_ties)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            telemetry.note_decision(
                request,
                float(table[server_id]),
                float(client.state[_TABLE_TIME_KEY][server_id]),
            )
        self.ctx.dispatch(client, request, server_id)

    def describe(self) -> str:
        return f"broadcast({self.mean_interval * 1e3:g}ms)"
