"""Join-Idle-Queue (extension; Lu et al., 2011).

A modern successor to the paper's design space: instead of clients
pulling load (polling) or servers pushing load *levels* (broadcast),
servers push a single bit — "I just went idle" — to one dispatcher
(client), which keeps a local idle list. Selection is O(1) with no
critical-path messages: pop an idle server if the list is non-empty,
fall back to uniform random otherwise.

Relative to the paper's taxonomy this is server-initiated like
broadcast, but the information is *edge-triggered* and cheap (one
message per service completion that empties a queue, not a periodic
fan-out), so it scales like polling while avoiding poll latency. The
``bench_ablation_modern`` bench compares it against polling d=2 and
least-connections across service granularities.
"""

from __future__ import annotations

from collections import deque

from repro.core.base import LoadBalancer, NoCandidatesError
from repro.net.message import Message, MessageKind

__all__ = ["JoinIdleQueuePolicy"]

_IDLE_KEY = "jiq.idle_queue"


class JoinIdleQueuePolicy(LoadBalancer):
    name = "jiq"

    def __init__(self) -> None:
        super().__init__()
        self.idle_reports_sent = 0
        self.idle_hits = 0
        self.random_fallbacks = 0

    def _setup(self) -> None:
        ctx = self.ctx
        self._rng = ctx.rng("policy.jiq")
        for client in ctx.selector_agents:
            client.state[_IDLE_KEY] = deque()
        self._next_dispatcher = 0
        for server in ctx.servers:
            server.on_idle = self._on_server_idle

    # ------------------------------------------------------------------
    def _on_server_idle(self, server) -> None:
        """Server went idle: report to one dispatcher, round robin."""
        if not server.alive:
            return
        agents = self.ctx.selector_agents
        client = agents[self._next_dispatcher % len(agents)]
        self._next_dispatcher += 1
        self.idle_reports_sent += 1
        self.ctx.network.send(
            MessageKind.OTHER,
            server.node_id,
            client.node_id,
            server.node_id,
            lambda message, c=client: self._deliver_idle(c, message),
        )

    def _deliver_idle(self, client, message: Message) -> None:
        client.state[_IDLE_KEY].append(message.payload)

    # ------------------------------------------------------------------
    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        idle_queue = client.state[_IDLE_KEY]
        candidate_set = set(candidates)
        while idle_queue:
            server_id = idle_queue.popleft()
            if server_id in candidate_set:
                self.idle_hits += 1
                self.ctx.dispatch(client, request, server_id)
                return
        self.random_fallbacks += 1
        server_id = candidates[int(self._rng.integers(len(candidates)))]
        self.ctx.dispatch(client, request, server_id)
