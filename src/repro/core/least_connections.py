"""Client-local least-connections (extension).

The policy family used by nginx/HAProxy/Envoy when servers do not
export load: each client tracks its *own* outstanding requests per
server and picks the minimum. No messages at all — but each client only
sees 1/n_clients of the traffic, so the signal is weak for fine-grain
services with many clients. Included as a modern-practice baseline for
the ablation benches.

Accounting contract: every dispatch charges exactly one (selector,
server) cell, and the charge is released exactly once — on the next
re-dispatch of the same request (timeout retry to another server), on
completion, or on terminal failure. The explicit ledger makes the
release idempotent: without it, a timeout retry that re-dispatched
elsewhere plus the eventual completion notification decremented two
different cells for one dispatch, driving counters below zero (found
by ``repro fuzz``; see tests/verify/corpus/).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["LeastConnectionsPolicy"]

_COUNTS_KEY = "least_connections.counts"


class LeastConnectionsPolicy(LoadBalancer):
    name = "least_connections"

    def _setup(self) -> None:
        self._rng = self.ctx.rng("policy.least_connections.ties")
        #: request index -> (selector node_id, server_id) of the single
        #: outstanding charge for that request
        self._charges: dict[int, tuple[int, int]] = {}
        self._tables: dict[int, np.ndarray] = {}
        for client in self.ctx.selector_agents:
            counts = np.zeros(self.ctx.n_servers, dtype=np.int64)
            client.state[_COUNTS_KEY] = counts
            self._tables[client.node_id] = counts

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        counts = client.state[_COUNTS_KEY]
        values = [int(counts[i]) for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            # The counter is client-local and current: staleness is zero
            # (the *signal* is weak, not old).
            telemetry.note_decision(request, float(counts[server_id]), self.ctx.sim.now)
        self.ctx.dispatch(client, request, server_id)

    def notify_dispatch(self, client, request, server_id) -> None:
        # A retry supersedes the previous attempt: move the charge, never
        # stack a second one for the same request.
        self._release(request)
        self._tables[client.node_id][server_id] += 1
        self._charges[request.index] = (client.node_id, server_id)

    def notify_complete(self, client, request) -> None:
        self._release(request)

    def _release(self, request) -> None:
        charge = self._charges.pop(request.index, None)
        if charge is not None:
            node_id, server_id = charge
            self._tables[node_id][server_id] -= 1

    def verify_scan(self):
        """Oracle hook: ledger/counter consistency (None when healthy)."""
        outstanding = sum(int(t.sum()) for t in self._tables.values())
        if outstanding != len(self._charges):
            return (
                f"least_connections tables sum to {outstanding} but the "
                f"ledger holds {len(self._charges)} charges"
            )
        for node_id, counts in self._tables.items():
            if len(counts) and int(counts.min()) < 0:
                return (
                    f"least_connections count negative on selector "
                    f"{node_id} (min={int(counts.min())})"
                )
        return None
