"""Client-local least-connections (extension).

The policy family used by nginx/HAProxy/Envoy when servers do not
export load: each client tracks its *own* outstanding requests per
server and picks the minimum. No messages at all — but each client only
sees 1/n_clients of the traffic, so the signal is weak for fine-grain
services with many clients. Included as a modern-practice baseline for
the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["LeastConnectionsPolicy"]

_COUNTS_KEY = "least_connections.counts"


class LeastConnectionsPolicy(LoadBalancer):
    name = "least_connections"

    def _setup(self) -> None:
        self._rng = self.ctx.rng("policy.least_connections.ties")
        for client in self.ctx.selector_agents:
            client.state[_COUNTS_KEY] = np.zeros(self.ctx.n_servers, dtype=np.int64)

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        counts = client.state[_COUNTS_KEY]
        values = [int(counts[i]) for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            # The counter is client-local and current: staleness is zero
            # (the *signal* is weak, not old).
            telemetry.note_decision(request, float(counts[server_id]), self.ctx.sim.now)
        self.ctx.dispatch(client, request, server_id)

    def notify_dispatch(self, client, request, server_id) -> None:
        client.state[_COUNTS_KEY][server_id] += 1

    def notify_complete(self, client, request) -> None:
        client.state[_COUNTS_KEY][request.server_id] -= 1
