"""Stale-snapshot JSQ (extension; after Mitzenmacher, "How Useful Is
Old Information?", 2000).

All clients share a global queue-length snapshot refreshed every
``update_interval`` seconds (as if a monitoring system scraped every
server periodically and fanned the vector out for free). Between
refreshes the snapshot ages, so this isolates pure *staleness* from the
broadcast policy's per-server announcement jitter — the cleanest way to
demonstrate the flocking pathology as a function of information age.

``local_increment=True`` adds the classic mitigation: a client bumps
its own copy of the chosen server's entry, so consecutive requests from
the same client spread out even within one refresh epoch.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["GlobalSnapshotPolicy"]

_LOCAL_KEY = "stale.local_table"


class GlobalSnapshotPolicy(LoadBalancer):
    name = "stale_jsq"

    def __init__(self, update_interval: float, local_increment: bool = False):
        super().__init__()
        if update_interval <= 0:
            raise ValueError(f"update_interval must be > 0, got {update_interval}")
        self.update_interval = update_interval
        self.local_increment = local_increment
        self.refreshes = 0

    def _setup(self) -> None:
        ctx = self.ctx
        self._rng = ctx.rng("policy.stale.ties")
        self._snapshot = np.zeros(ctx.n_servers)
        self._snapshot_time = 0.0
        if self.local_increment:
            for client in ctx.selector_agents:
                client.state[_LOCAL_KEY] = self._snapshot.copy()
        ctx.sim.after(self.update_interval, self._refresh)

    def _refresh(self) -> None:
        ctx = self.ctx
        for server in ctx.servers:
            self._snapshot[server.node_id] = server.queue_length
        self._snapshot_time = ctx.sim.now
        self.refreshes += 1
        if self.local_increment:
            for client in ctx.selector_agents:
                np.copyto(client.state[_LOCAL_KEY], self._snapshot)
        ctx.sim.after(self.update_interval, self._refresh)

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        table = client.state[_LOCAL_KEY] if self.local_increment else self._snapshot
        values = [table[i] for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            telemetry.note_decision(request, float(table[server_id]), self._snapshot_time)
        if self.local_increment:
            table[server_id] += 1
        self.ctx.dispatch(client, request, server_id)

    def describe(self) -> str:
        suffix = "+local" if self.local_increment else ""
        return f"stale_jsq({self.update_interval * 1e3:g}ms){suffix}"
