"""Centralized load-index manager: the prototype's IDEAL emulation (§4).

"This is achieved through a centralized load index manager which keeps
track of all server load indices. Each client contacts the load index
manager whenever a service access is to be made. The load index manager
returns the server with the shortest service queue and increments that
queue length by one. Upon finishing one service access, each client is
required to contact the load index manager again so that the
corresponding server queue length can be properly decremented. This
approach closely emulates the actual [IDEAL] scenario with a delay of
around one TCP roundtrip without connection setup and teardown (around
339 us in our Linux cluster)."

Note the manager tracks its own *assignment counts*, not the servers'
true queue lengths — by-design exact bookkeeping (every dispatch and
completion is reported), which is what lets it avoid flocking entirely.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties
from repro.net.message import Message, MessageKind

__all__ = ["CentralizedManagerPolicy"]


class CentralizedManagerPolicy(LoadBalancer):
    name = "manager"

    def __init__(self) -> None:
        super().__init__()
        self.queries_served = 0

    def _setup(self) -> None:
        ctx = self.ctx
        self._counts = np.zeros(ctx.n_servers, dtype=np.int64)
        self._rng = ctx.rng("policy.manager.ties")
        # The manager is a dedicated node; give it the next free id.
        self.manager_node_id = ctx.n_servers + ctx.n_clients

    # ------------------------------------------------------------------
    def select(self, client, request) -> None:
        self.ctx.network.send(
            MessageKind.MANAGER_QUERY,
            client.node_id,
            self.manager_node_id,
            (client, request),
            self._on_query,
        )

    def _on_query(self, message: Message) -> None:
        client, request = message.payload
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        self.queries_served += 1
        values = [int(self._counts[i]) for i in candidates]
        server_id = choose_min_with_ties(candidates, values, self._rng)
        self._counts[server_id] += 1
        self.ctx.network.send(
            MessageKind.MANAGER_REPLY,
            self.manager_node_id,
            client.node_id,
            (client, request, server_id),
            self._on_reply,
        )

    def _on_reply(self, message: Message) -> None:
        client, request, server_id = message.payload
        self.ctx.dispatch(client, request, server_id)

    def notify_complete(self, client, request) -> None:
        if request.server_id < 0:
            # Terminal failure with no recorded server (e.g. every
            # attempt timed out before enqueueing): there is no count to
            # release, and ``_counts[-1]`` would silently corrupt the
            # last server's cell.
            return
        # The completion notification is off the response path: the
        # client reports after receiving the response, and the count
        # drops when the notification reaches the manager.
        self.ctx.network.send(
            MessageKind.MANAGER_NOTIFY,
            client.node_id,
            self.manager_node_id,
            request.server_id,
            self._on_notify,
        )

    def _on_notify(self, message: Message) -> None:
        self._counts[message.payload] -= 1

    def outstanding(self) -> int:
        """Total assignments the manager believes are in flight."""
        return int(self._counts.sum())
