"""Pure random policy: the paper's lower baseline.

Each access goes to a uniformly random candidate. No load information
is exchanged, so the policy is free — it is what the figures call
``random``, and what poll size 8 falls *below* for fine-grain services
on the prototype (Figure 6C).
"""

from __future__ import annotations

from repro.core.base import LoadBalancer, NoCandidatesError

__all__ = ["RandomPolicy"]


class RandomPolicy(LoadBalancer):
    name = "random"

    def _setup(self) -> None:
        self._rng = self.ctx.rng("policy.random")

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        server_id = candidates[int(self._rng.integers(len(candidates)))]
        self.ctx.dispatch(client, request, server_id)
