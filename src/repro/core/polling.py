"""Random polling policy (paper §2.3, §3, §4) — the paper's winner.

"For every service access, the random polling policy requires a client
to randomly poll several servers for load information and then direct
the service access to the most lightly loaded server according to the
polling results."

Two operating modes:

- **basic** — wait for *all* ``poll_size`` replies before deciding
  (connected UDP sockets + ``select``). Under the prototype overhead
  model the per-request polling time is the **max** of d load-dependent
  reply delays — precisely why poll size 8 collapses for fine-grain
  workloads in Figure 6.
- **discard_slow** (§3.2) — stop waiting ``discard_timeout`` (10 ms)
  after the polls go out and decide on whatever has arrived; late
  replies are ignored. If *nothing* has arrived at the deadline, the
  first subsequent reply decides (the paper does not specify this
  corner; waiting for one reply preserves "never dispatch blind").

``weight_by_speed`` (extension) weights replies by server speed for
heterogeneous clusters.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import LoadBalancer, NoCandidatesError, choose_min_with_ties

__all__ = ["RandomPollingPolicy"]


class _PollOperation:
    """In-flight state for one request's poll round."""

    __slots__ = ("request", "client", "expected", "replies", "done", "timeout_handle")

    def __init__(self, client, request, expected: int):
        self.client = client
        self.request = request
        self.expected = expected
        #: (server_id, queue_length, observed_at) per reply
        self.replies: list[tuple[int, int, float]] = []
        self.done = False
        self.timeout_handle = None


class RandomPollingPolicy(LoadBalancer):
    name = "polling"

    def __init__(
        self,
        poll_size: int = 2,
        discard_slow: bool = False,
        discard_timeout: Optional[float] = None,
        weight_by_speed: bool = False,
    ):
        super().__init__()
        if poll_size < 1:
            raise ValueError(f"poll_size must be >= 1, got {poll_size}")
        if discard_timeout is not None and discard_timeout <= 0:
            raise ValueError(f"discard_timeout must be > 0, got {discard_timeout}")
        self.poll_size = poll_size
        self.discard_slow = discard_slow
        self.discard_timeout = discard_timeout
        self.weight_by_speed = weight_by_speed
        # Counters reported by the Table 2 bench.
        self.polls_sent = 0
        self.replies_received = 0
        self.replies_discarded = 0
        self.timeouts_fired = 0

    def _setup(self) -> None:
        self._rng = self.ctx.rng("policy.polling")
        if self.discard_slow and self.discard_timeout is None:
            self.discard_timeout = self.ctx.constants.discard_timeout

    # ------------------------------------------------------------------
    def select(self, client, request) -> None:
        ctx = self.ctx
        candidates = ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        count = min(self.poll_size, len(candidates))
        if count == len(candidates):
            targets = candidates
        else:
            # Rejection-sample distinct indices: for d << n this beats
            # Generator.choice(replace=False) by ~20 µs/request
            # (profile-guided; select() runs once per request).
            rng = self._rng
            n = len(candidates)
            seen: set[int] = set()
            targets = []
            while len(targets) < count:
                pick = int(rng.integers(n))
                if pick not in seen:
                    seen.add(pick)
                    targets.append(candidates[pick])
        operation = _PollOperation(client, request, count)
        if self.discard_slow:
            operation.timeout_handle = ctx.sim.after(
                self.discard_timeout, self._on_timeout, operation
            )
        self.polls_sent += count
        on_reply = lambda sid, qlen, seen, op=operation: self._on_reply(op, sid, qlen, seen)  # noqa: E731
        for server_id in targets:
            ctx.poll_server(client, server_id, on_reply)

    # ------------------------------------------------------------------
    def _on_reply(
        self,
        operation: _PollOperation,
        server_id: int,
        queue_length: int,
        observed_at: float,
    ) -> None:
        if operation.done:
            self.replies_discarded += 1
            return
        self.replies_received += 1
        operation.replies.append((server_id, queue_length, observed_at))
        if len(operation.replies) == operation.expected:
            self._decide(operation)
        elif operation.timeout_handle is None and self.discard_slow:
            # Timeout already fired with zero replies; first reply decides.
            self._decide(operation)

    def _on_timeout(self, operation: _PollOperation) -> None:
        operation.timeout_handle = None
        if operation.done:
            return
        self.timeouts_fired += 1
        if operation.replies:
            self._decide(operation)
        # else: leave timeout_handle None; the first reply will decide.

    def _decide(self, operation: _PollOperation) -> None:
        operation.done = True
        if operation.timeout_handle is not None:
            self.ctx.sim.cancel(operation.timeout_handle)
            operation.timeout_handle = None
        replies = operation.replies
        if self.weight_by_speed:
            servers = self.ctx.servers
            values = [(qlen + 1) / servers[sid].speed for sid, qlen, _seen in replies]
        else:
            values = [qlen for _sid, qlen, _seen in replies]
        ids = [sid for sid, _qlen, _seen in replies]
        server_id = choose_min_with_ties(ids, values, self._rng)
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            for sid, qlen, seen in replies:
                if sid == server_id:
                    telemetry.note_decision(operation.request, float(qlen), seen)
                    break
        self.ctx.dispatch(operation.client, operation.request, server_id)

    def describe(self) -> str:
        suffix = "+discard" if self.discard_slow else ""
        return f"polling(d={self.poll_size}){suffix}"
