"""Per-client round robin (extension baseline).

Not evaluated in the paper, but the standard static policy of the
Envoy/nginx family; included as an ablation baseline. Each *client*
cycles through the candidate list independently (no shared state —
clients inside the cluster do not coordinate).
"""

from __future__ import annotations

from repro.core.base import LoadBalancer, NoCandidatesError

__all__ = ["RoundRobinPolicy"]

_STATE_KEY = "round_robin.next"


class RoundRobinPolicy(LoadBalancer):
    name = "round_robin"

    def select(self, client, request) -> None:
        candidates = self.ctx.available_servers(client)
        if not candidates:
            raise NoCandidatesError("no live servers")
        position = client.state.get(_STATE_KEY, 0)
        server_id = candidates[position % len(candidates)]
        client.state[_STATE_KEY] = (position + 1) % len(candidates)
        self.ctx.dispatch(client, request, server_id)
