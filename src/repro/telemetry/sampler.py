"""Periodic time-series sampling over step recorders.

The sampler deliberately schedules **no simulator events**: during the
run, :class:`~repro.sim.monitor.StepRecorder` instances capture the
exact step functions (queue lengths, in-flight messages, fault
counters) as pure array appends, and the periodic series is produced
*after* the run by evaluating those recorders on a uniform grid
(``StepRecorder.value_at`` is a vectorized ``searchsorted``).

This is what makes the bit-identical-with-telemetry guarantee hold by
construction: no extra events, no extra RNG draws, no change to event
ordering or ``events_executed`` — just appends off the decision path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.system import ServiceCluster

__all__ = ["sample_series"]


def sample_series(
    cluster: "ServiceCluster",
    interval: float,
    end_time: Optional[float] = None,
    start: float = 0.0,
) -> dict[str, np.ndarray]:
    """Evaluate the cluster's telemetry recorders on a periodic grid.

    Returns a mapping of series name to a float64 array, all aligned to
    the ``"time"`` grid (``start, start+interval, ...`` up to the end
    of the run). ``start`` defaults to 0 — the simulator's origin — but
    a clock with an arbitrary origin (the Clock seam allows any; e.g. a
    wall clock anchored far from zero) must pass its run-start time, or
    the grid from 0 would try to materialize one sample per interval of
    the entire offset:

    - ``server<i>.queue`` — load index (queued + in-service) per server;
    - ``server<i>.utilization`` — busy workers / total workers. With a
      FIFO queue a worker is idle only when the queue is empty, so the
      busy count is exactly ``min(queue_length, workers)``;
    - ``net.inflight`` — messages sent but not yet delivered;
    - ``net.dropped`` — cumulative messages lost to drop filters or
      injected faults (flat zero for fault-free runs).

    Requires the telemetry recorders (installed by
    :class:`~repro.telemetry.collector.TelemetryCollector`); servers
    without a queue recorder are skipped.
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    end = cluster.sim.now if end_time is None else end_time
    # Include the final partial period's left edge; guard degenerate
    # zero-length (or end-before-start) runs with a single sample.
    n_samples = max(1, int(np.floor((end - start) / interval)) + 1)
    grid = start + np.arange(n_samples, dtype=np.float64) * interval
    series: dict[str, np.ndarray] = {"time": grid}
    for server in cluster.servers:
        recorder = server.queue_recorder
        if recorder is None:
            continue
        queue = recorder.value_at(grid)
        series[f"server{server.node_id}.queue"] = queue
        series[f"server{server.node_id}.utilization"] = (
            np.minimum(queue, server.workers) / server.workers
        )
    network = cluster.network
    if network.inflight_recorder is not None:
        series["net.inflight"] = network.inflight_recorder.value_at(grid)
    if network.drops_recorder is not None:
        series["net.dropped"] = network.drops_recorder.value_at(grid)
    return series
