"""Cluster-wide request-lifecycle telemetry.

This subpackage answers the *why* questions the end-of-run aggregates
cannot: why did a policy flock every client to one server (stale
broadcast tables, §2.2), what information age did each dispatch decision
act on, and how did queues, utilization, and message traffic evolve
over a run.

Three layers, all opt-in and all zero-overhead when disabled:

- :class:`~repro.telemetry.spans.RequestSpan` — one per-request
  lifecycle record (created → selected → enqueued → service start →
  completed → response) annotated with the policy's *perceived load*
  for the chosen server and the *staleness* of that observation at
  decision time.
- :class:`~repro.telemetry.collector.TelemetryCollector` — the run-time
  hook object a :class:`~repro.cluster.system.ServiceCluster` carries
  (``cluster.telemetry``); it installs step recorders, captures spans
  at request completion, and builds the final
  :class:`~repro.telemetry.collector.TelemetryReport`.
- :func:`~repro.telemetry.sampler.sample_series` — the periodic
  time-series sampler: queue length, utilization, in-flight messages,
  and fault counters evaluated on a uniform grid, built on
  :class:`~repro.sim.monitor.StepRecorder` breakpoints so the event
  loop never executes a sampling event (see DESIGN.md §10).

Enable via ``SimulationConfig(telemetry={...})`` or the ``repro trace``
CLI command; export via :func:`repro.experiments.io.save_telemetry`.
"""

from repro.telemetry.collector import TelemetryCollector, TelemetryReport
from repro.telemetry.sampler import sample_series
from repro.telemetry.spans import (
    ATTEMPT_FIELDS,
    SPAN_FIELDS,
    AttemptRecord,
    RequestSpan,
)

__all__ = [
    "ATTEMPT_FIELDS",
    "AttemptRecord",
    "RequestSpan",
    "SPAN_FIELDS",
    "TelemetryCollector",
    "TelemetryReport",
    "sample_series",
]
