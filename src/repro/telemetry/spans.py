"""Per-request lifecycle spans.

A span is the telemetry view of one :class:`~repro.cluster.request.Request`:
every lifecycle timestamp the cluster already stamps on the request,
plus the *decision annotation* a telemetry-aware policy attaches at
selection time — the load index value it acted on for the chosen server
and when that value was observed. ``staleness`` (decision time minus
observation time) is the quantity the attained-service analyses of
Hellemans & Van Houdt (arXiv:2011.08250) study; exporting it per
request lets those analyses run on our own traces.

Spans are built once, at request completion (or terminal failure), so
they cost nothing on the event-loop hot path.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.request import Request

__all__ = ["AttemptRecord", "ATTEMPT_FIELDS", "RequestSpan", "SPAN_FIELDS"]


@dataclass(frozen=True)
class RequestSpan:
    """One request's lifecycle, flattened for export.

    Timestamps are absolute simulation seconds and ``nan`` for phases
    the request never reached (e.g. ``t_enqueued`` for a request whose
    every retry was lost). Derived durations (``response_time``,
    ``poll_time``, ``queue_wait``) are precomputed so consumers of the
    JSONL export need no arithmetic.
    """

    index: int
    client_id: int
    server_id: int
    #: client initiates the access (policy starts working)
    t_created: float
    #: policy committed to a server (== dispatch; selection latency is
    #: ``t_selected - t_created``, the paper's polling time)
    t_selected: float
    #: request entered the server's FIFO queue
    t_enqueued: float
    #: a worker began service
    t_start: float
    #: service finished, response sent
    t_completed: float
    #: response received back at the client (terminal timestamp)
    t_response: float
    service_time: float
    response_time: float
    poll_time: float
    queue_wait: float
    #: load index value the policy acted on for the chosen server
    #: (``nan`` for policies that dispatch without load information)
    perceived_load: float
    #: age of that observation at decision time: ``t_selected`` minus
    #: the time the load index was read/announced (``nan`` when unknown)
    staleness: float
    retries: int
    failed: bool
    #: admission rejections (static bound or overload shedding) this
    #: request absorbed across all delivery attempts (schema v2)
    rejects: int

    @classmethod
    def from_request(cls, request: "Request") -> "RequestSpan":
        """Build the span for a finished (or terminally failed) request."""
        decision = request.decision
        if decision is None:
            perceived, staleness = math.nan, math.nan
        else:
            perceived, observed_at = decision
            staleness = request.dispatch_time - observed_at
        return cls(
            index=request.index,
            client_id=request.client_id,
            server_id=request.server_id,
            t_created=request.arrival_time,
            t_selected=request.dispatch_time,
            t_enqueued=request.enqueue_time,
            t_start=request.start_time,
            t_completed=request.completion_time,
            t_response=request.arrival_time + request.response_time,
            service_time=request.service_time,
            response_time=request.response_time,
            poll_time=request.poll_time,
            queue_wait=request.queue_wait,
            perceived_load=perceived,
            staleness=staleness,
            retries=request.retries,
            failed=request.failed,
            rejects=request.rejects,
        )

    def to_dict(self) -> dict:
        return asdict(self)


#: ordered span field names — the JSONL export schema (io.py validates
#: each record against this list)
SPAN_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(RequestSpan))


@dataclass(frozen=True)
class AttemptRecord:
    """One dispatch attempt of one request, as the reliability layer saw it.

    Spans summarize a request's *winning* lifecycle; attempt records
    expose the tree underneath — every primary dispatch and hedge copy,
    with the circuit-breaker view of the chosen server at decision time.
    Only produced on runs with both telemetry and the reliability layer
    enabled (the engine is the only caller of
    :meth:`~repro.telemetry.collector.TelemetryCollector.on_attempt`).
    """

    #: request index this attempt belongs to
    index: int
    #: retry counter at dispatch (0 = first attempt)
    attempt: int
    #: ``"primary"`` for policy-selected dispatches, ``"hedge"`` for
    #: reliability-layer hedge copies
    kind: str
    #: server the attempt targeted
    server_id: int
    #: simulation time the attempt left the client
    t_dispatch: float
    #: the target server's breaker state at decision time
    #: (``closed`` / ``open`` / ``half_open``; ``closed`` when breakers
    #: are disabled)
    breaker_state: str

    def to_dict(self) -> dict:
        return asdict(self)


#: ordered attempt field names — the attempts.jsonl export schema
ATTEMPT_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(AttemptRecord))
