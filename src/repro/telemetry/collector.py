"""Run-time telemetry collection for a service cluster.

A :class:`TelemetryCollector` is carried by the cluster as
``cluster.telemetry`` (``None`` when telemetry is off — the same
pattern as ``Simulator.trace``). Every hot-path touch point guards with
a single ``is not None`` check, and the collector itself never draws
random numbers or schedules simulator events, so enabling telemetry
cannot perturb a run: fixed-seed results are bit-identical with
telemetry on or off (a regression test enforces this).

What it captures:

- **spans** — one :class:`~repro.telemetry.spans.RequestSpan` per
  request, built at completion/terminal failure from the timestamps the
  cluster already stamps plus the policy's decision annotation
  (:meth:`note_decision`);
- **time series** — step recorders installed on every server queue and
  on the network (in-flight messages, fault drops), sampled post-run on
  a periodic grid by :func:`~repro.telemetry.sampler.sample_series`;
- **accounting** — per-kind message/byte/drop tallies plus the bound
  policy's counters (polls, replies, broadcasts, ...), snapshotted at
  report time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.monitor import StepRecorder
from repro.telemetry.sampler import sample_series
from repro.telemetry.spans import AttemptRecord, RequestSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.request import Request
    from repro.cluster.system import ServiceCluster

__all__ = ["TelemetryCollector", "TelemetryReport"]

#: policy counter attributes exported into the accounting snapshot
#: (superset-tolerant: only attributes the policy actually has appear)
_POLICY_COUNTER_ATTRS = (
    "polls_sent",
    "replies_received",
    "replies_discarded",
    "timeouts_fired",
    "broadcasts_sent",
    "queries_served",
    "refreshes",
    "idle_reports_sent",
    "idle_hits",
    "random_fallbacks",
)


@dataclass(frozen=True)
class TelemetryReport:
    """Everything one telemetry-enabled run produced.

    ``series`` maps series name to a float64 array aligned with
    ``series["time"]`` (see :func:`~repro.telemetry.sampler.sample_series`);
    ``accounting`` is a JSON-native nested dict. Export with
    :func:`repro.experiments.io.save_telemetry`.
    """

    spans: tuple[RequestSpan, ...]
    series: dict[str, np.ndarray]
    accounting: dict[str, dict[str, int]]
    sample_interval: float
    #: spans not captured because ``max_spans`` was reached
    spans_dropped: int = 0
    #: per-attempt dispatch records (empty unless the run had both
    #: telemetry and the reliability layer enabled)
    attempts: tuple[AttemptRecord, ...] = ()

    def staleness(self) -> np.ndarray:
        return np.array([span.staleness for span in self.spans])

    def response_times(self) -> np.ndarray:
        return np.array([span.response_time for span in self.spans])


class TelemetryCollector:
    """Collects spans, series recorders, and accounting for one run.

    Parameters
    ----------
    cluster:
        The cluster to instrument; the collector installs queue/network
        step recorders immediately (before any event runs).
    spans:
        Capture per-request lifecycle spans (default True).
    sample_interval:
        Grid spacing, in simulated seconds, for the periodic series
        produced by :meth:`report`.
    max_spans:
        Optional cap on retained spans (memory guard for very long
        runs); further spans are counted in ``spans_dropped``.
    """

    def __init__(
        self,
        cluster: "ServiceCluster",
        spans: bool = True,
        sample_interval: float = 0.05,
        max_spans: Optional[int] = None,
    ):
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be > 0, got {sample_interval}")
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1 or None, got {max_spans}")
        self.cluster = cluster
        self.spans_enabled = spans
        self.sample_interval = sample_interval
        self.max_spans = max_spans
        self.spans: list[RequestSpan] = []
        self.spans_dropped = 0
        self.attempts: list[AttemptRecord] = []
        self._install_recorders()

    def _install_recorders(self) -> None:
        for server in self.cluster.servers:
            if server.queue_recorder is None:
                server.queue_recorder = StepRecorder(initial=0.0)
        network = self.cluster.network
        if network.inflight_recorder is None:
            network.inflight_recorder = StepRecorder(initial=0.0)
        if network.drops_recorder is None:
            network.drops_recorder = StepRecorder(initial=0.0)

    # ------------------------------------------------------------------
    # hooks (called behind ``telemetry is not None`` guards)
    # ------------------------------------------------------------------
    def note_decision(
        self, request: "Request", perceived_load: float, observed_at: float
    ) -> None:
        """Record what the policy knew when it chose this request's server.

        ``perceived_load`` is the load index value used for the chosen
        server; ``observed_at`` is the simulation time that value was
        read (at the server, or when a snapshot/announcement was taken).
        A retry's decision supersedes earlier ones — the span reflects
        the dispatch that actually completed.
        """
        request.decision = (perceived_load, observed_at)

    def on_attempt(
        self, request: "Request", server_id: int, kind: str, breaker_state: str
    ) -> None:
        """Record one dispatch attempt (primary or hedge copy).

        Called by the reliability engine only — runs without the
        reliability layer produce no attempt records. Shares the span
        cap: attempts stop accumulating once ``max_spans`` attempt
        records exist (the memory guard covers both collections).
        """
        if not self.spans_enabled:
            return
        if self.max_spans is not None and len(self.attempts) >= self.max_spans:
            return
        self.attempts.append(
            AttemptRecord(
                index=request.index,
                attempt=request.retries,
                kind=kind,
                server_id=server_id,
                t_dispatch=self.cluster.sim.now,
                breaker_state=breaker_state,
            )
        )

    def on_request_complete(self, request: "Request") -> None:
        """Capture the span for a finished or terminally failed request."""
        if not self.spans_enabled:
            return
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.spans_dropped += 1
            return
        self.spans.append(RequestSpan.from_request(request))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def accounting(self) -> dict[str, dict[str, int]]:
        """Message/byte/drop tallies per kind + the policy's counters.

        Runs with the overload subsystem installed additionally get an
        ``"overload"`` section (shed/reject/withdrawal tallies); plain
        runs keep the historical four-section shape.
        """
        network = self.cluster.network
        policy = self.cluster.policy
        accounting = {
            "messages": {k.value: v for k, v in sorted(network.message_counts.items())},
            "bytes": {k.value: v for k, v in sorted(network.byte_counts.items())},
            "dropped": {k.value: v for k, v in sorted(network.dropped_counts.items())},
            "policy": {
                name: int(getattr(policy, name))
                for name in _POLICY_COUNTER_ATTRS
                if hasattr(policy, name)
            },
        }
        if self.cluster.overload is not None:
            accounting["overload"] = {
                name: int(value)
                for name, value in sorted(self.cluster.overload_counters().items())
            }
        return accounting

    def report(self, end_time: Optional[float] = None) -> TelemetryReport:
        """Assemble the final report (call after ``cluster.run()``)."""
        return TelemetryReport(
            spans=tuple(self.spans),
            series=sample_series(self.cluster, self.sample_interval, end_time),
            accounting=self.accounting(),
            sample_interval=self.sample_interval,
            spans_dropped=self.spans_dropped,
            attempts=tuple(self.attempts),
        )

    def summary(self) -> dict[str, float]:
        """Small JSON-native digest for ``SimulationResult.telemetry_summary``."""
        staleness = np.array([span.staleness for span in self.spans])
        finite = staleness[np.isfinite(staleness)]
        out: dict[str, float] = {
            "n_spans": float(len(self.spans)),
            "spans_dropped": float(self.spans_dropped),
            "sample_interval": self.sample_interval,
        }
        if self.attempts:
            out["n_attempts"] = float(len(self.attempts))
            out["n_hedge_attempts"] = float(
                sum(1 for a in self.attempts if a.kind == "hedge")
            )
        if finite.size:
            out["mean_staleness"] = float(finite.mean())
            out["p95_staleness"] = float(np.percentile(finite, 95))
        else:
            out["mean_staleness"] = math.nan
            out["p95_staleness"] = math.nan
        return out
