"""Loopback orchestration + the sim-vs-real comparison for ``repro drive``.

``run_loopback`` spins up N :class:`~repro.live.server.LiveServer`
nodes and one :class:`~repro.live.client.LiveCluster` drive agent in a
single asyncio event loop over ``127.0.0.1`` UDP sockets, sharing one
:class:`~repro.live.clock.WallClock`, and drives the **same workload
arrays** the simulator would generate for the same config (same
``RngHub`` ``"workload"`` substream, same mean-based rescale) — so a
calibrated :func:`~repro.experiments.runner.run_simulation` of the
identical :class:`~repro.experiments.config.SimulationConfig` is an
apples-to-apples baseline.

Sizing note (single event loop = one CPU): in ``spin`` mode service
work burns real CPU on the shared loop, so the *aggregate* utilization
``n_servers x load`` must stay well below 1 — the defaults
(4 servers x 0.15) keep it at 0.6. The poll-size degradation does not
depend on that headroom: with poll size ``d`` the client waits for all
``d`` replies, each of which can land behind a service spin slice or a
``poll_spin`` handling burn, so the poll phase is a max over ``d``
contended round trips — the paper's §4.1 fine-grain overhead, which a
pure DES model shows none of.

Every entry point takes a hard ``time_limit`` enforced with
``asyncio.wait_for`` — a live run must never hang a test suite or CI.
"""

from __future__ import annotations

import asyncio
import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.registry import make_policy
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation
from repro.live.client import LiveCluster
from repro.live.clock import WallClock
from repro.live.faults import LoopbackFaults
from repro.live.server import LiveServer
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

__all__ = [
    "LiveRunConfig",
    "LiveRunResult",
    "DriveComparison",
    "generate_workload",
    "run_loopback",
    "drive_comparison",
    "render_comparison_table",
]

#: policies whose context needs stay inside the LiveCluster surface
#: (anything needing the sim's broadcast channel / manager node is out)
SUPPORTED_POLICY_PREFIXES = ("random", "polling")


@dataclass(frozen=True)
class LiveRunConfig:
    """One loopback run. Field semantics mirror ``SimulationConfig``
    where they overlap, so the comparison baseline is the same config."""

    policy: str = "polling"
    policy_params: Dict[str, Any] = field(default_factory=dict)
    workload: str = "poisson_exp"
    workload_params: Dict[str, Any] = field(default_factory=lambda: {"mean_service": 0.01})
    load: float = 0.15
    n_servers: int = 4
    n_clients: int = 6
    n_requests: int = 240
    seed: int = 0
    warmup_fraction: float = 0.1
    mode: str = "spin"
    slice_seconds: float = 0.001
    poll_spin: float = 0.0003
    workers: int = 1
    request_timeout: Optional[float] = 1.0
    max_retries: int = 5
    server_max_queue: Optional[int] = None
    reliability_params: Dict[str, Any] = field(default_factory=dict)
    overload_params: Dict[str, Any] = field(default_factory=dict)
    availability: bool = False
    availability_refresh: float = 0.5
    availability_ttl: float = 3.0
    telemetry: bool = False
    sample_interval: float = 0.05
    time_limit: float = 60.0
    #: client->server and server->client fault planes (race tests)
    client_faults: Optional[Dict[str, float]] = None
    server_faults: Optional[Dict[str, float]] = None

    def sim_config(self) -> SimulationConfig:
        """The calibrated simulation baseline of this live run."""
        return SimulationConfig(
            policy=self.policy,
            policy_params=dict(self.policy_params),
            workload=self.workload,
            workload_params=dict(self.workload_params),
            load=self.load,
            n_servers=self.n_servers,
            n_clients=self.n_clients,
            n_requests=self.n_requests,
            seed=self.seed,
            model="simulation",
            warmup_fraction=self.warmup_fraction,
            workers=self.workers,
            reliability_params=dict(self.reliability_params),
            overload_params=dict(self.overload_params),
            cluster_params=(
                {"request_timeout": self.request_timeout}
                if self.request_timeout is not None
                else {}
            ),
            label=f"sim:{self.policy}",
        )


@dataclass
class LiveRunResult:
    """Outcome of one loopback run."""

    config: LiveRunConfig
    summary: Dict[str, float]
    wall_seconds: float
    resilience_counters: Dict[str, float]
    server_counters: List[Dict[str, float]]
    policy_counters: Dict[str, int]
    #: epoch (``time.time``-based) arrival timestamps + service times,
    #: for trace recording through the replay normalization path
    arrival_epochs: np.ndarray = field(default_factory=lambda: np.empty(0))
    service_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    telemetry_report: Any = None


def generate_workload(cfg: LiveRunConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Exactly the workload arrays ``build_cluster`` would produce for
    :meth:`LiveRunConfig.sim_config` (same substream, same rescale)."""
    workload = make_workload(cfg.workload, **cfg.workload_params)
    hub = RngHub(cfg.seed)
    gaps, services = workload.generate(hub.stream("workload"), cfg.n_requests)
    mean_service = float(services.mean())
    target_interval = mean_service / (cfg.n_servers * cfg.load)
    gaps = gaps * (target_interval / float(gaps.mean()))
    return gaps, services


def _policy_counters(policy) -> Dict[str, int]:
    from repro.experiments.runner import _POLICY_COUNTER_ATTRS

    return {
        name: int(getattr(policy, name))
        for name in _POLICY_COUNTER_ATTRS
        if hasattr(policy, name)
    }


def _make_faults(
    spec: Optional[Dict[str, float]], rng: np.random.Generator
) -> Optional[LoopbackFaults]:
    if not spec:
        return None
    return LoopbackFaults(rng, **spec)


async def run_loopback_async(cfg: LiveRunConfig) -> LiveRunResult:
    """Run one loopback drive inside an existing event loop."""
    if not cfg.policy.startswith(SUPPORTED_POLICY_PREFIXES):
        raise ValueError(
            f"policy {cfg.policy!r} is not supported by the live runtime "
            f"(supported families: {SUPPORTED_POLICY_PREFIXES})"
        )
    if cfg.n_servers * cfg.load > 0.85 and cfg.mode == "spin":
        raise ValueError(
            f"spin mode over-commits the loopback CPU: n_servers*load = "
            f"{cfg.n_servers * cfg.load:.2f} must stay <= 0.85 "
            "(one event loop is one CPU; lower load or use mode='sleep')"
        )
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    hub = RngHub(cfg.seed)

    overload_policy = None
    if cfg.overload_params:
        from repro.cluster.overload import OverloadPolicy

        overload_policy = OverloadPolicy(**cfg.overload_params)
    reliability_policy = None
    if cfg.reliability_params:
        from repro.cluster.reliability import ReliabilityPolicy

        reliability_policy = ReliabilityPolicy(**cfg.reliability_params)

    started = _time.perf_counter()
    servers: List[LiveServer] = []
    transports = []
    client_transport = None
    try:
        for i in range(cfg.n_servers):
            server = LiveServer(
                i,
                clock,
                workers=cfg.workers,
                mode=cfg.mode,
                slice_seconds=cfg.slice_seconds,
                poll_spin=cfg.poll_spin,
                max_queue=cfg.server_max_queue,
                overload=overload_policy,
                publish_interval=(cfg.availability_refresh if cfg.availability else None),
                rng=hub.stream(f"live.server.{i}"),
                faults=_make_faults(cfg.server_faults, hub.stream(f"live.faults.server.{i}")),
            )
            transport, _ = await loop.create_datagram_endpoint(
                lambda s=server: s, local_addr=("127.0.0.1", 0)
            )
            transports.append(transport)
            servers.append(server)
        addrs = {s.node_id: s.address for s in servers}

        policy = make_policy(cfg.policy, **cfg.policy_params)
        cluster = LiveCluster(
            addrs,
            policy,
            clock,
            seed=cfg.seed,
            n_clients=cfg.n_clients,
            request_timeout=cfg.request_timeout,
            max_retries=cfg.max_retries,
            reliability=reliability_policy,
            availability=cfg.availability,
            availability_ttl=cfg.availability_ttl,
            workers_per_server=cfg.workers,
            faults=_make_faults(cfg.client_faults, hub.stream("live.faults.client")),
        )
        client_transport, _ = await loop.create_datagram_endpoint(
            lambda: cluster, local_addr=("127.0.0.1", 0)
        )

        gaps, services = generate_workload(cfg)
        cluster.load_workload(gaps, services)
        if cfg.telemetry:
            from repro.telemetry import TelemetryCollector

            cluster.telemetry = TelemetryCollector(
                cluster, sample_interval=cfg.sample_interval
            )

        epoch_at_run_start = _time.time()
        metrics = await asyncio.wait_for(cluster.run(), timeout=cfg.time_limit)

        report = None
        if cluster.telemetry is not None:
            report = cluster.telemetry.report(end_time=clock.now)
        arrivals = np.cumsum(gaps)
        return LiveRunResult(
            config=cfg,
            summary=metrics.summary(cfg.warmup_fraction),
            wall_seconds=_time.perf_counter() - started,
            resilience_counters=cluster.resilience_counters(),
            server_counters=[s.counters() for s in servers],
            policy_counters=_policy_counters(policy),
            arrival_epochs=epoch_at_run_start + arrivals,
            service_times=services.copy(),
            telemetry_report=report,
        )
    finally:
        for server in servers:
            server.close()
        if client_transport is not None:
            client_transport.close()


def run_loopback(cfg: LiveRunConfig) -> LiveRunResult:
    """Synchronous entry point: own loop, hard-bounded by ``time_limit``."""
    return asyncio.run(run_loopback_async(cfg))


# ----------------------------------------------------------------------
# sim-vs-real comparison (the headline `repro drive` experiment)
# ----------------------------------------------------------------------
@dataclass
class DriveComparison:
    """Sim-vs-real rows across poll sizes (plus the random baseline)."""

    rows: List[Dict[str, float]]
    config: LiveRunConfig

    def qualitative_degradation(self) -> Optional[float]:
        """Live p50 at the largest poll size / live p50 at the smallest —
        the paper's poll-size-8 signature is this ratio rising in the
        live runs while the sim rows stay flat-or-improving."""
        polls = [r for r in self.rows if r.get("poll_size", 0) > 0]
        if len(polls) < 2:
            return None
        lo = min(polls, key=lambda r: r["poll_size"])
        hi = max(polls, key=lambda r: r["poll_size"])
        if not math.isfinite(lo["live_p50_ms"]) or lo["live_p50_ms"] <= 0:
            return None
        return hi["live_p50_ms"] / lo["live_p50_ms"]


def drive_comparison(
    base: LiveRunConfig,
    poll_sizes: Sequence[int] = (2, 4, 8),
    compare_sim: bool = True,
) -> DriveComparison:
    """Run the poll-size ladder live, and (optionally) the calibrated
    simulation of each identical config; one row per poll size."""
    rows: List[Dict[str, float]] = []
    for d in poll_sizes:
        cfg = replace(
            base,
            policy="polling",
            policy_params={**base.policy_params, "poll_size": int(d)},
        )
        live = run_loopback(cfg)
        row: Dict[str, float] = {
            "poll_size": float(d),
            "live_p50_ms": live.summary["p50_response_time"] * 1e3,
            "live_p95_ms": live.summary["p95_response_time"] * 1e3,
            "live_poll_ms": live.summary["mean_poll_time"] * 1e3,
            "live_failed": float(live.summary["n_failed"]),
            "live_wall_s": live.wall_seconds,
        }
        if compare_sim:
            sim = run_simulation(cfg.sim_config())
            row.update(
                {
                    "sim_p50_ms": sim.p50_response_time * 1e3,
                    "sim_p95_ms": sim.p95_response_time * 1e3,
                    "sim_poll_ms": sim.mean_poll_time * 1e3,
                    "delta_p50_pct": _delta_pct(
                        row["live_p50_ms"], sim.p50_response_time * 1e3
                    ),
                    "delta_p95_pct": _delta_pct(
                        row["live_p95_ms"], sim.p95_response_time * 1e3
                    ),
                }
            )
        rows.append(row)
    return DriveComparison(rows=rows, config=base)


def _delta_pct(live_ms: float, sim_ms: float) -> float:
    if not math.isfinite(sim_ms) or sim_ms == 0.0:
        return math.nan
    return 100.0 * (live_ms - sim_ms) / sim_ms


def render_comparison_table(comparison: DriveComparison) -> str:
    """Fixed-width sim-vs-real table (same style as the campaign reports)."""
    rows = comparison.rows
    has_sim = rows and "sim_p50_ms" in rows[0]
    headers = ["d", "live p50", "live p95", "live poll"]
    if has_sim:
        headers += ["sim p50", "sim p95", "sim poll", "Δp50%", "Δp95%"]
    headers += ["failed"]
    lines = []
    for row in rows:
        cells = [
            f"{int(row['poll_size'])}",
            f"{row['live_p50_ms']:.2f}ms",
            f"{row['live_p95_ms']:.2f}ms",
            f"{row['live_poll_ms']:.2f}ms",
        ]
        if has_sim:
            cells += [
                f"{row['sim_p50_ms']:.2f}ms",
                f"{row['sim_p95_ms']:.2f}ms",
                f"{row['sim_poll_ms']:.2f}ms",
                f"{row['delta_p50_pct']:+.0f}%",
                f"{row['delta_p95_pct']:+.0f}%",
            ]
        cells += [f"{int(row['live_failed'])}"]
        lines.append(cells)
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in lines)) if lines else len(headers[i])
        for i in range(len(headers))
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for line in lines:
        out.append("  ".join(c.rjust(w) for c, w in zip(line, widths)))
    ratio = comparison.qualitative_degradation()
    if ratio is not None:
        out.append(
            f"live p50 degradation, largest vs smallest poll size: {ratio:.2f}x "
            "(sim shows no such penalty — §4.1 polling overhead is real)"
        )
    return "\n".join(out)
