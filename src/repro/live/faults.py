"""Seeded datagram-level fault injection for loopback runs.

The sim's chaos layer (:mod:`repro.net.faults`) gates deliveries inside
the event scheduler; over real sockets the equivalent seam is the
``sendto`` call. :class:`LoopbackFaults` decides, per datagram, whether
to drop it, delay it, and/or deliver an extra copy — from a named
deterministic substream, so race-parity tests are reproducible in
distribution (wall-clock interleavings still vary, which is the point).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["LoopbackFaults"]


class LoopbackFaults:
    """Per-datagram loss/delay/duplication plan.

    Parameters mirror the sim's ``ChaosSpec`` knobs where they overlap:
    ``loss`` / ``duplicate`` are probabilities per send; ``delay`` adds
    ``Uniform(delay_min, delay_max)`` seconds before each delivery.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        loss: float = 0.0,
        duplicate: float = 0.0,
        delay_min: float = 0.0,
        delay_max: float = 0.0,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss!r}")
        if not 0.0 <= duplicate < 1.0:
            raise ValueError(f"duplicate must be in [0, 1): {duplicate!r}")
        if delay_min < 0 or delay_max < delay_min:
            raise ValueError(f"bad delay range: [{delay_min!r}, {delay_max!r}]")
        self._rng = rng
        self.loss = loss
        self.duplicate = duplicate
        self.delay_min = delay_min
        self.delay_max = delay_max
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def _delay(self) -> float:
        if self.delay_max <= 0.0:
            return 0.0
        delay = float(self._rng.uniform(self.delay_min, self.delay_max))
        if delay > 0.0:
            self.delayed += 1
        return delay

    def plan(self) -> Optional[List[float]]:
        """Delivery plan for one datagram.

        Returns ``None`` to drop it, else a list of send delays in
        seconds — one entry per copy to deliver (>= 1 entries).
        """
        if self.loss > 0.0 and self._rng.random() < self.loss:
            self.dropped += 1
            return None
        delays = [self._delay()]
        if self.duplicate > 0.0 and self._rng.random() < self.duplicate:
            self.duplicated += 1
            delays.append(self._delay())
        return delays
