"""``LiveServer`` — a real asyncio UDP server node.

One ``LiveServer`` is the live counterpart of the sim's ``ServerNode``
plus its slice of ``ServiceCluster._deliver_request``: a FIFO queue
drained by ``workers`` asyncio worker tasks, service work performed
either as a real CPU spin (``prototype.microbench``) or as an
``asyncio.sleep`` (deterministic tests), admission control through the
**same** :class:`~repro.cluster.overload.OverloadController` as the
simulator, and soft-state availability announcements through the
**same** :class:`~repro.cluster.availability.ServicePublisher` — both
running against a :class:`~repro.live.clock.WallClock`.

At-most-once semantics over a lossy transport follow the classic
reply-cache design: a REQUEST whose ``(id, attempt)`` was already
served is answered from the cache without re-executing the service
(``duplicates_ignored``); a request id currently queued is dropped
(at most one live copy per server, mirroring the sim's ``queued_at``
guard). POLL handling optionally burns ``poll_spin`` seconds of real
CPU — the §4.1 polling-overhead source that makes poll size 8 degrade
on real hardware.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.cluster.availability import ServicePublisher
from repro.cluster.overload import OverloadController, OverloadPolicy
from repro.live.clock import WallClock
from repro.live.faults import LoopbackFaults
from repro.live.wire import WireError, decode_message, encode_message
from repro.prototype.microbench import SpinCalibration, calibrate_spin, spin_for

__all__ = ["LiveServer", "DEFAULT_SERVICE_NAME"]

DEFAULT_SERVICE_NAME = "svc"


class _ServiceStamp:
    """Duck-typed stand-in for ``Request`` in ``observe_completion``
    (the controller's EWMA reads only ``start_time``)."""

    __slots__ = ("start_time",)

    def __init__(self, start_time: float):
        self.start_time = start_time


class _WirePublishChannel:
    """Duck-typed ``AvailabilityChannel`` for :class:`ServicePublisher`:
    ``publish`` fans PUBLISH datagrams out to subscribed client addrs."""

    __slots__ = ("server",)

    def __init__(self, server: "LiveServer"):
        self.server = server

    def publish(self, src: int, payload: Any) -> int:
        node_id, entries, published_at = payload
        data = encode_message(
            "publish", server=node_id, entries=[list(e) for e in entries], at=published_at
        )
        for addr in list(self.server.subscribers):
            self.server.send_datagram(data, addr)
        return len(self.server.subscribers)


class LiveServer(asyncio.DatagramProtocol):
    """An asyncio UDP service node (the Neptune prototype's server side)."""

    def __init__(
        self,
        node_id: int,
        clock: WallClock,
        *,
        workers: int = 1,
        mode: str = "sleep",
        calibration: Optional[SpinCalibration] = None,
        slice_seconds: float = 0.001,
        poll_spin: float = 0.0,
        max_queue: Optional[int] = None,
        overload: Optional[OverloadPolicy] = None,
        publish_interval: Optional[float] = None,
        entries: Iterable[Tuple[str, int]] = ((DEFAULT_SERVICE_NAME, 0),),
        rng: Optional[np.random.Generator] = None,
        faults: Optional[LoopbackFaults] = None,
    ) -> None:
        if mode not in ("sleep", "spin"):
            raise ValueError(f"mode must be 'sleep' or 'spin', got {mode!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slice_seconds <= 0:
            raise ValueError(f"slice_seconds must be > 0, got {slice_seconds!r}")
        self.node_id = node_id
        self.clock = clock
        self.workers = workers
        self.mode = mode
        self.slice_seconds = slice_seconds
        self.poll_spin = poll_spin
        self.max_queue = max_queue
        self.faults = faults
        self._rng = rng if rng is not None else np.random.default_rng(node_id)
        self._calibration = calibration
        if mode == "spin" or poll_spin > 0.0:
            # Calibrate once, up front, so service work never includes a
            # calibration transient.
            if self._calibration is None:
                self._calibration = calibrate_spin(0.02)

        self.transport: Optional[asyncio.DatagramTransport] = None
        self.alive = True
        self._queue: "asyncio.Queue[Tuple[Dict[str, Any], Tuple[str, int]]]" = asyncio.Queue()
        self._queued_ids: Set[int] = set()
        self._in_service = 0
        # Reply cache: request id -> (attempt, encoded RESPONSE datagram).
        self._served: Dict[int, Tuple[int, bytes]] = {}
        self._worker_tasks: list = []

        # Availability: shared ServicePublisher over a wire-backed channel.
        self.subscribers: Set[Tuple[str, int]] = set()
        self.publisher: Optional[ServicePublisher] = None
        if publish_interval is not None:
            self.publisher = ServicePublisher(
                self.clock,  # the Clock seam: wall clock instead of the sim
                _WirePublishChannel(self),
                node_id,
                entries=entries,
                mean_interval=publish_interval,
                rng=self._rng,
            )

        # Overload control: the simulator's controller, on wall time.
        self.overload: Optional[OverloadController] = None
        if overload is not None and overload.enabled:
            self.overload = OverloadController(
                overload, self.clock, workers=workers, rng=self._rng
            )
            if self.publisher is not None and overload.withdraw_after is not None:
                self.overload.on_withdraw = self.publisher.stop
                self.overload.on_rejoin = self._rejoin

        # Counters (mirroring ServerNode / ServiceCluster names).
        self.completed_count = 0
        self.rejected_count = 0
        self.rejects_sent = 0
        self.duplicates_ignored = 0
        self.polls_served = 0
        self.wire_errors = 0
        self.poll_spin_total = 0.0

    # ------------------------------------------------------------------
    # asyncio protocol plumbing
    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:  # type: ignore[override]
        self.transport = transport
        for _ in range(self.workers):
            self._worker_tasks.append(asyncio.ensure_future(self._worker()))
        if self.publisher is not None:
            self.publisher.start()

    @property
    def address(self) -> Tuple[str, int]:
        assert self.transport is not None, "server not started"
        return self.transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        """Stop serving: cancel workers, stop publishing, close the socket.

        Used both for orderly shutdown and to simulate a crash in the
        race-parity tests (in-flight requests die with the node).
        """
        self.alive = False
        if self.publisher is not None:
            self.publisher.stop()
        for task in self._worker_tasks:
            task.cancel()
        self._worker_tasks.clear()
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def send_datagram(self, data: bytes, addr: Tuple[str, int]) -> None:
        """Send through the (optional) fault plan — the live counterpart
        of the sim chaos layer's send-time gate."""
        if self.transport is None or not self.alive:
            return
        if self.faults is None:
            self.transport.sendto(data, addr)
            return
        plan = self.faults.plan()
        if plan is None:
            return
        for delay in plan:
            if delay <= 0.0:
                self.transport.sendto(data, addr)
            else:
                self.clock.after(delay, self._late_send, (data, addr))

    def _late_send(self, item: Tuple[bytes, Tuple[str, int]]) -> None:
        if self.transport is not None and self.alive:
            self.transport.sendto(*item)

    # ------------------------------------------------------------------
    # datagram handling
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Queued + in-service, the load metric POLL replies report
        (same semantics as ``ServerNode.queue_length``)."""
        return self._queue.qsize() + self._in_service

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:  # type: ignore[override]
        if not self.alive:
            return
        try:
            msg = decode_message(data)
        except WireError:
            self.wire_errors += 1
            return
        kind = msg["k"]
        if kind == "poll":
            self._on_poll(msg, addr)
        elif kind == "request":
            self._on_request(msg, addr)
        elif kind == "subscribe":
            self._on_subscribe(msg, addr)
        # Anything else (response/reject/poll_reply) is not for servers.

    def _on_poll(self, msg: Dict[str, Any], addr: Tuple[str, int]) -> None:
        self.polls_served += 1
        if self.poll_spin > 0.0:
            # Real CPU charged to poll handling — §4.1's server-side
            # overhead source, and the reason poll size 8 degrades.
            assert self._calibration is not None
            spin_for(self.poll_spin, self._calibration)
            self.poll_spin_total += self.poll_spin
        reply = encode_message(
            "poll_reply",
            pid=msg["pid"],
            server=self.node_id,
            q=self.queue_length,
            at=self.clock.now,
        )
        self.send_datagram(reply, addr)

    def _on_subscribe(self, msg: Dict[str, Any], addr: Tuple[str, int]) -> None:
        self.subscribers.add(addr)
        if self.publisher is not None and self.publisher.running:
            # Answer the new subscriber immediately so it need not wait
            # out a refresh interval (mirrors the sim's table priming).
            data = encode_message(
                "publish",
                server=self.node_id,
                entries=[list(e) for e in self.publisher.entries],
                at=self.clock.now,
            )
            self.send_datagram(data, addr)

    def _on_request(self, msg: Dict[str, Any], addr: Tuple[str, int]) -> None:
        req_id = msg["id"]
        attempt = msg["attempt"]
        if req_id in self._queued_ids:
            # At most one live copy per server (sim: queued_at guard).
            self.duplicates_ignored += 1
            return
        served = self._served.get(req_id)
        if served is not None and served[0] == attempt:
            # Duplicate of an attempt we already executed: re-send the
            # cached RESPONSE, never re-run the service (at-most-once).
            self.duplicates_ignored += 1
            self.send_datagram(served[1], addr)
            return
        if self.max_queue is not None and self.queue_length >= self.max_queue:
            self._reject(msg, addr)
            return
        if self.overload is not None and not self.overload.admit(self.queue_length):
            self._reject(msg, addr, shed=True)
            return
        self._queued_ids.add(req_id)
        msg["_enq"] = self.clock.now
        self._queue.put_nowait((msg, addr))

    def _reject(self, msg: Dict[str, Any], addr: Tuple[str, int], shed: bool = False) -> None:
        self.rejected_count += 1
        fast = self.overload.policy.fast_reject if (shed and self.overload) else True
        if fast:
            self.rejects_sent += 1
            nack = encode_message(
                "reject", id=msg["id"], attempt=msg["attempt"], server=self.node_id
            )
            self.send_datagram(nack, addr)

    def _rejoin(self) -> None:
        if self.alive and self.publisher is not None:
            self.publisher.start()

    # ------------------------------------------------------------------
    # service work
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            msg, addr = await self._queue.get()
            self._in_service += 1
            try:
                await self._serve(msg, addr)
            finally:
                self._in_service -= 1
                self._queued_ids.discard(msg["id"])

    async def _serve(self, msg: Dict[str, Any], addr: Tuple[str, int]) -> None:
        start = self.clock.now
        service = float(msg["service"])
        if self.mode == "sleep":
            await asyncio.sleep(service)
        else:
            # Real CPU spin, sliced so datagrams (polls!) are handled
            # between slices — their replies contend with service work
            # exactly as on the paper's hardware.
            assert self._calibration is not None
            remaining = service
            while remaining > 0.0:
                chunk = min(self.slice_seconds, remaining)
                spin_for(chunk, self._calibration)
                remaining -= chunk
                await asyncio.sleep(0)
        done = self.clock.now
        response = encode_message(
            "response",
            id=msg["id"],
            attempt=msg["attempt"],
            server=self.node_id,
            enq=msg["_enq"],
            start=start,
            done=done,
        )
        self.completed_count += 1
        self._served[msg["id"]] = (msg["attempt"], response)
        if len(self._served) > 4096:
            # Trim the reply cache FIFO-ish (insertion ordered dict).
            for key in list(self._served)[:1024]:
                del self._served[key]
        if self.overload is not None:
            self.overload.observe_completion(_ServiceStamp(start), self.queue_length)
        self.send_datagram(response, addr)

    def counters(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "completed": float(self.completed_count),
            "rejected": float(self.rejected_count),
            "rejects_sent": float(self.rejects_sent),
            "duplicates_ignored": float(self.duplicates_ignored),
            "polls_served": float(self.polls_served),
            "wire_errors": float(self.wire_errors),
            "poll_spin_total": self.poll_spin_total,
        }
        if self.overload is not None:
            out.update({k: float(v) for k, v in self.overload.counters().items()})
        return out
