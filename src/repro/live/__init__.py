"""Live (wall-clock, asyncio UDP) runtime for the Neptune prototype.

This package runs the *same* policy, reliability, and overload code as
the simulator, over real loopback UDP sockets with real time:

- :mod:`~repro.live.clock` — ``WallClock``: the :class:`repro.sim.clock.Clock`
  implementation backed by an asyncio event loop's monotonic time.
- :mod:`~repro.live.wire` — versioned datagram codec for the message
  kinds the sim models (REQUEST/RESPONSE/REJECT/POLL/POLL_REPLY/PUBLISH).
- :mod:`~repro.live.server` — ``LiveServer``: an asyncio UDP server node
  with a FIFO worker queue, CPU-spin or sleep service work, soft-state
  PUBLISH announcements, and the shared ``OverloadController``.
- :mod:`~repro.live.client` — ``LiveCluster``: the client/drive agent
  exposing the same policy-context surface as ``ServiceCluster`` so
  registry policies, ``ReliabilityEngine``, ``ClusterMetrics``, and
  ``TelemetryCollector`` run unmodified.
- :mod:`~repro.live.faults` — seeded loss/delay/duplication injection
  for loopback race-parity tests.
- :mod:`~repro.live.harness` — in-process loopback orchestration plus
  the sim-vs-real comparison used by ``repro drive``.

Nothing here is imported by the simulation paths: with no live runtime
involved, simulation outputs are bit-identical to pre-live behavior.
"""

from repro.live.clock import WallClock, WallHandle
from repro.live.wire import WireError, decode_message, encode_message

__all__ = [
    "WallClock",
    "WallHandle",
    "WireError",
    "decode_message",
    "encode_message",
]
