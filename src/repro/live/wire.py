"""Datagram codec for the live runtime.

One JSON object per UDP datagram, versioned, with a short ``k`` kind
tag matching the sim's :class:`~repro.net.message.MessageKind` values.
JSON keeps the wire human-debuggable (``tcpdump -A`` readable) and
dependency-free; datagrams stay well under loopback MTU.

Message kinds and required fields:

``request``      ``id`` ``attempt`` ``client`` ``service`` (seconds)
``response``     ``id`` ``attempt`` ``server`` ``enq`` ``start`` ``done``
``reject``       ``id`` ``attempt`` ``server``
``poll``         ``pid``
``poll_reply``   ``pid`` ``server`` ``q`` ``at``
``publish``      ``server`` ``entries`` ``at``
``subscribe``    ``client``

Times are seconds on the *sender's* clock. Within the in-process
loopback harness every component shares one ``WallClock`` so they are
directly comparable; the standalone ``repro serve`` path documents the
cross-clock caveat (clients fall back to duration arithmetic).
"""

from __future__ import annotations

import json
from typing import Any, Dict

__all__ = ["WIRE_VERSION", "WireError", "encode_message", "decode_message", "KINDS"]

WIRE_VERSION = 1

#: Wire kind tag -> required fields (beyond ``v`` and ``k``).
KINDS: Dict[str, tuple] = {
    "request": ("id", "attempt", "client", "service"),
    "response": ("id", "attempt", "server", "enq", "start", "done"),
    "reject": ("id", "attempt", "server"),
    "poll": ("pid",),
    "poll_reply": ("pid", "server", "q", "at"),
    "publish": ("server", "entries", "at"),
    "subscribe": ("client",),
}


class WireError(ValueError):
    """Raised for malformed, unversioned, or unknown datagrams."""


def encode_message(kind: str, **fields: Any) -> bytes:
    """Encode one datagram. Validates the kind and required fields."""
    required = KINDS.get(kind)
    if required is None:
        raise WireError(f"unknown wire kind: {kind!r}")
    missing = [name for name in required if name not in fields]
    if missing:
        raise WireError(f"{kind} datagram missing fields: {missing}")
    payload = {"v": WIRE_VERSION, "k": kind}
    payload.update(fields)
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> Dict[str, Any]:
    """Decode and validate one datagram; returns the field dict."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable datagram: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(f"datagram is not an object: {type(payload).__name__}")
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version: {version!r} (expected {WIRE_VERSION})")
    kind = payload.get("k")
    required = KINDS.get(kind)  # type: ignore[arg-type]
    if required is None:
        raise WireError(f"unknown wire kind: {kind!r}")
    missing = [name for name in required if name not in payload]
    if missing:
        raise WireError(f"{kind} datagram missing fields: {missing}")
    return payload
