"""Wall-clock :class:`~repro.sim.clock.Clock` backed by an asyncio loop.

``WallClock`` duck-types the scheduling surface of
:class:`~repro.sim.engine.Simulator` (``now``/``at``/``after``/
``call_soon``/``cancel``) so every cluster component — polling discard
timers, reliability backoff, breaker lazy transitions, soft-state TTL
refresh loops — runs unmodified against real time.

``now`` is ``loop.time() - origin``: monotonic, in seconds, and (by
default) starting near ``0.0`` at construction so live timestamps look
like sim timestamps in spans/series exports. Components must not rely
on that convenience — the seam tests drive them with offset origins.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

__all__ = ["WallClock", "WallHandle"]

_SENTINEL = object()


class WallHandle:
    """A scheduled callback on a :class:`WallClock`.

    Mirrors :class:`~repro.sim.engine.EventHandle`'s readable surface
    (``time``, ``cancelled``, ``cancel()``) while wrapping an asyncio
    ``TimerHandle``.
    """

    __slots__ = ("time", "cancelled", "_timer")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False
        self._timer: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self._timer is not None:
                self._timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<WallHandle t={self.time:.6f} {state}>"


class WallClock:
    """Monotonic wall-clock time + timers over an asyncio event loop."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        origin: Optional[float] = None,
    ) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        # Default origin = "now", so clock readings start near 0.0 and
        # exported telemetry timestamps are human-readable offsets.
        self._origin = self._loop.time() if origin is None else float(origin)

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def origin(self) -> float:
        return self._origin

    @property
    def now(self) -> float:
        return self._loop.time() - self._origin

    def at(self, time: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> WallHandle:
        """Schedule ``fn`` at absolute clock time ``time`` (clamped to now)."""
        handle = WallHandle(time)
        delay = max(0.0, time - self.now)
        handle._timer = self._loop.call_later(delay, self._fire, handle, fn, arg)
        return handle

    def after(self, delay: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> WallHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.at(self.now + delay, fn, arg)

    def call_soon(self, fn: Callable[..., Any], arg: Any = _SENTINEL) -> WallHandle:
        handle = WallHandle(self.now)
        handle._timer = None
        soon = self._loop.call_soon(self._fire, handle, fn, arg)
        # call_soon returns a plain Handle; keep it cancellable anyway.
        handle._timer = soon  # type: ignore[assignment]
        return handle

    def cancel(self, handle: Optional[WallHandle]) -> None:
        if handle is not None:
            handle.cancel()

    @staticmethod
    def _fire(handle: WallHandle, fn: Callable[..., Any], arg: Any) -> None:
        if handle.cancelled:
            return
        if arg is _SENTINEL:
            fn()
        else:
            fn(arg)
