"""``LiveCluster`` — the client/drive agent of the live runtime.

This is the wall-clock counterpart of
:class:`~repro.cluster.system.ServiceCluster`: it exposes the *same*
policy-context surface (``rng`` / ``available_servers`` /
``poll_server`` / ``dispatch`` / ``sim`` / ``constants`` / ``servers``
/ ``telemetry``) so registry policies, the
:class:`~repro.cluster.reliability.ReliabilityEngine`, the
:class:`~repro.cluster.availability.ServiceMappingTable`,
:class:`~repro.cluster.system.ClusterMetrics`, and the
:class:`~repro.telemetry.collector.TelemetryCollector` all run
**unmodified** — time comes from a
:class:`~repro.live.clock.WallClock` and messages travel over real
UDP datagrams instead of simulated deliveries.

The request lifecycle (arrival → select → dispatch → response /
reject / timeout → retry → terminal record) mirrors
``ServiceCluster`` line for line, including every stale-delivery
guard; the race-parity tests assert the same exactly-once invariants
under injected loss/delay/duplication.

Deliberate divergences from the sim (documented in DESIGN.md §15):

- hedged requests are not supported live (the hedge path reaches into
  simulated delivery internals); constructing with a hedge-enabled
  reliability policy raises;
- overload/admission state lives in the *server* process; the client
  sees only REJECT NACKs (so ``overload`` stays ``None`` here and
  rejection counters are per-server);
- network accounting counts datagrams as seen at the client socket
  (sends for REQUEST/POLL, receipts for the rest).
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.cluster.availability import ServiceMappingTable
from repro.cluster.client import ClientNode
from repro.cluster.request import Request
from repro.cluster.system import ClusterMetrics
from repro.core.base import LoadBalancer, NoCandidatesError
from repro.live.clock import WallClock
from repro.live.faults import LoopbackFaults
from repro.live.server import DEFAULT_SERVICE_NAME
from repro.live.wire import WireError, decode_message, encode_message
from repro.net.latency import PAPER_NET, PaperNetworkConstants
from repro.net.message import MessageKind
from repro.sim.rng import RngHub

__all__ = ["LiveCluster", "LiveServerProxy"]

_WIRE_KIND_TO_SIM = {
    "request": MessageKind.REQUEST,
    "response": MessageKind.RESPONSE,
    "reject": MessageKind.REJECT,
    "poll": MessageKind.POLL,
    "poll_reply": MessageKind.POLL_REPLY,
    "publish": MessageKind.PUBLISH,
}


class LiveServerProxy:
    """Client-side view of a remote server (the ``ctx.servers`` surface).

    ``queue_recorder`` is populated from POLL replies when telemetry is
    on — the live series are *observed* queue lengths, not the server's
    ground truth (which lives in another bookkeeping domain).
    """

    __slots__ = ("node_id", "addr", "speed", "workers", "queue_recorder")

    def __init__(self, node_id: int, addr: Tuple[str, int], workers: int = 1):
        self.node_id = node_id
        self.addr = addr
        self.speed = 1.0
        self.workers = workers
        self.queue_recorder = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveServerProxy {self.node_id} @ {self.addr}>"


class _LiveNetwork:
    """Datagram accounting with the ``Network`` stats surface the
    telemetry collector and sampler expect."""

    __slots__ = ("message_counts", "byte_counts", "dropped_counts",
                 "inflight_recorder", "drops_recorder")

    def __init__(self) -> None:
        self.message_counts: Dict[MessageKind, int] = {}
        self.byte_counts: Dict[MessageKind, int] = {}
        self.dropped_counts: Dict[MessageKind, int] = {}
        self.inflight_recorder = None
        self.drops_recorder = None

    def count(self, wire_kind: str, n_bytes: int) -> None:
        kind = _WIRE_KIND_TO_SIM.get(wire_kind)
        if kind is None:
            return
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        self.byte_counts[kind] = self.byte_counts.get(kind, 0) + n_bytes


class _PublishShim:
    """Duck-typed ``Message`` for ``ServiceMappingTable._on_publish``."""

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload


class LiveCluster(asyncio.DatagramProtocol):
    """Drives a workload against live UDP servers with shared policy code."""

    def __init__(
        self,
        server_addrs: Dict[int, Tuple[str, int]],
        policy: LoadBalancer,
        clock: WallClock,
        *,
        seed: int = 0,
        n_clients: int = 6,
        constants: PaperNetworkConstants = PAPER_NET,
        request_timeout: Optional[float] = None,
        max_retries: int = 5,
        reselect_delay: Optional[float] = None,
        reliability=None,
        availability: bool = False,
        availability_ttl: float = 3.0,
        workers_per_server: int = 1,
        faults: Optional[LoopbackFaults] = None,
    ) -> None:
        if not server_addrs:
            raise ValueError("server_addrs must not be empty")
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        # The Clock seam: ``sim`` IS the wall clock. Policy, reliability,
        # and soft-state code consult ``ctx.sim.now``/``after`` exactly
        # as they do in simulation.
        self.sim = clock
        self.clock = clock
        self.rng_hub = RngHub(seed)
        self.constants = constants
        self.overhead = None
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        if reselect_delay is not None and reselect_delay <= 0:
            raise ValueError(f"reselect_delay must be > 0, got {reselect_delay}")
        self._reselect_delay = reselect_delay
        self._derived_reselect_delay = 0.1
        self.faults = faults

        ids = sorted(server_addrs)
        self.n_servers = len(ids)
        self.n_clients = n_clients
        self.servers = [
            LiveServerProxy(i, server_addrs[i], workers=workers_per_server) for i in ids
        ]
        self._addr_by_id = {proxy.node_id: proxy.addr for proxy in self.servers}
        self._static_members = ids
        # Client node ids continue after server ids (sim convention).
        base = max(ids) + 1
        self.clients = [ClientNode(clock, base + j) for j in range(n_clients)]

        self.network = _LiveNetwork()
        self.transport: Optional[asyncio.DatagramTransport] = None

        # Availability: one shared soft-state table (all clients share
        # the drive socket, hence one subscription).
        self.availability_enabled = availability
        self.mapping_tables: Dict[int, ServiceMappingTable] = {}
        self._shared_table: Optional[ServiceMappingTable] = None
        if availability:
            table = ServiceMappingTable(clock, ttl=availability_ttl)
            self._shared_table = table
            for client in self.clients:
                self.mapping_tables[client.node_id] = table

        self.overload = None
        self.telemetry = None
        self.chaos = None
        self.reliability = None
        # The live runtime has no dispatcher tier or autoscaler; the
        # clients themselves are the selector agents (policies address
        # per-selector state through this attribute).
        self.dispatchers = None
        self.autoscaler = None
        if reliability is not None and reliability.enabled:
            if reliability.hedge_quantile is not None:
                raise ValueError(
                    "hedged requests are not supported by the live runtime "
                    "(set hedge_quantile=None for repro drive)"
                )
            from repro.cluster.reliability import ReliabilityEngine

            self.reliability = ReliabilityEngine(self, reliability)

        # Workload slots + lifecycle state (mirrors ServiceCluster).
        self.n_requests = 0
        self._arrival_times: Optional[np.ndarray] = None
        self._service_times: Optional[np.ndarray] = None
        self.metrics: Optional[ClusterMetrics] = None
        self._completed = 0
        self._t0 = 0.0
        self._requests: Dict[int, Request] = {}
        self._timeout_handles: Dict[int, Any] = {}
        self._selecting_request: Optional[Request] = None
        self._polls: Dict[int, Tuple[int, Callable[[int, int, float], None], float]] = {}
        self._next_poll_id = 0
        self._done_event = asyncio.Event()

        # Resilience counters (same names as ServiceCluster).
        self.request_timeouts_fired = 0
        self.server_loss_retries = 0
        self.duplicate_deliveries_ignored = 0
        self.stale_responses_ignored = 0
        self.rejects_sent = 0
        self.stale_rejects_ignored = 0
        self.stale_poll_replies_ignored = 0
        self.wire_errors = 0

        self.policy = policy
        policy.bind(self)

    # ------------------------------------------------------------------
    # asyncio protocol plumbing
    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:  # type: ignore[override]
        self.transport = transport
        if self.availability_enabled:
            sub = encode_message("subscribe", client=self.clients[0].node_id)
            for proxy in self.servers:
                transport.sendto(sub, proxy.addr)

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def _send(self, wire_kind: str, data: bytes, addr: Tuple[str, int]) -> None:
        if self.transport is None:
            return
        self.network.count(wire_kind, len(data))
        if self.faults is None:
            self.transport.sendto(data, addr)
            return
        plan = self.faults.plan()
        if plan is None:
            return
        for delay in plan:
            if delay <= 0.0:
                self.transport.sendto(data, addr)
            else:
                self.clock.after(delay, self._late_send, (data, addr))

    def _late_send(self, item: Tuple[bytes, Tuple[str, int]]) -> None:
        if self.transport is not None:
            self.transport.sendto(*item)

    # ------------------------------------------------------------------
    # policy context API (same surface as ServiceCluster)
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        return self.rng_hub.stream(name)

    def available_servers(self, client: ClientNode) -> list[int]:
        if not self.availability_enabled:
            members = self._static_members
        else:
            members = self.mapping_tables[client.node_id].available(DEFAULT_SERVICE_NAME, 0)
        selecting = self._selecting_request
        if selecting is not None and selecting.last_rejected_by >= 0:
            filtered = [s for s in members if s != selecting.last_rejected_by]
            if filtered:
                members = filtered
        if self.reliability is not None:
            return list(self.reliability.filter_candidates(members))
        return list(members)

    def client_for(self, request: Request) -> ClientNode:
        base = self.clients[0].node_id
        return self.clients[(request.client_id - base) % self.n_clients]

    @property
    def selector_agents(self) -> list:
        """Policy-state owners (sim convention): no dispatcher tier in
        the live runtime, so the clients select for themselves."""
        return self.clients

    @property
    def reselect_delay(self) -> float:
        if self._reselect_delay is not None:
            return self._reselect_delay
        if self.request_timeout is not None:
            return self.request_timeout
        return self._derived_reselect_delay

    def poll_server(
        self,
        client: ClientNode,
        server_id: int,
        on_reply: Callable[[int, int, float], None],
    ) -> None:
        """Send a real POLL datagram; the reply carries the server's
        queue length and its read time (shared wall clock)."""
        self._next_poll_id += 1
        pid = self._next_poll_id
        self._polls[pid] = (server_id, on_reply, self.clock.now)
        self._send("poll", encode_message("poll", pid=pid), self._addr_by_id[server_id])

    def dispatch(self, client: ClientNode, request: Request, server_id: int) -> None:
        if request.done:
            # A stale poll round decided after the request already
            # finished through another path (timeout retry + loss).
            return
        request.last_rejected_by = -1
        request.dispatch_time = self.clock.now
        self.policy.notify_dispatch(client, request, server_id)
        self._requests[request.index] = request
        data = encode_message(
            "request",
            id=request.index,
            attempt=request.retries,
            client=client.node_id,
            service=request.service_time,
        )
        self._send("request", data, self._addr_by_id[server_id])
        self._arm_attempt_timeout(request)
        if self.reliability is not None:
            self.reliability.on_dispatch(client, request, server_id)

    def _arm_attempt_timeout(self, request: Request) -> None:
        timeout = (
            self.request_timeout
            if self.reliability is None
            else self.reliability.attempt_timeout(request)
        )
        if timeout is None:
            return
        old = self._timeout_handles.pop(request.index, None)
        if old is not None:
            self.clock.cancel(old)
        self._timeout_handles[request.index] = self.clock.after(
            timeout, self._on_request_timeout, request
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def load_workload(self, interarrival: np.ndarray, service: np.ndarray) -> None:
        gaps = np.ascontiguousarray(interarrival, dtype=np.float64)
        service_times = np.ascontiguousarray(service, dtype=np.float64)
        if gaps.shape != service_times.shape or gaps.ndim != 1 or gaps.size == 0:
            raise ValueError("interarrival and service must be equal-length non-empty 1-D")
        self.n_requests = int(gaps.shape[0])
        self._arrival_times = np.cumsum(gaps)
        self._service_times = service_times
        mean_service = float(service_times.mean())
        if mean_service > 0.0:
            self._derived_reselect_delay = 5.0 * mean_service
        self.metrics = ClusterMetrics(self.n_requests)
        self._completed = 0
        self._done_event = asyncio.Event()

    async def run(self) -> ClusterMetrics:
        """Drive the loaded workload to completion; returns the metrics.

        Callers own the hard timeout (``asyncio.wait_for``) — a live
        run must never hang the suite.
        """
        if self._arrival_times is None or self.metrics is None:
            raise RuntimeError("load_workload() must be called before run()")
        self._t0 = self.clock.now
        self.clock.at(self._t0 + float(self._arrival_times[0]), self._on_arrival, 0)
        await self._done_event.wait()
        return self.metrics

    def _on_arrival(self, index: int) -> None:
        assert self._arrival_times is not None and self._service_times is not None
        if index + 1 < self.n_requests:
            self.clock.at(
                self._t0 + float(self._arrival_times[index + 1]),
                self._on_arrival,
                index + 1,
            )
        client = self.clients[index % self.n_clients]
        request = Request(
            index=index,
            client_id=client.node_id,
            service_time=float(self._service_times[index]),
            arrival_time=self.clock.now,
        )
        self._safe_select(client, request)

    def _safe_select(self, client: ClientNode, request: Request) -> None:
        self._arm_attempt_timeout(request)
        self._selecting_request = request
        try:
            self.policy.select(client, request)
        except NoCandidatesError:
            handle = self._timeout_handles.pop(request.index, None)
            if handle is not None:
                self.clock.cancel(handle)
            self.clock.after(self.reselect_delay, self._retry, request)
        finally:
            self._selecting_request = None

    # ------------------------------------------------------------------
    # datagram handling
    # ------------------------------------------------------------------
    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:  # type: ignore[override]
        try:
            msg = decode_message(data)
        except WireError:
            self.wire_errors += 1
            return
        kind = msg["k"]
        if kind != "request":  # client never *receives* requests
            self.network.count(kind, len(data))
        if kind == "poll_reply":
            self._on_poll_reply(msg)
        elif kind == "response":
            self._on_response(msg)
        elif kind == "reject":
            self._on_reject(msg)
        elif kind == "publish":
            self._on_publish(msg)

    def _on_poll_reply(self, msg: Dict[str, Any]) -> None:
        entry = self._polls.pop(msg["pid"], None)
        if entry is None:
            # Duplicated or late reply for a poll already consumed.
            self.stale_poll_replies_ignored += 1
            return
        server_id, on_reply, _sent_at = entry
        queue_length = int(msg["q"])
        # Shared wall clock across the loopback harness: the server's
        # read time is directly comparable (telemetry staleness).
        observed_at = float(msg["at"])
        proxy = self.servers[self._proxy_index(server_id)]
        recorder = proxy.queue_recorder
        if recorder is not None:
            now = self.clock.now
            times = recorder.breakpoints()[0]
            if times.size == 0 or now >= times[-1]:
                recorder.record(now, float(queue_length))
        on_reply(server_id, queue_length, observed_at)

    def _proxy_index(self, server_id: int) -> int:
        # Server ids are dense from 0 in practice; fall back to scan.
        if server_id < len(self.servers) and self.servers[server_id].node_id == server_id:
            return server_id
        for i, proxy in enumerate(self.servers):
            if proxy.node_id == server_id:
                return i
        raise KeyError(f"unknown server id {server_id}")

    def _on_response(self, msg: Dict[str, Any]) -> None:
        request = self._requests.get(msg["id"])
        if request is None or request.done:
            # Duplicated RESPONSE, or a late response for a request that
            # already completed/failed via a retry path.
            self.stale_responses_ignored += 1
            return
        request.done = True
        handle = self._timeout_handles.pop(request.index, None)
        if handle is not None:
            self.clock.cancel(handle)
        request.server_id = int(msg["server"])
        request.enqueue_time = float(msg["enq"])
        request.start_time = float(msg["start"])
        request.completion_time = float(msg["done"])
        request.response_time = self.clock.now - request.arrival_time
        assert self.metrics is not None
        self.metrics.record(request)
        if self.telemetry is not None:
            self.telemetry.on_request_complete(request)
        self._completed += 1
        client = self.client_for(request)
        self.policy.notify_complete(client, request)
        if self.reliability is not None:
            self.reliability.on_complete(request, request)
        self._maybe_finish()

    def _on_reject(self, msg: Dict[str, Any]) -> None:
        request = self._requests.get(msg["id"])
        if request is None or request.done or request.queued_at >= 0 \
                or request.retries != msg["attempt"]:
            self.stale_rejects_ignored += 1
            return
        request.rejects += 1
        request.last_rejected_by = int(msg["server"])
        handle = self._timeout_handles.pop(request.index, None)
        if handle is not None:
            self.clock.cancel(handle)
        if self.reliability is not None:
            self.reliability.on_reject(request, int(msg["server"]))
        self._retry(request)

    def _on_publish(self, msg: Dict[str, Any]) -> None:
        if self._shared_table is None:
            return
        entries = tuple((str(s), int(p)) for s, p in msg["entries"])
        payload = (int(msg["server"]), entries, float(msg["at"]))
        self._shared_table._on_publish(_PublishShim(payload))  # noqa: SLF001

    # ------------------------------------------------------------------
    # timeout / retry path (mirrors ServiceCluster)
    # ------------------------------------------------------------------
    def _on_request_timeout(self, request: Request) -> None:
        self._timeout_handles.pop(request.index, None)
        if request.done:
            return
        self.request_timeouts_fired += 1
        if self.reliability is not None:
            self.reliability.on_attempt_failure(request)
        self._retry(request)

    def _retry(self, request: Request) -> None:
        if request.done:
            return
        request.retries += 1
        client = self.client_for(request)
        if request.retries > self.max_retries or (
            self.reliability is not None
            and self.reliability.should_fail_fast(request)
        ):
            request.done = True
            request.failed = True
            request.response_time = math.nan
            assert self.metrics is not None
            self.metrics.record(request)
            if self.telemetry is not None:
                self.telemetry.on_request_complete(request)
            if self.reliability is not None:
                self.reliability.on_terminal(request)
            self._completed += 1
            self._maybe_finish()
            return
        if self.reliability is not None:
            self.reliability.on_retry(request)
            delay = self.reliability.backoff_delay(request)
            if delay > 0.0:
                self.clock.after(delay, self._reselect, request)
                return
        self._safe_select(client, request)

    def _reselect(self, request: Request) -> None:
        if request.done:
            return
        self._safe_select(self.client_for(request), request)

    def _maybe_finish(self) -> None:
        if self._completed >= self.n_requests:
            self._done_event.set()

    def resilience_counters(self) -> Dict[str, float]:
        out = {
            "request_timeouts_fired": float(self.request_timeouts_fired),
            "stale_responses_ignored": float(self.stale_responses_ignored),
            "stale_rejects_ignored": float(self.stale_rejects_ignored),
            "stale_poll_replies_ignored": float(self.stale_poll_replies_ignored),
            "wire_errors": float(self.wire_errors),
        }
        if self.reliability is not None:
            out.update(
                {k: float(v) for k, v in self.reliability.counters().items()}
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LiveCluster servers={self.n_servers} clients={self.n_clients} "
            f"policy={self.policy.describe()} completed={self._completed}/{self.n_requests}>"
        )
