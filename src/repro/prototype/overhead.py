"""Prototype overhead model: where the testbed differs from the ideal.

The paper attributes the prototype/simulation gap to polling overheads
(§4.1): "1) longer polling delays resulted from larger poll size; 2)
less accurate server load index due to longer polling delay." Behind
those are concrete mechanisms on 2001-era Linux (2.2/2.4 kernels,
dual 400 MHz Pentium II):

- The load-index responder is a user-level thread; when the node's CPU
  is pinned by service work (a CPU-spinning microbenchmark), the
  responder waits for a scheduling opportunity. Scheduler quanta were
  ~10 ms — hence the paper's observed 10 ms / 20 ms poll-delay modes
  (8.1% of polls >10 ms, 5.6% >20 ms at d=3, 90% load).
- Handling an inquiry costs real CPU (UDP receive, wakeup, send),
  stolen from the service threads.
- The client pays CPU per poll sent and per reply collected
  (connected-UDP ``select`` loop).

:class:`PollDelayModel` encodes the reply delay as a three-mode mixture
conditioned on the server being busy; :class:`PrototypeOverheadModel`
bundles all knobs with defaults calibrated to the published profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.server import ServerNode

__all__ = ["PollDelayModel", "PrototypeOverheadModel", "PAPER_PROFILE"]


@dataclass(frozen=True)
class PollDelayModel:
    """Load-dependent extra delay before a poll reply leaves the server.

    When the server is idle the responder runs immediately (no extra
    delay). When busy, a three-mode mixture applies:

    - *fast*: the responder preempts quickly (softirq + brief wait),
      uniform on ``[0, fast_max]``;
    - *one quantum*: the responder waits out one scheduler timeslice,
      uniform on ``[quantum, 2*quantum]``;
    - *multi quantum*: the responder loses several timeslices,
      ``2*quantum + Exp(multi_tail_mean)``.

    Default weights reproduce the paper's profile: with the server busy
    ~90% of the time (90% load), P(delay > 10 ms) ≈ 0.9 × (0.028 +
    0.062) ≈ 8.1% and P(delay > 20 ms) ≈ 0.9 × 0.062 ≈ 5.6%.
    """

    fast_weight: float = 0.910
    one_quantum_weight: float = 0.028
    multi_quantum_weight: float = 0.062
    fast_max: float = 0.6e-3
    quantum: float = 10e-3
    multi_tail_mean: float = 5e-3

    def __post_init__(self) -> None:
        total = self.fast_weight + self.one_quantum_weight + self.multi_quantum_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mixture weights must sum to 1, got {total}")
        if min(self.fast_weight, self.one_quantum_weight, self.multi_quantum_weight) < 0:
            raise ValueError("mixture weights must be >= 0")
        if self.fast_max < 0 or self.quantum <= 0 or self.multi_tail_mean <= 0:
            raise ValueError("delay parameters must be positive")

    def sample_busy(self, rng: np.random.Generator) -> float:
        """Draw one extra delay, given the server is busy."""
        u = rng.random()
        if u < self.fast_weight:
            return float(rng.uniform(0.0, self.fast_max))
        if u < self.fast_weight + self.one_quantum_weight:
            return float(rng.uniform(self.quantum, 2.0 * self.quantum))
        return 2.0 * self.quantum + float(rng.exponential(self.multi_tail_mean))

    def exceed_probabilities(self, busy_probability: float) -> tuple[float, float]:
        """Analytic P(delay > quantum), P(delay > 2*quantum).

        Used by the calibration test against the paper's 8.1% / 5.6%.
        """
        if not 0 <= busy_probability <= 1:
            raise ValueError(f"busy_probability must be in [0,1], got {busy_probability}")
        over_one = self.one_quantum_weight + self.multi_quantum_weight
        over_two = self.multi_quantum_weight
        return busy_probability * over_one, busy_probability * over_two


#: The paper's published §3.2 profile: fractions of polls slower than
#: 10 ms and 20 ms at poll size 3, 90% server load, 16 servers.
PAPER_PROFILE = (0.081, 0.056)


@dataclass(frozen=True)
class PrototypeOverheadModel:
    """All prototype overheads, bundled for :class:`ServiceCluster`.

    Parameters (seconds of CPU unless noted):

    - ``request_cpu_overhead`` — per-access server-side cost beyond the
      intended service time (dispatch, queue management, socket work).
    - ``poll_cpu_cost`` — server CPU stolen per inquiry handled; the
      in-flight service completion is pushed back by this much.
    - ``poll_send_cost`` / ``poll_recv_cost`` — client CPU per poll sent
      and per reply collected; client CPU work serializes.
    - ``poll_delay`` — the load-dependent reply delay model.
    """

    request_cpu_overhead: float = 300e-6
    poll_cpu_cost: float = 350e-6
    poll_send_cost: float = 25e-6
    poll_recv_cost: float = 25e-6
    poll_delay: PollDelayModel = field(default_factory=PollDelayModel)

    def __post_init__(self) -> None:
        for name in ("request_cpu_overhead", "poll_cpu_cost", "poll_send_cost", "poll_recv_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def sample_reply_delay(self, server: ServerNode, rng: np.random.Generator) -> float:
        """Extra reply latency for an inquiry arriving at ``server`` now."""
        if not server.busy:
            return 0.0
        return self.poll_delay.sample_busy(rng)
