"""Prototype-fidelity model of the paper's Linux-cluster testbed.

The paper's §4 point is that the idealized simulation (§2) misses
overheads that matter for fine-grain services. This subpackage supplies
those overheads as a model layered onto the same cluster simulator
(the substitution documented in DESIGN.md §2):

- :class:`~repro.prototype.overhead.PrototypeOverheadModel` — per-access
  server CPU overhead, client CPU cost per poll sent/received, server
  CPU stolen per inquiry handled, and a load-dependent poll-reply delay
  whose 10/20 ms modes come from the Linux scheduler quantum. Default
  parameters are calibrated to the paper's §3.2 profile (at d=3, 90%
  load, 16 servers: 8.1% of polls exceed 10 ms, 5.6% exceed 20 ms).
- :mod:`~repro.prototype.calibration` — the paper's empirical full-load
  rule: 100% load is the single-server request rate at which ~98% of
  requests complete within 2 seconds.
- :mod:`~repro.prototype.profiling` — measure the slow-poll fractions of
  a run (regenerates the §3.2 profile).
"""

from repro.prototype.overhead import PAPER_PROFILE, PollDelayModel, PrototypeOverheadModel
from repro.prototype.calibration import FullLoadCalibration, calibrate_full_load
from repro.prototype.profiling import PollProfile, profile_poll_delays
from repro.prototype.microbench import SpinCalibration, calibrate_spin, spin_for

__all__ = [
    "FullLoadCalibration",
    "PAPER_PROFILE",
    "PollDelayModel",
    "PollProfile",
    "PrototypeOverheadModel",
    "SpinCalibration",
    "calibrate_full_load",
    "calibrate_spin",
    "profile_poll_delays",
    "spin_for",
]
