"""Empirical full-load calibration (paper §4).

"Due to various system overhead, we notice that the server load level
cannot simply be the mean service time divided by the mean arrival
interval. For each workload on a single-server setting, we consider the
server reach full load (100%) when around 98% of client requests were
successfully completed within two seconds. Then we use this as the
basis to calculate the client request rate for various server load
levels."

This matters enormously for the shape of Figure 6: for the
near-deterministic Fine-Grain trace the 98%-under-2s point sits near
nominal utilization 1.0, so "90% busy" leaves almost no CPU headroom
and polling overhead pushes servers toward saturation; for the
heavy-tailed Medium-Grain trace the 2 s tail criterion trips at much
lower nominal utilization, so "90% busy" carries a large hidden
headroom and tolerates polling overhead — which is why poll size 8
hurts the Fine-Grain trace but not the Medium-Grain trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.system import ServiceCluster
from repro.core.random_policy import RandomPolicy
from repro.net.latency import PAPER_NET, PaperNetworkConstants
from repro.prototype.overhead import PrototypeOverheadModel
from repro.sim.rng import RngHub
from repro.workload.workloads import Workload

__all__ = ["FullLoadCalibration", "calibrate_full_load"]


@dataclass(frozen=True)
class FullLoadCalibration:
    """Result of the 98%-under-2s bisection.

    ``nominal_rho_at_full_load`` is the single-server nominal
    utilization (mean service / mean interarrival) the rule declares to
    be "100% load". Experiment load levels multiply into it:
    ``nominal(load) = load * nominal_rho_at_full_load``.
    """

    workload_name: str
    nominal_rho_at_full_load: float
    achieved_completion_fraction: float
    threshold: float
    target_fraction: float

    def nominal(self, load: float) -> float:
        """Nominal per-server utilization for a requested load level."""
        if load <= 0:
            raise ValueError(f"load must be > 0, got {load}")
        return load * self.nominal_rho_at_full_load


def _completion_fraction(
    workload: Workload,
    nominal_rho: float,
    n_requests: int,
    seed: int,
    threshold: float,
    constants: PaperNetworkConstants,
    overhead: PrototypeOverheadModel,
) -> float:
    """Fraction of requests finishing within ``threshold`` on 1 server."""
    hub = RngHub(seed)
    gaps, services = workload.generate(hub.stream("calibration.workload"), n_requests)
    mean_service = float(services.mean())
    target_interval = mean_service / nominal_rho
    gaps = gaps * (target_interval / float(gaps.mean()))
    cluster = ServiceCluster(
        n_servers=1,
        policy=RandomPolicy(),
        seed=seed,
        n_clients=1,
        constants=constants,
        overhead=overhead,
    )
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    mask = metrics.measurement_slice(warmup_fraction=0.1)
    responses = metrics.response_time[mask]
    return float((responses <= threshold).mean())


def calibrate_full_load(
    workload: Workload,
    overhead: PrototypeOverheadModel | None = None,
    seed: int = 0,
    n_requests: int = 6000,
    threshold: float = 2.0,
    target_fraction: float = 0.98,
    constants: PaperNetworkConstants = PAPER_NET,
    rho_bounds: tuple[float, float] = (0.40, 1.02),
    iterations: int = 12,
) -> FullLoadCalibration:
    """Bisect the nominal utilization at which the 98%-rule trips.

    Uses common random numbers (one seed for every probe), so the
    completion fraction is a deterministic, effectively monotone
    function of the nominal rate and bisection is well-posed.
    """
    if not 0 < target_fraction < 1:
        raise ValueError(f"target_fraction must be in (0,1), got {target_fraction}")
    overhead = overhead or PrototypeOverheadModel()
    lo, hi = rho_bounds
    if not 0 < lo < hi:
        raise ValueError(f"invalid rho_bounds {rho_bounds}")

    def fraction(rho: float) -> float:
        return _completion_fraction(
            workload, rho, n_requests, seed, threshold, constants, overhead
        )

    # The fraction decreases with rho. If even the upper bound meets the
    # target, full load is at (or beyond) the bound.
    if fraction(hi) >= target_fraction:
        return FullLoadCalibration(
            workload.name, hi, fraction(hi), threshold, target_fraction
        )
    if fraction(lo) < target_fraction:
        raise RuntimeError(
            f"workload {workload.name!r} misses the {target_fraction:.0%} "
            f"criterion even at rho={lo}; widen rho_bounds"
        )
    achieved = float("nan")
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        achieved = fraction(mid)
        if achieved >= target_fraction:
            lo = mid
        else:
            hi = mid
    return FullLoadCalibration(workload.name, lo, achieved, threshold, target_fraction)
