"""Poll-delay profiling: regenerate the paper's §3.2 profile.

"We profiled a typical run under a poll size of 3, a server load index
of 90%, and 16 server nodes. The profiling shows that 8.1% of the polls
are not completed within 10 ms and 5.6% of them are not completed
within 20 ms."

:func:`profile_poll_delays` runs the prototype model while wiretapping
every poll round trip and reports the exceedance fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.system import ServiceCluster

__all__ = ["PollProfile", "profile_poll_delays"]


@dataclass(frozen=True)
class PollProfile:
    """Observed poll round-trip statistics."""

    n_polls: int
    mean_rtt: float
    frac_over_10ms: float
    frac_over_20ms: float

    def row(self) -> str:
        return (
            f"polls={self.n_polls:>8d}  mean RTT={self.mean_rtt * 1e3:6.2f}ms  "
            f">10ms: {self.frac_over_10ms:6.2%}  >20ms: {self.frac_over_20ms:6.2%}"
        )


def profile_poll_delays(cluster: ServiceCluster) -> "_PollTap":
    """Install a poll wiretap on ``cluster``; run it, then call
    ``tap.profile()``.

    Must be called before ``cluster.run()``.
    """
    return _PollTap(cluster)


class _PollTap:
    """Wraps ``cluster.poll_server`` to time each poll round trip."""

    def __init__(self, cluster: ServiceCluster):
        self.cluster = cluster
        self.rtts: list[float] = []
        self._inner = cluster.poll_server

        def tapped(client, server_id, on_reply):
            sent_at = cluster.sim.now

            def timed_reply(sid: int, qlen: int, observed_at: float) -> None:
                self.rtts.append(cluster.sim.now - sent_at)
                on_reply(sid, qlen, observed_at)

            self._inner(client, server_id, timed_reply)

        cluster.poll_server = tapped  # type: ignore[method-assign]

    def profile(self) -> PollProfile:
        if not self.rtts:
            raise RuntimeError("no polls observed; did the policy poll?")
        rtts = np.asarray(self.rtts)
        return PollProfile(
            n_polls=int(rtts.size),
            mean_rtt=float(rtts.mean()),
            frac_over_10ms=float((rtts > 10e-3).mean()),
            frac_over_20ms=float((rtts > 20e-3).mean()),
        )
