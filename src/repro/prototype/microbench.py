"""CPU-spinning microbenchmark (port of the paper's service emulator).

"The service processing on the server side is emulated using a
CPU-spinning microbenchmark that consumes the same amount of CPU time
as the intended service time." (§4)

In our simulated world service demand is just a number, but this module
ports the actual testbed tool: calibrate a spin loop against the host
clock, then burn a requested amount of CPU. It is used by the examples
that bridge simulated demand to real CPU work, and it documents the
measurement discipline (calibration, monotonic clocks, drift checks)
the paper's emulation relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["SpinCalibration", "calibrate_spin", "spin_for"]


def _spin(iterations: int) -> int:
    """The timed inner loop: pure integer work, no allocation."""
    acc = 0
    for i in range(iterations):
        acc += i & 7
    return acc


@dataclass(frozen=True)
class SpinCalibration:
    """Iterations-per-second of the spin loop on this host."""

    iterations_per_second: float
    calibration_seconds: float

    def iterations_for(self, duration: float) -> int:
        """Spin-loop iterations approximating ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        return max(1, int(self.iterations_per_second * duration))


def calibrate_spin(target_seconds: float = 0.05) -> SpinCalibration:
    """Measure the host's spin-loop rate over ~``target_seconds``.

    Doubles the iteration count until the measured time exceeds the
    target, then derives the rate from the final (longest, most
    accurate) measurement.
    """
    if target_seconds <= 0:
        raise ValueError(f"target_seconds must be > 0, got {target_seconds}")
    iterations = 10_000
    while True:
        started = time.perf_counter()
        _spin(iterations)
        elapsed = time.perf_counter() - started
        if elapsed >= target_seconds or iterations > 10**10:
            return SpinCalibration(iterations / elapsed, elapsed)
        iterations *= 2


def spin_for(duration: float, calibration: SpinCalibration) -> float:
    """Burn ~``duration`` seconds of CPU; returns the measured time.

    Uses the calibrated open-loop count rather than polling the clock,
    matching the paper's emulator (clock polling inside the loop would
    add memory traffic and syscall noise to the very quantity being
    emulated).
    """
    started = time.perf_counter()
    _spin(calibration.iterations_for(duration))
    return time.perf_counter() - started
