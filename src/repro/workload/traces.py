"""Trace container, statistics, scaling, and file I/O.

A :class:`Trace` is a pair of aligned arrays — interarrival gaps and
service times, in seconds — plus metadata. This mirrors how the paper
uses its Teoma traces: "the arrival intervals of those two traces may be
scaled when necessary to generate workloads at various demand levels."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["Trace", "TraceStats", "save_trace", "load_trace"]


@dataclass(frozen=True)
class TraceStats:
    """First/second moments of a trace (what Table 1 reports)."""

    n_accesses: int
    arrival_interval_mean: float
    arrival_interval_std: float
    service_time_mean: float
    service_time_std: float

    def row(self, name: str) -> str:
        """Render one Table-1-style row (times in ms)."""
        return (
            f"{name:<20s} {self.n_accesses:>10,d} "
            f"{self.arrival_interval_mean * 1e3:>9.1f}ms {self.arrival_interval_std * 1e3:>9.1f}ms "
            f"{self.service_time_mean * 1e3:>8.1f}ms {self.service_time_std * 1e3:>8.1f}ms"
        )


@dataclass(frozen=True)
class Trace:
    """An aligned (interarrival, service) request sequence.

    Attributes
    ----------
    name:
        Human-readable label ("Fine-Grain trace", ...).
    interarrival:
        Gap before each request, seconds. ``interarrival[0]`` is the gap
        from t=0 to the first arrival.
    service:
        Service demand of each request, seconds.
    metadata:
        Free-form provenance (synthesis spec, scale factors, ...).
    """

    name: str
    interarrival: np.ndarray
    service: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        interarrival = np.ascontiguousarray(self.interarrival, dtype=np.float64)
        service = np.ascontiguousarray(self.service, dtype=np.float64)
        if interarrival.ndim != 1 or service.ndim != 1:
            raise ValueError("interarrival and service must be 1-D")
        if interarrival.shape != service.shape:
            raise ValueError(
                f"length mismatch: {interarrival.shape[0]} gaps vs "
                f"{service.shape[0]} service times"
            )
        if interarrival.size == 0:
            raise ValueError("empty trace")
        if (interarrival < 0).any():
            raise ValueError("negative interarrival gap")
        if (service <= 0).any():
            raise ValueError("non-positive service time")
        object.__setattr__(self, "interarrival", interarrival)
        object.__setattr__(self, "service", service)

    def __len__(self) -> int:
        return int(self.interarrival.shape[0])

    @property
    def arrival_times(self) -> np.ndarray:
        """Arrival instants (cumulative gaps)."""
        return np.cumsum(self.interarrival)

    @property
    def duration(self) -> float:
        """Span from t=0 to the last arrival."""
        return float(self.interarrival.sum())

    def stats(self) -> TraceStats:
        """Table-1-style moments."""
        return TraceStats(
            n_accesses=len(self),
            arrival_interval_mean=float(self.interarrival.mean()),
            arrival_interval_std=float(self.interarrival.std(ddof=1)),
            service_time_mean=float(self.service.mean()),
            service_time_std=float(self.service.std(ddof=1)),
        )

    def offered_load(self, n_servers: int) -> float:
        """Nominal per-server utilization of this trace on ``n_servers``."""
        return float(self.service.mean() / (self.interarrival.mean() * n_servers))

    def scaled_to_load(self, n_servers: int, load: float) -> "Trace":
        """Rescale interarrival gaps for a target per-server load.

        This is the paper's demand-level knob: service times are left
        untouched; gaps are multiplied by a single factor so that
        ``mean service / (n_servers * mean gap) == load``.
        """
        if not 0 < load < 1.5:
            raise ValueError(f"load should be in (0, 1.5), got {load}")
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        target_interval = self.service.mean() / (n_servers * load)
        factor = target_interval / self.interarrival.mean()
        metadata = dict(self.metadata)
        metadata["scaled_to_load"] = load
        metadata["scale_factor"] = factor
        return Trace(
            name=self.name,
            interarrival=self.interarrival * factor,
            service=self.service.copy(),
            metadata=metadata,
        )

    def head(self, n: int) -> "Trace":
        """The first ``n`` requests (views are copied)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        n = min(n, len(self))
        return Trace(
            name=self.name,
            interarrival=self.interarrival[:n].copy(),
            service=self.service[:n].copy(),
            metadata=dict(self.metadata),
        )

    def tiled(self, n: int, rng: np.random.Generator | None = None) -> "Trace":
        """Extend to at least ``n`` requests by tiling.

        When ``rng`` is given, each extra tile is independently shuffled
        so that tiling does not introduce exact periodicity.
        """
        if n <= len(self):
            return self.head(n)
        reps = -(-n // len(self))  # ceil division
        gap_tiles = [self.interarrival]
        service_tiles = [self.service]
        for _ in range(reps - 1):
            if rng is not None:
                perm = rng.permutation(len(self))
                gap_tiles.append(self.interarrival[perm])
                service_tiles.append(self.service[perm])
            else:
                gap_tiles.append(self.interarrival)
                service_tiles.append(self.service)
        return Trace(
            name=self.name,
            interarrival=np.concatenate(gap_tiles)[:n],
            service=np.concatenate(service_tiles)[:n],
            metadata=dict(self.metadata),
        )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Save a trace as a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        name=np.asarray(trace.name),
        interarrival=trace.interarrival,
        service=trace.service,
    )


def load_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        return Trace(
            name=str(archive["name"]),
            interarrival=archive["interarrival"],
            service=archive["service"],
            metadata={"source": str(path)},
        )
