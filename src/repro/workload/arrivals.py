"""Arrival processes: sequences of interarrival times.

Each process generates a vector of interarrival gaps in one vectorized
call; arrival instants are the cumulative sum. The paper's Poisson/Exp
workload uses :class:`PoissonProcess`; the synthesized traces use
:class:`RenewalProcess` over a moment-fitted distribution; the
:class:`MarkovModulatedPoisson` process is provided for burstiness
ablations (the paper's §1.1 notes internet arrivals are burstier than
Poisson over long horizons).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.workload.distributions import Distribution

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "RenewalProcess",
    "MarkovModulatedPoisson",
]


class ArrivalProcess(ABC):
    """A point process, queried for n interarrival gaps at a time."""

    @abstractmethod
    def interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Generate ``n`` interarrival gaps (seconds, all > 0 allowed = 0)."""

    @abstractmethod
    def mean_interval(self) -> float:
        """Long-run mean interarrival gap."""

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Arrival instants: cumulative sum of gaps, starting after t=0."""
        return np.cumsum(self.interarrivals(rng, n))


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    __slots__ = ("rate",)

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate

    def interarrivals(self, rng, n):
        return rng.exponential(1.0 / self.rate, n)

    def mean_interval(self) -> float:
        return 1.0 / self.rate

    def __repr__(self):
        return f"PoissonProcess(rate={self.rate!r})"


class RenewalProcess(ArrivalProcess):
    """IID interarrival gaps from an arbitrary distribution."""

    __slots__ = ("distribution",)

    def __init__(self, distribution: Distribution):
        self.distribution = distribution

    def interarrivals(self, rng, n):
        return np.asarray(self.distribution.sample(rng, n), dtype=np.float64)

    def mean_interval(self) -> float:
        return self.distribution.mean()

    def __repr__(self):
        return f"RenewalProcess({self.distribution!r})"


class MarkovModulatedPoisson(ArrivalProcess):
    """A 2-phase MMPP: Poisson rate alternates between two states.

    State ``i`` has arrival rate ``rates[i]`` and exponentially
    distributed sojourn with mean ``sojourn_means[i]``. The long-run mean
    rate is the sojourn-weighted average of the phase rates.
    """

    __slots__ = ("rates", "sojourn_means")

    def __init__(self, rates: tuple[float, float], sojourn_means: tuple[float, float]):
        if len(rates) != 2 or len(sojourn_means) != 2:
            raise ValueError("exactly two phases are supported")
        if min(rates) <= 0 or min(sojourn_means) <= 0:
            raise ValueError("rates and sojourn means must be > 0")
        self.rates = (float(rates[0]), float(rates[1]))
        self.sojourn_means = (float(sojourn_means[0]), float(sojourn_means[1]))

    def mean_rate(self) -> float:
        t0, t1 = self.sojourn_means
        r0, r1 = self.rates
        return (r0 * t0 + r1 * t1) / (t0 + t1)

    def mean_interval(self) -> float:
        return 1.0 / self.mean_rate()

    def interarrivals(self, rng, n):
        """Simulate phase switching; returns exactly ``n`` gaps.

        Generated in blocks: per phase sojourn, draw the Poisson arrivals
        that fit, then switch. O(n) with small constants.
        """
        gaps = np.empty(n, dtype=np.float64)
        filled = 0
        phase = 0 if rng.random() < self.sojourn_means[0] / sum(self.sojourn_means) else 1
        carry = 0.0  # time since last arrival, accumulated across phases
        while filled < n:
            sojourn = rng.exponential(self.sojourn_means[phase])
            rate = self.rates[phase]
            # Expected arrivals this sojourn plus slack; draw a block.
            expected = max(8, int(rate * sojourn * 1.5) + 8)
            block = rng.exponential(1.0 / rate, expected)
            cumulative = np.cumsum(block)
            in_phase = int(np.searchsorted(cumulative, sojourn, side="right"))
            take = min(in_phase, n - filled)
            if take > 0:
                gaps[filled] = block[0] + carry
                gaps[filled + 1 : filled + take] = block[1:take]
                filled += take
                carry = 0.0
                last_arrival = cumulative[take - 1]
            else:
                last_arrival = 0.0
            if in_phase >= take:
                carry += sojourn - last_arrival
            phase = 1 - phase
        return gaps

    def __repr__(self):
        return (
            f"MarkovModulatedPoisson(rates={self.rates!r}, "
            f"sojourn_means={self.sojourn_means!r})"
        )
