"""Week-long trace synthesis and peak-portion extraction.

The paper's traces were "collected across an one-week time span" and
the evaluation uses "a peak time portion (early afternoon hours of
three consecutive weekdays) from each trace ... Most system resources
are well under-utilized during non-peak times". This module implements
that methodology end-to-end: synthesize a full week with a diurnal +
weekday rate profile, then recover the peak portion by rate threshold —
so the Table 1 "total accesses" vs "peak portion" relationship is a
measured property, not an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.synthesis import TraceSpec
from repro.workload.traces import Trace

__all__ = ["DiurnalProfile", "synthesize_weekly_trace", "extract_peak_portion"]

_HOUR = 3600.0
_DAY = 24 * _HOUR


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-week arrival-rate multipliers.

    ``peak_hours`` (local hours, on weekdays) run at multiplier 1.0;
    other daytime hours at ``day_fraction``; nights at
    ``night_fraction``; weekends at ``weekend_fraction`` of the
    corresponding weekday value. Matches the paper's description of
    early-afternoon weekday peaks.
    """

    peak_hours: tuple[int, ...] = (13, 14, 15)
    day_hours: tuple[int, int] = (8, 20)
    day_fraction: float = 0.55
    night_fraction: float = 0.15
    weekend_fraction: float = 0.6

    def multiplier(self, hour_of_week: int) -> float:
        """Rate multiplier for an hour index in [0, 168)."""
        if not 0 <= hour_of_week < 168:
            raise ValueError(f"hour_of_week must be in [0, 168), got {hour_of_week}")
        day = hour_of_week // 24
        hour = hour_of_week % 24
        if hour in self.peak_hours:
            base = 1.0
        elif self.day_hours[0] <= hour < self.day_hours[1]:
            base = self.day_fraction
        else:
            base = self.night_fraction
        if day >= 5:  # Saturday/Sunday
            base *= self.weekend_fraction
        return base

    def multipliers(self) -> np.ndarray:
        """All 168 hour-of-week multipliers."""
        return np.array([self.multiplier(h) for h in range(168)])


def synthesize_weekly_trace(
    spec: TraceSpec,
    rng: np.random.Generator,
    profile: DiurnalProfile | None = None,
    scale: float = 1.0,
) -> Trace:
    """Generate a full-week trace with the given diurnal profile.

    ``spec.arrival_interval_mean`` is the *peak-hour* mean interarrival;
    off-peak hours are thinned by the profile multiplier. ``scale``
    shrinks the week for tests (e.g. ``scale=0.01`` → a ~100x smaller
    trace with the same shape). Service times are IID from the spec's
    fitted distribution, independent of time of day (as in the paper's
    model — the *service*, not its cost, varies with demand).
    """
    if scale <= 0 or scale > 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    profile = profile or DiurnalProfile()
    peak_rate = 1.0 / spec.arrival_interval_mean
    arrival_dist = spec.arrival_distribution()
    hour_length = _HOUR * scale

    all_times: list[np.ndarray] = []
    for hour_of_week in range(168):
        multiplier = profile.multiplier(hour_of_week)
        if multiplier <= 0:
            continue
        start = hour_of_week * hour_length
        expected = peak_rate * multiplier * hour_length
        # Draw a gap block with slack, cut at the hour boundary. Gaps
        # reuse the spec's (CV-preserving) distribution, rescaled.
        block = max(16, int(expected * 1.35) + 8)
        gaps = np.asarray(arrival_dist.sample(rng, block)) / multiplier
        times = start + np.cumsum(gaps)
        all_times.append(times[times < start + hour_length])
    arrival_times = np.concatenate(all_times)
    arrival_times.sort(kind="stable")
    gaps = np.diff(np.concatenate([[0.0], arrival_times]))
    service = np.asarray(spec.service_distribution().sample(rng, gaps.shape[0]))
    return Trace(
        name=f"{spec.name} (weekly)",
        interarrival=gaps,
        service=service,
        metadata={"spec": spec, "weekly": True, "scale": scale, "profile": profile},
    )


def extract_peak_portion(
    trace: Trace,
    window: float | None = None,
    rate_threshold: float = 0.85,
) -> Trace:
    """Recover the peak-time portion of a (weekly) trace.

    Buckets arrivals into ``window``-second bins (default: the trace's
    scaled hour if synthesized here, else 1/200 of its duration), keeps
    bins whose arrival rate is at least ``rate_threshold`` x the busiest
    bin, and concatenates the kept requests. Gaps across removed bins
    are replaced by each kept bin's internal gaps (first request of a
    bin keeps its in-bin offset), mirroring how the paper splices
    "three consecutive weekday afternoons" into one evaluation stream.
    """
    if not 0 < rate_threshold <= 1:
        raise ValueError(f"rate_threshold must be in (0, 1], got {rate_threshold}")
    if window is None:
        scale = trace.metadata.get("scale")
        window = _HOUR * scale if scale else trace.duration / 200.0
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    arrivals = trace.arrival_times
    bins = np.floor(arrivals / window).astype(np.intp)
    counts = np.bincount(bins)
    keep = counts >= rate_threshold * counts.max()
    mask = keep[bins]
    if mask.sum() < 2:
        raise ValueError("peak portion too small; lower rate_threshold")
    kept_arrivals = arrivals[mask]
    kept_bins = bins[mask]
    gaps = np.empty(kept_arrivals.shape[0])
    gaps[0] = kept_arrivals[0] - kept_bins[0] * window
    raw = np.diff(kept_arrivals)
    new_bin = np.diff(kept_bins) != 0
    # Inside a bin: the true gap. Across removed bins: the offset into
    # the new bin (as if the kept windows were spliced back to back).
    gaps[1:] = np.where(
        new_bin, kept_arrivals[1:] - kept_bins[1:] * window, raw
    )
    return Trace(
        name=f"{trace.name} (peak portion)",
        interarrival=gaps,
        service=trace.service[mask].copy(),
        metadata={
            **trace.metadata,
            "peak_portion": True,
            "bins_kept": int(keep.sum()),
            "bins_total": int(counts.shape[0]),
        },
    )
