"""Synthesis of Teoma-like traces from the published Table 1 moments.

The paper's traces are proprietary (two internal services of the Teoma
search engine, collected over one week in late July 2001). We substitute
synthetic traces whose arrival-interval and service-time moments match
the published Table 1 statistics. See DESIGN.md §5 for how the partially
garbled OCR of Table 1 was disambiguated; the adopted values live in
:data:`FINE_GRAIN_SPEC` and :data:`MEDIUM_GRAIN_SPEC`.

Distribution choice: lognormal for both interarrival gaps and service
times, fitted by moments. The paper itself observes (§1.1) that
Lognormal/Weibull/Pareto model such workloads well and that its traces'
distributions have *lower* variance than exponential; lognormal covers
both the near-deterministic Fine-Grain service times (CV ≈ 0.05) and the
heavy-tailed Medium-Grain service times (CV ≈ 2.2) with the same family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.distributions import (
    Distribution,
    lognormal_from_moments,
)
from repro.workload.traces import Trace

__all__ = ["TraceSpec", "FINE_GRAIN_SPEC", "MEDIUM_GRAIN_SPEC", "synthesize_trace"]


@dataclass(frozen=True)
class TraceSpec:
    """Target statistics for a synthesized trace (Table 1 row).

    Times in seconds. ``total_accesses``/``peak_accesses`` are the
    week-long and peak-portion sizes; experiments use the peak portion.
    """

    name: str
    total_accesses: int
    peak_accesses: int
    arrival_interval_mean: float
    arrival_interval_std: float
    service_time_mean: float
    service_time_std: float

    def arrival_distribution(self) -> Distribution:
        return lognormal_from_moments(
            self.arrival_interval_mean, self.arrival_interval_std
        )

    def service_distribution(self) -> Distribution:
        return lognormal_from_moments(self.service_time_mean, self.service_time_std)


#: Fine-Grain trace: query-word translation service. Mean service time
#: 22.2 ms (stated twice in the paper), near-deterministic (std adopted
#: as 1.0 ms from the garbled "1.?ms" cell).
FINE_GRAIN_SPEC = TraceSpec(
    name="Fine-Grain trace",
    total_accesses=1_171_838,
    peak_accesses=98_672,
    arrival_interval_mean=330.6e-3,
    arrival_interval_std=349.4e-3,
    service_time_mean=22.2e-3,
    service_time_std=1.0e-3,
)

#: Medium-Grain trace: page-description translation service. Mean
#: service time 28.9 ms with std 62.9 ms (CV ≈ 2.2) — the heavy tail is
#: what makes Medium-Grain response times large in Table 2.
MEDIUM_GRAIN_SPEC = TraceSpec(
    name="Medium-Grain trace",
    total_accesses=1_550_442,
    peak_accesses=154_418,
    arrival_interval_mean=344.5e-3,
    arrival_interval_std=321.1e-3,
    service_time_mean=28.9e-3,
    service_time_std=62.9e-3,
)


def synthesize_trace(
    spec: TraceSpec,
    n: int | None = None,
    rng: np.random.Generator | None = None,
    exact_moments: bool = False,
) -> Trace:
    """Generate a synthetic trace matching ``spec``.

    Parameters
    ----------
    spec:
        Target moments (a Table 1 row).
    n:
        Number of accesses; defaults to the spec's peak-portion size.
    rng:
        Source of randomness (defaults to a fresh seeded generator).
    exact_moments:
        When True, affinely standardize the sampled arrays so the
        *sample* moments equal the targets (up to a tiny positivity
        clamp on the extreme left tail; useful for Table 1
        regeneration); otherwise moments match in expectation only.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    count = spec.peak_accesses if n is None else int(n)
    if count < 2:
        raise ValueError(f"need at least 2 accesses, got {count}")
    gaps = np.asarray(spec.arrival_distribution().sample(rng, count))
    service = np.asarray(spec.service_distribution().sample(rng, count))
    if exact_moments:
        gaps = _standardize(gaps, spec.arrival_interval_mean, spec.arrival_interval_std)
        service = _standardize(service, spec.service_time_mean, spec.service_time_std)
    return Trace(
        name=spec.name,
        interarrival=gaps,
        service=service,
        metadata={
            "spec": spec,
            "synthesized": True,
            "exact_moments": exact_moments,
        },
    )


def _standardize(values: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Affinely map sample moments onto (mean, std), keeping positivity.

    The affine map can push the extreme left tail below zero for
    heavy-tailed samples; negatives/zeros are clamped to a tiny positive
    floor (a negligible mass given the fitted distributions).
    """
    sample_std = values.std(ddof=1)
    if sample_std == 0:
        out = np.full_like(values, mean)
    else:
        out = (values - values.mean()) * (std / sample_std) + mean
    floor = mean * 1e-6
    np.clip(out, floor, None, out=out)
    return out
