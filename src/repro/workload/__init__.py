"""Workload generation: distributions, arrival processes, traces.

The paper evaluates three workloads (§1.1):

- **Poisson/Exp** — Poisson arrivals, exponential service times (mean
  50 ms in the multi-server experiments);
- **Fine-Grain trace** — a Teoma search-engine internal service
  (query-word translation), mean service time 22.2 ms, near-deterministic;
- **Medium-Grain trace** — a second Teoma service (page-description
  translation), mean service time 28.9 ms with heavy-tailed variability.

The real traces are proprietary; :mod:`~repro.workload.synthesis`
generates synthetic traces fitted to the published Table 1 moments (see
DESIGN.md §5 for the OCR-disambiguation of those numbers).
"""

from repro.workload.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    Lognormal,
    Pareto,
    Uniform,
    Weibull,
    lognormal_from_moments,
    pareto_from_moments,
    weibull_from_moments,
)
from repro.workload.arrivals import (
    ArrivalProcess,
    MarkovModulatedPoisson,
    PoissonProcess,
    RenewalProcess,
)
from repro.workload.empirical import (
    EmpiricalDistribution,
    empirical_workload_from_trace,
)
from repro.workload.replay import (
    bursty_trace,
    diurnal_trace,
    file_trace,
    live_trace,
    load_arrivals,
    replay_file_params,
    save_arrivals,
    trace_digest,
)
from repro.workload.traces import Trace, TraceStats, load_trace, save_trace
from repro.workload.synthesis import (
    FINE_GRAIN_SPEC,
    MEDIUM_GRAIN_SPEC,
    TraceSpec,
    synthesize_trace,
)
from repro.workload.weekly import (
    DiurnalProfile,
    extract_peak_portion,
    synthesize_weekly_trace,
)
from repro.workload.workloads import (
    Workload,
    available_workloads,
    make_workload,
)

__all__ = [
    "ArrivalProcess",
    "Deterministic",
    "Distribution",
    "DiurnalProfile",
    "EmpiricalDistribution",
    "empirical_workload_from_trace",
    "Exponential",
    "FINE_GRAIN_SPEC",
    "Gamma",
    "Lognormal",
    "MarkovModulatedPoisson",
    "MEDIUM_GRAIN_SPEC",
    "Pareto",
    "PoissonProcess",
    "RenewalProcess",
    "Trace",
    "TraceSpec",
    "TraceStats",
    "Uniform",
    "Weibull",
    "Workload",
    "available_workloads",
    "bursty_trace",
    "diurnal_trace",
    "extract_peak_portion",
    "file_trace",
    "live_trace",
    "load_arrivals",
    "replay_file_params",
    "save_arrivals",
    "synthesize_weekly_trace",
    "trace_digest",
    "load_trace",
    "lognormal_from_moments",
    "make_workload",
    "pareto_from_moments",
    "save_trace",
    "synthesize_trace",
    "weibull_from_moments",
]
