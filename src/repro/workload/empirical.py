"""Empirical distributions: sample from observed data.

When a real trace *is* available (e.g. one produced by
:func:`repro.workload.traces.save_trace`, or measurements from a live
system), experiments should be able to resample it rather than fit a
parametric family. :class:`EmpiricalDistribution` supports plain
bootstrap resampling and smoothed inverse-CDF sampling (linear
interpolation between order statistics), and plugs in anywhere a
:class:`~repro.workload.distributions.Distribution` is accepted.
"""

from __future__ import annotations

import numpy as np

from repro.workload.distributions import Distribution
from repro.workload.traces import Trace

__all__ = ["EmpiricalDistribution", "empirical_workload_from_trace"]


class EmpiricalDistribution(Distribution):
    """A distribution backed by observed samples.

    Parameters
    ----------
    data:
        Observed positive values.
    smoothed:
        False (default): classic bootstrap — draws are exactly observed
        values. True: inverse-CDF sampling with linear interpolation
        between sorted observations, which fills the gaps between
        distinct observed values (useful for small samples).
    """

    __slots__ = ("_sorted", "_mean", "_std", "smoothed")

    def __init__(self, data: np.ndarray, smoothed: bool = False):
        values = np.asarray(data, dtype=np.float64).ravel()
        if values.size < 2:
            raise ValueError(f"need at least 2 observations, got {values.size}")
        if (values <= 0).any():
            raise ValueError("observations must be positive")
        self._sorted = np.sort(values)
        self._mean = float(values.mean())
        self._std = float(values.std(ddof=1))
        self.smoothed = smoothed

    @property
    def n_observations(self) -> int:
        return int(self._sorted.size)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        scalar = size is None
        n = 1 if scalar else int(size)
        if self.smoothed:
            u = rng.random(n) * (self._sorted.size - 1)
            lo = np.floor(u).astype(np.intp)
            frac = u - lo
            hi = np.minimum(lo + 1, self._sorted.size - 1)
            out = self._sorted[lo] * (1.0 - frac) + self._sorted[hi] * frac
        else:
            out = self._sorted[rng.integers(self._sorted.size, size=n)]
        return float(out[0]) if scalar else out

    def mean(self) -> float:
        return self._mean

    def std(self) -> float:
        return self._std

    def quantile(self, q: float) -> float:
        """Empirical quantile of the observed data."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def __repr__(self) -> str:
        kind = "smoothed" if self.smoothed else "bootstrap"
        return f"EmpiricalDistribution(n={self.n_observations}, {kind})"


def empirical_workload_from_trace(trace: Trace, smoothed: bool = False):
    """Build a :class:`~repro.workload.workloads.Workload` that
    bootstrap-resamples a recorded trace's gaps and service times.

    Unlike replaying the trace verbatim, resampling generates arbitrary
    request counts and fresh randomness per seed while preserving the
    marginal distributions (temporal correlations are deliberately
    broken — use the trace itself when they matter).
    """
    from repro.workload.arrivals import RenewalProcess
    from repro.workload.workloads import Workload

    return Workload(
        name=f"{trace.name} (resampled)",
        arrivals=RenewalProcess(EmpiricalDistribution(trace.interarrival, smoothed)),
        service=EmpiricalDistribution(trace.service, smoothed),
    )
