"""Trace replay: timestamped arrival traces as first-class workloads.

The campaign grids so far drive clusters with synthetic stationary
processes (Poisson, renewal, MMPP). "Dispatching Odyssey" (PAPERS.md)
shows that exactly this family misses the structure of real cluster
workloads: diurnal rate swings and short intense bursts change which
policies degrade first. This module closes that gap three ways:

- **generators** — :func:`diurnal_trace` (non-homogeneous Poisson with
  a sinusoidal rate profile, sampled exactly by thinning) and
  :func:`bursty_trace` (periodic on/off bursts: a short high-rate phase
  each cycle over a low-rate background), both seeded from the named
  RNG substream the runner hands every workload, so traces are
  deterministic per (seed, params) cell;
- **a loader/exporter pair** — timestamped arrival records as CSV
  (``timestamp,service`` columns) or JSONL (one object per line), with
  byte-exact round-trips: the absolute timestamps parsed from a file
  are kept in ``Trace.metadata["timestamps"]`` so re-export reproduces
  the input exactly instead of re-deriving instants from float gap
  sums;
- **cache-key awareness** — :func:`replay_file_params` stamps a content
  digest into the ``workload_params`` of a ``replay_file`` cell, so the
  persistent result cache misses (instead of serving stale results)
  when the trace file's *content* changes under an unchanged path.

Like every workload, replay traces are rescaled by the runner to the
requested per-server load (the paper's demand-level knob): the *shape*
— burst positions, relative gap structure — is what replay preserves.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from pathlib import Path
from typing import Optional

import numpy as np

from repro.workload.distributions import (
    Deterministic,
    Distribution,
    lognormal_from_moments,
)
from repro.workload.traces import Trace

__all__ = [
    "EPOCH_CUTOFF",
    "bursty_trace",
    "diurnal_trace",
    "live_trace",
    "load_arrivals",
    "load_arrivals_csv",
    "load_arrivals_jsonl",
    "replay_file_params",
    "save_arrivals",
    "save_arrivals_csv",
    "save_arrivals_jsonl",
    "file_trace",
    "trace_digest",
]

#: CSV header / JSONL field names for arrival records
_FIELDS = ("timestamp", "service")

#: Timestamps at/above this (in seconds) are treated as absolute
#: wall-clock epoch offsets rather than trace-relative instants.
#: Trace-relative traces run minutes-to-hours; ~11.6 days of relative
#: time is far beyond any replayable trace, while Unix epochs are ~1.7e9.
#: Live ``repro drive`` recordings carry epoch timestamps — they are
#: normalized to t=0 at save time, and loaders refuse them raw (the
#: first gap would otherwise be the epoch itself, and the runner's
#: mean-based load rescale would silently destroy the trace's shape).
EPOCH_CUTOFF = 1e6


def _classify_epochs(times: np.ndarray, source: str) -> bool:
    """True if ``times`` are epoch-based; raises on mixed-epoch input."""
    first = float(times[0])
    last = float(times[-1])
    if first < EPOCH_CUTOFF <= last:
        raise ValueError(
            f"{source}: mixed-epoch timestamps (first={first!r} is "
            f"trace-relative but last={last!r} crosses the epoch cutoff "
            f"{EPOCH_CUTOFF:g}s) — the trace mixes normalized and "
            "wall-clock records and cannot be replayed"
        )
    return first >= EPOCH_CUTOFF


def _service_distribution(mean_service: float, service_cv: float) -> Distribution:
    if mean_service <= 0:
        raise ValueError(f"mean_service must be > 0, got {mean_service}")
    if service_cv < 0:
        raise ValueError(f"service_cv must be >= 0, got {service_cv}")
    if service_cv == 0:
        return Deterministic(mean_service)
    return lognormal_from_moments(mean_service, service_cv * mean_service)


def _gaps_from_times(times: np.ndarray) -> np.ndarray:
    gaps = np.empty_like(times)
    gaps[0] = times[0]
    np.subtract(times[1:], times[:-1], out=gaps[1:])
    return gaps


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------

def diurnal_trace(
    rng: np.random.Generator,
    n: int,
    mean_service: float = 50e-3,
    service_cv: float = 1.0,
    period: float = 240.0,
    peak_to_trough: float = 6.0,
    mean_interval: Optional[float] = None,
) -> Trace:
    """A diurnal arrival trace: Poisson with a sinusoidal rate profile.

    The rate is ``r0 * (1 + a*sin(2*pi*t/period))`` with the modulation
    depth ``a`` chosen so that peak/trough rates differ by
    ``peak_to_trough``; arrivals are sampled *exactly* (thinning against
    the peak rate), not from a piecewise-constant approximation.
    ``period`` is a compressed "day" (the runner rescales the absolute
    rate anyway, so only the ratio of period to service time matters).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    if peak_to_trough <= 1.0:
        raise ValueError(f"peak_to_trough must be > 1, got {peak_to_trough}")
    base_interval = mean_interval if mean_interval is not None else mean_service
    if base_interval <= 0:
        raise ValueError(f"mean_interval must be > 0, got {base_interval}")
    r0 = 1.0 / base_interval
    depth = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    rate_max = r0 * (1.0 + depth)
    omega = 2.0 * math.pi / period

    times = np.empty(n, dtype=np.float64)
    filled = 0
    t = 0.0
    while filled < n:
        block = max(64, 2 * (n - filled))
        candidates = t + np.cumsum(rng.exponential(1.0 / rate_max, block))
        accept = rng.random(block) * rate_max <= r0 * (
            1.0 + depth * np.sin(omega * candidates)
        )
        accepted = candidates[accept]
        take = min(accepted.size, n - filled)
        times[filled : filled + take] = accepted[:take]
        filled += take
        t = float(candidates[-1])

    service = np.asarray(
        _service_distribution(mean_service, service_cv).sample(rng, n),
        dtype=np.float64,
    )
    return Trace(
        name=f"Replay diurnal x{peak_to_trough:g}",
        interarrival=_gaps_from_times(times),
        service=service,
        metadata={
            "replay": "diurnal",
            "period": float(period),
            "peak_to_trough": float(peak_to_trough),
        },
    )


def bursty_trace(
    rng: np.random.Generator,
    n: int,
    mean_service: float = 50e-3,
    service_cv: float = 1.0,
    burst_ratio: float = 20.0,
    burst_fraction: float = 0.1,
    cycle: float = 2.0,
    mean_interval: Optional[float] = None,
) -> Trace:
    """A bursty arrival trace: periodic on/off rate switching.

    Each ``cycle`` seconds, a burst phase of length
    ``burst_fraction * cycle`` runs at ``burst_ratio`` times the calm
    rate; rates are normalized so the long-run mean interarrival is
    ``mean_interval`` (default ``mean_service``). Unlike the MMPP
    workload's exponential sojourns this is *periodic* burst structure
    — the kind replayed cluster traces exhibit at request-batch and
    cron-job timescales.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if burst_ratio <= 1.0:
        raise ValueError(f"burst_ratio must be > 1, got {burst_ratio}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
    if cycle <= 0:
        raise ValueError(f"cycle must be > 0, got {cycle}")
    base_interval = mean_interval if mean_interval is not None else mean_service
    if base_interval <= 0:
        raise ValueError(f"mean_interval must be > 0, got {base_interval}")
    base_rate = 1.0 / base_interval
    # mean rate = f*R*r_low + (1-f)*r_low == base_rate
    r_low = base_rate / (burst_fraction * burst_ratio + 1.0 - burst_fraction)
    r_high = burst_ratio * r_low

    chunks: list[np.ndarray] = []
    total = 0
    start = 0.0
    phases = ((burst_fraction * cycle, r_high), ((1.0 - burst_fraction) * cycle, r_low))
    while total < n:
        for duration, rate in phases:
            # Draw a gap block with slack, keep arrivals inside the phase.
            expected = rate * duration
            block = max(16, int(expected * 1.5) + 8)
            arrivals = start + np.cumsum(rng.exponential(1.0 / rate, block))
            while arrivals[-1] < start + duration:  # pragma: no cover - rare
                extra = start + np.cumsum(
                    rng.exponential(1.0 / rate, block)
                ) + (arrivals[-1] - start)
                arrivals = np.concatenate([arrivals, extra])
            kept = arrivals[arrivals < start + duration]
            if kept.size:
                chunks.append(kept)
                total += kept.size
            start += duration

    times = np.concatenate(chunks)[:n]
    service = np.asarray(
        _service_distribution(mean_service, service_cv).sample(rng, n),
        dtype=np.float64,
    )
    return Trace(
        name=f"Replay bursty x{burst_ratio:g}",
        interarrival=_gaps_from_times(times),
        service=service,
        metadata={
            "replay": "bursty",
            "burst_ratio": float(burst_ratio),
            "burst_fraction": float(burst_fraction),
            "cycle": float(cycle),
        },
    )


# ----------------------------------------------------------------------
# file I/O: timestamped arrival records
# ----------------------------------------------------------------------

def _trace_from_records(
    timestamps: list[float], services: list[float], source: str
) -> Trace:
    if not timestamps:
        raise ValueError(f"{source}: no arrival records")
    times = np.asarray(timestamps, dtype=np.float64)
    if (np.diff(times) < 0).any():
        raise ValueError(f"{source}: timestamps must be non-decreasing")
    if times[0] < 0:
        raise ValueError(f"{source}: negative first timestamp")
    if _classify_epochs(times, source):
        raise ValueError(
            f"{source}: non-normalized epoch timestamps (first arrival "
            f"{times[0]!r} >= {EPOCH_CUTOFF:g}s) — re-export the trace "
            "with save_arrivals(), which normalizes wall-clock epochs "
            "to t=0 (or use repro.workload.replay.live_trace for "
            "in-memory live recordings)"
        )
    return Trace(
        name=f"Replay {Path(source).name}",
        interarrival=_gaps_from_times(times),
        service=np.asarray(services, dtype=np.float64),
        metadata={"source": str(source), "timestamps": times},
    )


def load_arrivals_csv(path: str | Path) -> Trace:
    """Load a ``timestamp,service`` CSV into a :class:`Trace`.

    The header row is required (it documents the unit contract: both
    columns are seconds). Parsed absolute timestamps are retained in
    ``metadata["timestamps"]`` so :func:`save_arrivals_csv` re-exports
    the file byte-identically.
    """
    path = Path(path)
    timestamps: list[float] = []
    services: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _FIELDS:
            raise ValueError(
                f"{path}: expected header {','.join(_FIELDS)!r}, got {header!r}"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 2:
                raise ValueError(f"{path}:{line_no}: expected 2 columns, got {len(row)}")
            timestamps.append(float(row[0]))
            services.append(float(row[1]))
    return _trace_from_records(timestamps, services, str(path))


def load_arrivals_jsonl(path: str | Path) -> Trace:
    """Load JSONL arrival records (``{"timestamp": .., "service": ..}``)."""
    path = Path(path)
    timestamps: list[float] = []
    services: list[float] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            missing = set(_FIELDS) - set(record)
            if missing:
                raise ValueError(
                    f"{path}:{line_no}: missing field(s) {sorted(missing)}"
                )
            timestamps.append(float(record["timestamp"]))
            services.append(float(record["service"]))
    return _trace_from_records(timestamps, services, str(path))


def load_arrivals(path: str | Path) -> Trace:
    """Load a timestamped arrival trace, dispatching on file suffix."""
    path = Path(path)
    if path.suffix == ".csv":
        return load_arrivals_csv(path)
    if path.suffix in (".jsonl", ".ndjson"):
        return load_arrivals_jsonl(path)
    raise ValueError(
        f"{path}: unsupported arrival-trace suffix {path.suffix!r} "
        "(expected .csv, .jsonl, or .ndjson)"
    )


def _export_timestamps(trace: Trace) -> np.ndarray:
    stored = trace.metadata.get("timestamps")
    if stored is not None:
        stored = np.asarray(stored, dtype=np.float64)
        if stored.shape[0] != len(trace):
            stored = None
    times = stored if stored is not None else trace.arrival_times
    if times.size and _classify_epochs(times, trace.name):
        # Live recordings carry wall-clock epochs: normalize to t=0 at
        # save time. Loaded traces always start below the cutoff (the
        # loader enforces it), so round-trips stay byte-exact — this
        # shift only ever applies to freshly recorded traces.
        times = times - times[0]
    return times


def save_arrivals_csv(trace: Trace, path: str | Path) -> None:
    """Export a trace as a ``timestamp,service`` CSV.

    Floats are written in ``repr`` (shortest round-trip) form, so
    ``load_arrivals_csv(save_arrivals_csv(t))`` reproduces every value
    bit-for-bit.
    """
    path = Path(path)
    times = _export_timestamps(trace)
    lines = [",".join(_FIELDS)]
    lines.extend(
        f"{t!r},{s!r}" for t, s in zip(times.tolist(), trace.service.tolist())
    )
    path.write_text("\n".join(lines) + "\n")


def save_arrivals_jsonl(trace: Trace, path: str | Path) -> None:
    """Export a trace as JSONL arrival records (repr-exact floats)."""
    path = Path(path)
    times = _export_timestamps(trace)
    lines = [
        json.dumps({"timestamp": t, "service": s})
        for t, s in zip(times.tolist(), trace.service.tolist())
    ]
    path.write_text("\n".join(lines) + "\n")


def save_arrivals(trace: Trace, path: str | Path) -> None:
    """Export a timestamped arrival trace, dispatching on file suffix."""
    path = Path(path)
    if path.suffix == ".csv":
        save_arrivals_csv(trace, path)
    elif path.suffix in (".jsonl", ".ndjson"):
        save_arrivals_jsonl(trace, path)
    else:
        raise ValueError(
            f"{path}: unsupported arrival-trace suffix {path.suffix!r} "
            "(expected .csv, .jsonl, or .ndjson)"
        )


def live_trace(
    timestamps, services, source: str = "live-recording"
) -> Trace:
    """Build an in-memory :class:`Trace` from a live (wall-clock) run.

    ``timestamps`` may be epoch-based (``time.time()`` instants, as
    recorded by ``repro drive --record-trace``): the interarrival gaps
    are derived from *normalized* times so the trace is immediately
    replayable, while the raw instants are kept in
    ``metadata["timestamps"]`` — :func:`save_arrivals` normalizes them
    to t=0 on export, after which the file round-trips byte-exactly
    through the loaders.
    """
    times = np.asarray(timestamps, dtype=np.float64)
    svc = np.asarray(services, dtype=np.float64)
    if times.ndim != 1 or times.size == 0 or times.shape != svc.shape:
        raise ValueError(
            f"{source}: timestamps and services must be equal-length "
            "non-empty 1-D arrays"
        )
    if (np.diff(times) < 0).any():
        raise ValueError(f"{source}: timestamps must be non-decreasing")
    if times[0] < 0:
        raise ValueError(f"{source}: negative first timestamp")
    normalized = times - times[0] if _classify_epochs(times, source) else times
    return Trace(
        name=f"Replay {source}",
        interarrival=_gaps_from_times(normalized),
        service=svc,
        metadata={"source": str(source), "timestamps": times},
    )


# ----------------------------------------------------------------------
# replay_file cache-key support
# ----------------------------------------------------------------------

def trace_digest(path: str | Path) -> str:
    """Short content digest of a trace file (hex, 16 chars)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()[:16]


def replay_file_params(path: str | Path) -> dict[str, str]:
    """``workload_params`` for a ``replay_file`` cell, content-addressed.

    The digest participates in the simulation cache key (workload
    params are hashed into it), so editing the trace file invalidates
    cached results even though the path string is unchanged.
    """
    return {"path": str(path), "digest": trace_digest(path)}


def file_trace(path: str | Path, digest: Optional[str] = None) -> Trace:
    """Load a replay trace file, optionally pinning its content digest.

    A mismatching ``digest`` means the file changed since the caller
    captured :func:`replay_file_params` — fail loudly rather than
    replaying a different workload under the old cache key.
    """
    if digest is not None:
        actual = trace_digest(path)
        if actual != digest:
            raise ValueError(
                f"{path}: content digest {actual} does not match the "
                f"pinned digest {digest} (trace file changed on disk; "
                "re-run replay_file_params to re-pin it)"
            )
    return load_arrivals(path)
