"""Positive continuous distributions with vectorized sampling.

Every distribution exposes ``sample(rng, size)`` (vectorized — the
guides' "generate arrays in one shot" idiom), plus exact ``mean()`` and
``std()``. Moment-fitting constructors (``*_from_moments``) build the
distribution matching a target (mean, std), which is how the Table 1
trace statistics become samplable distributions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy import optimize, special

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Lognormal",
    "Gamma",
    "Weibull",
    "Pareto",
    "lognormal_from_moments",
    "weibull_from_moments",
    "pareto_from_moments",
]


class Distribution(ABC):
    """A distribution over positive reals."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` samples (or a scalar when ``size is None``)."""

    @abstractmethod
    def mean(self) -> float: ...

    @abstractmethod
    def std(self) -> float: ...

    def cv(self) -> float:
        """Coefficient of variation std/mean."""
        return self.std() / self.mean()

    def scaled(self, factor: float) -> "Scaled":
        """The distribution of ``factor * X``."""
        return Scaled(self, factor)


class Deterministic(Distribution):
    """A point mass at ``value``."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError(f"value must be > 0, got {value}")
        self.value = value

    def sample(self, rng, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def std(self) -> float:
        return 0.0

    def __repr__(self):
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential with the given mean."""

    __slots__ = ("_mean",)

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self._mean = mean

    def sample(self, rng, size=None):
        out = rng.exponential(self._mean, size)
        return float(out) if size is None else out

    def mean(self) -> float:
        return self._mean

    def std(self) -> float:
        return self._mean

    def __repr__(self):
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Uniform on ``[low, high]`` with ``low >= 0``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float):
        if not 0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng, size=None):
        out = rng.uniform(self.low, self.high, size)
        return float(out) if size is None else out

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def std(self) -> float:
        return (self.high - self.low) / math.sqrt(12.0)

    def __repr__(self):
        return f"Uniform({self.low!r}, {self.high!r})"


class Lognormal(Distribution):
    """Lognormal with underlying normal parameters ``(mu, sigma)``."""

    __slots__ = ("mu", "sigma")

    def __init__(self, mu: float, sigma: float):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.mu = mu
        self.sigma = sigma

    def sample(self, rng, size=None):
        out = rng.lognormal(self.mu, self.sigma, size)
        return float(out) if size is None else out

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def std(self) -> float:
        # expm1 avoids catastrophic cancellation for tiny sigma (the
        # near-deterministic Fine-Grain fit has sigma ~ 0.045).
        variance = math.expm1(self.sigma**2) * math.exp(2 * self.mu + self.sigma**2)
        return math.sqrt(variance)

    def __repr__(self):
        return f"Lognormal(mu={self.mu!r}, sigma={self.sigma!r})"


class Gamma(Distribution):
    """Gamma with ``shape`` k and ``scale`` theta."""

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be > 0")
        self.shape = shape
        self.scale = scale

    def sample(self, rng, size=None):
        out = rng.gamma(self.shape, self.scale, size)
        return float(out) if size is None else out

    def mean(self) -> float:
        return self.shape * self.scale

    def std(self) -> float:
        return math.sqrt(self.shape) * self.scale

    def __repr__(self):
        return f"Gamma(shape={self.shape!r}, scale={self.scale!r})"


class Weibull(Distribution):
    """Weibull with ``shape`` k and ``scale`` lambda."""

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be > 0")
        self.shape = shape
        self.scale = scale

    def sample(self, rng, size=None):
        out = self.scale * rng.weibull(self.shape, size)
        return float(out) if size is None else out

    def mean(self) -> float:
        return self.scale * special.gamma(1.0 + 1.0 / self.shape)

    def std(self) -> float:
        g1 = special.gamma(1.0 + 1.0 / self.shape)
        g2 = special.gamma(1.0 + 2.0 / self.shape)
        return self.scale * math.sqrt(max(g2 - g1 * g1, 0.0))

    def __repr__(self):
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class Pareto(Distribution):
    """Pareto Type I: support ``[xm, inf)``, tail index ``alpha``.

    Mean requires ``alpha > 1``; finite std requires ``alpha > 2``.
    """

    __slots__ = ("alpha", "xm")

    def __init__(self, alpha: float, xm: float):
        if alpha <= 0 or xm <= 0:
            raise ValueError("alpha and xm must be > 0")
        self.alpha = alpha
        self.xm = xm

    def sample(self, rng, size=None):
        # numpy's pareto is the Lomax (Pareto II); shift to Type I.
        out = self.xm * (1.0 + rng.pareto(self.alpha, size))
        return float(out) if size is None else out

    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def std(self) -> float:
        if self.alpha <= 2:
            return math.inf
        variance = (
            self.xm**2 * self.alpha / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))
        )
        return math.sqrt(variance)

    def __repr__(self):
        return f"Pareto(alpha={self.alpha!r}, xm={self.xm!r})"


class Scaled(Distribution):
    """The distribution of ``factor * X`` for an inner distribution X."""

    __slots__ = ("inner", "factor")

    def __init__(self, inner: Distribution, factor: float):
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.inner = inner
        self.factor = factor

    def sample(self, rng, size=None):
        return self.inner.sample(rng, size) * self.factor

    def mean(self) -> float:
        return self.inner.mean() * self.factor

    def std(self) -> float:
        return self.inner.std() * self.factor

    def __repr__(self):
        return f"Scaled({self.inner!r}, {self.factor!r})"


# ----------------------------------------------------------------------
# moment-fitting constructors
# ----------------------------------------------------------------------

def lognormal_from_moments(mean: float, std: float) -> Lognormal:
    """Lognormal matching the target (mean, std) exactly.

    Degenerates gracefully: ``std == 0`` yields sigma = 0 (point mass in
    the log domain).
    """
    if mean <= 0 or std < 0:
        raise ValueError(f"need mean > 0 and std >= 0, got ({mean}, {std})")
    # log1p keeps precision when the CV is tiny (near-deterministic fits).
    sigma2 = math.log1p((std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return Lognormal(mu, math.sqrt(sigma2))


def weibull_from_moments(mean: float, std: float) -> Weibull:
    """Weibull matching (mean, std); solves the shape equation numerically."""
    if mean <= 0 or std <= 0:
        raise ValueError(f"need mean > 0 and std > 0, got ({mean}, {std})")
    cv2 = (std / mean) ** 2

    def cv2_of_shape(k: float) -> float:
        g1 = special.gamma(1.0 + 1.0 / k)
        g2 = special.gamma(1.0 + 2.0 / k)
        return g2 / (g1 * g1) - 1.0

    shape = optimize.brentq(lambda k: cv2_of_shape(k) - cv2, 0.05, 100.0)
    scale = mean / special.gamma(1.0 + 1.0 / shape)
    return Weibull(shape, scale)


def pareto_from_moments(mean: float, std: float) -> Pareto:
    """Pareto Type I matching (mean, std); always yields alpha > 2."""
    if mean <= 0 or std <= 0:
        raise ValueError(f"need mean > 0 and std > 0, got ({mean}, {std})")
    cv2 = (std / mean) ** 2
    # CV^2 = 1 / (alpha (alpha - 2))  =>  alpha = 1 + sqrt(1 + 1/CV^2)
    alpha = 1.0 + math.sqrt(1.0 + 1.0 / cv2)
    xm = mean * (alpha - 1.0) / alpha
    return Pareto(alpha, xm)
