"""Named workloads: the paper's three evaluation workloads + extensions.

A :class:`Workload` bundles an arrival process and a service-time
distribution (or a trace) and produces aligned (interarrival, service)
arrays. The experiment runner rescales arrivals to hit the target
per-server load, exactly as the paper scales its trace arrival
intervals.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.workload.arrivals import ArrivalProcess, PoissonProcess, RenewalProcess
from repro.workload.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    lognormal_from_moments,
    pareto_from_moments,
    weibull_from_moments,
)
from repro.workload.replay import bursty_trace, diurnal_trace, file_trace
from repro.workload.synthesis import (
    FINE_GRAIN_SPEC,
    MEDIUM_GRAIN_SPEC,
    TraceSpec,
    synthesize_trace,
)
from repro.workload.traces import Trace

__all__ = ["Workload", "make_workload", "available_workloads"]

#: Mean service time used by the paper for Poisson/Exp in the
#: multi-server experiments (Figures 3, 4, 6): 50 ms.
POISSON_EXP_MEAN_SERVICE = 50e-3


class Workload:
    """A request-stream generator.

    Either (``arrivals``, ``service``) or a ``trace_builder`` must be
    provided. ``generate(rng, n)`` returns ``(interarrival, service)``
    float64 arrays of length ``n``.
    """

    def __init__(
        self,
        name: str,
        arrivals: Optional[ArrivalProcess] = None,
        service: Optional[Distribution] = None,
        trace_builder: Optional[Callable[[np.random.Generator, int], Trace]] = None,
    ):
        if trace_builder is None and (arrivals is None or service is None):
            raise ValueError("provide arrivals+service or a trace_builder")
        self.name = name
        self.arrivals = arrivals
        self.service = service
        self.trace_builder = trace_builder

    def generate(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Aligned interarrival gaps and service times, length ``n``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if self.trace_builder is not None:
            trace = self.trace_builder(rng, n)
            return trace.interarrival, trace.service
        assert self.arrivals is not None and self.service is not None
        gaps = np.asarray(self.arrivals.interarrivals(rng, n), dtype=np.float64)
        service = np.asarray(self.service.sample(rng, n), dtype=np.float64)
        return gaps, service

    def mean_service_time(self, rng: np.random.Generator | None = None) -> float:
        """Expected service time (sampled for trace-built workloads)."""
        if self.service is not None:
            return self.service.mean()
        assert self.trace_builder is not None
        probe_rng = rng or np.random.default_rng(0)
        trace = self.trace_builder(probe_rng, 4096)
        return float(trace.service.mean())

    def __repr__(self) -> str:
        return f"Workload({self.name!r})"


def _trace_workload(spec: TraceSpec) -> Workload:
    def build(rng: np.random.Generator, n: int) -> Trace:
        return synthesize_trace(spec, n=n, rng=rng)

    return Workload(spec.name, trace_builder=build)


def _poisson_exp(mean_service: float = POISSON_EXP_MEAN_SERVICE) -> Workload:
    # The arrival rate here is a placeholder; the runner rescales gaps
    # to the target load, so only the *shape* (exponential) matters.
    return Workload(
        f"Poisson/Exp {mean_service * 1e3:.0f}ms",
        arrivals=PoissonProcess(rate=1.0 / mean_service),
        service=Exponential(mean_service),
    )


_REGISTRY: dict[str, Callable[..., Workload]] = {
    "poisson_exp": _poisson_exp,
    "fine_grain": lambda: _trace_workload(FINE_GRAIN_SPEC),
    "medium_grain": lambda: _trace_workload(MEDIUM_GRAIN_SPEC),
    # Extensions beyond the paper, for sensitivity studies:
    "poisson_deterministic": lambda mean_service=POISSON_EXP_MEAN_SERVICE: Workload(
        f"Poisson/Det {mean_service * 1e3:.0f}ms",
        arrivals=PoissonProcess(rate=1.0 / mean_service),
        service=Deterministic(mean_service),
    ),
    "poisson_lognormal": lambda mean_service=POISSON_EXP_MEAN_SERVICE, cv=2.0: Workload(
        f"Poisson/Lognormal cv={cv}",
        arrivals=PoissonProcess(rate=1.0 / mean_service),
        service=lognormal_from_moments(mean_service, cv * mean_service),
    ),
    "poisson_weibull": lambda mean_service=POISSON_EXP_MEAN_SERVICE, cv=1.5: Workload(
        f"Poisson/Weibull cv={cv}",
        arrivals=PoissonProcess(rate=1.0 / mean_service),
        service=weibull_from_moments(mean_service, cv * mean_service),
    ),
    "poisson_pareto": lambda mean_service=POISSON_EXP_MEAN_SERVICE, cv=2.0: Workload(
        f"Poisson/Pareto cv={cv}",
        arrivals=PoissonProcess(rate=1.0 / mean_service),
        service=pareto_from_moments(mean_service, cv * mean_service),
    ),
    "lognormal_renewal": lambda mean_service=POISSON_EXP_MEAN_SERVICE, arrival_cv=1.5: Workload(
        f"Lognormal-renewal/Exp arrival_cv={arrival_cv}",
        arrivals=RenewalProcess(
            lognormal_from_moments(mean_service, arrival_cv * mean_service)
        ),
        service=Exponential(mean_service),
    ),
    "mmpp_exp": lambda mean_service=POISSON_EXP_MEAN_SERVICE, burst_ratio=5.0, sojourn=1.0: Workload(
        f"MMPP/Exp burst_ratio={burst_ratio}",
        # Two phases with equal sojourns; rates chosen so the long-run
        # mean rate is 1/mean_service (placeholder — rescaled by the
        # runner) with a `burst_ratio` swing between calm and burst.
        arrivals=_mmpp(mean_service, burst_ratio, sojourn),
        service=Exponential(mean_service),
    ),
    # Trace replay (repro.workload.replay): timestamped arrival traces
    # with diurnal/bursty structure, or loaded from CSV/JSONL files.
    "replay_diurnal": lambda mean_service=POISSON_EXP_MEAN_SERVICE, service_cv=1.0, period=240.0, peak_to_trough=6.0: Workload(
        f"Replay diurnal x{peak_to_trough:g}",
        trace_builder=lambda rng, n: diurnal_trace(
            rng, n, mean_service=mean_service, service_cv=service_cv,
            period=period, peak_to_trough=peak_to_trough,
        ),
    ),
    "replay_bursty": lambda mean_service=POISSON_EXP_MEAN_SERVICE, service_cv=1.0, burst_ratio=20.0, burst_fraction=0.1, cycle=2.0: Workload(
        f"Replay bursty x{burst_ratio:g}",
        trace_builder=lambda rng, n: bursty_trace(
            rng, n, mean_service=mean_service, service_cv=service_cv,
            burst_ratio=burst_ratio, burst_fraction=burst_fraction, cycle=cycle,
        ),
    ),
    # The trace file is replayed as-is (tiled, unshuffled, when the run
    # needs more requests than the file holds); pass the digest from
    # replay_file_params so cached results are content-addressed.
    "replay_file": lambda path, digest=None: Workload(
        f"Replay {path}",
        trace_builder=lambda rng, n, _path=path, _digest=digest: file_trace(
            _path, digest=_digest
        ).tiled(n),
    ),
}


def _mmpp(mean_service: float, burst_ratio: float, sojourn: float):
    from repro.workload.arrivals import MarkovModulatedPoisson

    if burst_ratio <= 1.0:
        raise ValueError(f"burst_ratio must be > 1, got {burst_ratio}")
    base_rate = 1.0 / mean_service
    # Equal sojourns: mean rate = (r_low + r_high)/2 = base_rate.
    r_low = 2.0 * base_rate / (1.0 + burst_ratio)
    r_high = burst_ratio * r_low
    return MarkovModulatedPoisson(rates=(r_low, r_high), sojourn_means=(sojourn, sojourn))


def available_workloads() -> list[str]:
    """Registered workload names."""
    return sorted(_REGISTRY)


def make_workload(name: str, **kwargs) -> Workload:
    """Build a registered workload by name.

    The paper's three workloads are ``poisson_exp`` (optionally
    ``mean_service=``), ``fine_grain``, and ``medium_grain``.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    return builder(**kwargs)
