"""Runtime verification: inline invariant oracle + deterministic fuzzer.

``InvariantOracle`` is an event-hook checker following the same
``None``-when-off pattern as telemetry: ``cluster.oracle`` is ``None``
by default, disabled runs are bit-identical to pre-oracle outputs, and
enabled runs are bit-identical across the heap and calendar engines
(the oracle draws no randomness and schedules no events).

``repro.verify.fuzz`` samples random configurations and fault schedules
from a named RNG substream, runs each under the oracle on both exact
engines, and shrinks any violation to a minimal self-contained JSON
reproducer (see ``repro fuzz``).
"""

from repro.verify.oracle import InvariantOracle, InvariantViolation

__all__ = ["InvariantOracle", "InvariantViolation"]
