"""Deterministic fault-schedule fuzzer with reproducer shrinking.

``repro fuzz`` samples random configurations across the policy ×
reliability × overload × dispatcher × autoscaler × chaos space plus a
randomized fault *schedule* (crashes, recoveries, stragglers,
partitions, dispatcher kills at adversarial times), runs each case
under the :class:`~repro.verify.InvariantOracle` on **both** exact
engines, and cross-checks the two runs byte-for-byte. Every case is a
pure function of ``(seed, case index)`` through a named RNG substream,
so any finding replays exactly.

On a finding (oracle violation, deadlock, crash, or heap/calendar
divergence) the failing ``(config, schedule)`` pair is shrunk by
delta-debugging — drop schedule events (classic ddmin), shorten the
request horizon, drop optional subsystems, reduce the server pool —
to a minimal self-contained JSON reproducer. Reproducers are committed
to ``tests/verify/corpus/`` and replayed as regression tests.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.sim.engine import SimulationError
from repro.sim.rng import RngHub
from repro.verify.oracle import InvariantViolation

__all__ = [
    "SPEC_SCHEMA",
    "ENGINES",
    "CaseOutcome",
    "ShrinkResult",
    "FuzzFinding",
    "FuzzReport",
    "sample_case",
    "validate_spec",
    "validate_spec_file",
    "load_spec",
    "run_spec",
    "replay",
    "shrink_spec",
    "fuzz_campaign",
]

SPEC_SCHEMA = 1
ENGINES = ("heap", "calendar")

#: schedule event kinds and the extra keys each requires
_EVENT_KEYS = {
    "crash": ("node",),
    "recover": ("node",),
    "straggle": ("node", "duration_frac", "factor"),
    "partition": ("servers", "duration_frac"),
    "dispatcher_crash": ("index",),
    "dispatcher_recover": ("index",),
}

#: policies eligible for fuzzing. ``manager`` is excluded: its count
#: table is known to drift under timeout retries (each re-selection
#: charges the manager again but only one completion releases) — a
#: separate accounting rework, out of scope here.
_POLICY_POOL = ("random", "polling", "broadcast", "jiq", "least_connections")


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------


def _sample_policy(rng) -> tuple[str, dict[str, Any]]:
    name = str(rng.choice(_POLICY_POOL))
    if name == "polling":
        return name, {
            "poll_size": int(rng.integers(2, 4)),
            "discard_slow": bool(rng.random() < 0.5),
        }
    if name == "broadcast":
        return name, {"mean_interval": round(float(rng.uniform(0.02, 0.1)), 4)}
    return name, {}


def _sample_schedule(rng, n_servers: int, has_dispatcher: bool) -> list[dict[str, Any]]:
    schedule: list[dict[str, Any]] = []
    for _ in range(int(rng.integers(0, 9))):
        kind_draw = float(rng.random())
        at = round(float(rng.uniform(0.05, 0.7)), 4)
        if has_dispatcher and kind_draw < 0.15:
            index = int(rng.integers(0, 4))
            schedule.append({"kind": "dispatcher_crash", "index": index, "at_frac": at})
            if rng.random() < 0.8:
                schedule.append(
                    {
                        "kind": "dispatcher_recover",
                        "index": index,
                        "at_frac": round(at + float(rng.uniform(0.05, 0.2)), 4),
                    }
                )
        elif kind_draw < 0.45:
            node = int(rng.integers(0, n_servers))
            schedule.append({"kind": "crash", "node": node, "at_frac": at})
            if rng.random() < 0.85:
                schedule.append(
                    {
                        "kind": "recover",
                        "node": node,
                        "at_frac": round(at + float(rng.uniform(0.05, 0.25)), 4),
                    }
                )
        elif kind_draw < 0.7:
            schedule.append(
                {
                    "kind": "straggle",
                    "node": int(rng.integers(0, n_servers)),
                    "at_frac": at,
                    "duration_frac": round(float(rng.uniform(0.05, 0.25)), 4),
                    "factor": round(float(rng.uniform(2.0, 6.0)), 3),
                }
            )
        else:
            schedule.append(
                {
                    "kind": "partition",
                    "servers": int(rng.integers(1, max(2, n_servers // 2 + 1))),
                    "at_frac": at,
                    "duration_frac": round(float(rng.uniform(0.03, 0.2)), 4),
                }
            )
    schedule.sort(key=lambda event: (event["at_frac"], event["kind"]))
    return schedule


def sample_case(seed: int, case: int) -> dict[str, Any]:
    """The fuzz case for ``(seed, case)`` — a pure function of both."""
    rng = RngHub(int(seed)).stream(f"verify.fuzz.case{int(case)}")
    n_servers = int(rng.choice([4, 6, 8]))
    policy, policy_params = _sample_policy(rng)
    refresh = round(float(rng.uniform(0.05, 0.25)), 4)
    cluster_params: dict[str, Any] = {
        "availability": True,
        "availability_refresh": refresh,
        "availability_ttl": round(refresh * float(rng.uniform(2.0, 4.0)), 4),
        "request_timeout": round(float(rng.uniform(0.06, 0.25)), 4),
        "max_retries": int(rng.integers(20, 41)),
    }
    if rng.random() < 0.25:
        cluster_params["server_max_queue"] = int(rng.integers(5, 25))
    config: dict[str, Any] = {
        "policy": policy,
        "policy_params": policy_params,
        "n_servers": n_servers,
        "n_clients": int(rng.integers(2, 4)),
        "n_requests": int(rng.choice([150, 250, 400])),
        "load": round(float(rng.uniform(0.5, 1.6)), 3),
        "seed": int(rng.integers(0, 2**31 - 1)),
        "cluster_params": cluster_params,
    }
    if rng.random() < 0.5:
        config["chaos_params"] = {
            "loss": round(float(rng.uniform(0.0, 0.06)), 4),
            "duplicate": round(float(rng.uniform(0.0, 0.03)), 4),
            "jitter_mean": round(float(rng.uniform(0.0, 0.0008)), 6),
        }
    if rng.random() < 0.5:
        reliability: dict[str, Any] = {}
        if rng.random() < 0.6:
            reliability["breaker_threshold"] = int(rng.integers(3, 7))
            reliability["breaker_cooldown"] = round(float(rng.uniform(0.1, 0.4)), 4)
        if rng.random() < 0.5:
            reliability["hedge_quantile"] = 0.9
        if rng.random() < 0.4:
            reliability["backoff_base"] = round(float(rng.uniform(0.001, 0.005)), 5)
        if rng.random() < 0.3:
            reliability["deadline"] = round(float(rng.uniform(1.0, 3.0)), 3)
        if not reliability:
            reliability = {"breaker_threshold": 4, "breaker_cooldown": 0.25}
        config["reliability_params"] = reliability
    if rng.random() < 0.4:
        overload: dict[str, Any] = {
            "sojourn_target": round(float(rng.uniform(0.08, 0.3)), 4),
            "interval": round(float(rng.uniform(0.05, 0.2)), 4),
            "fast_reject": bool(rng.random() < 0.5),
        }
        if rng.random() < 0.5:
            overload["withdraw_after"] = round(float(rng.uniform(0.2, 0.6)), 4)
        config["overload_params"] = overload
    has_dispatcher = rng.random() < 0.35
    if has_dispatcher:
        dispatcher: dict[str, Any] = {
            "count": int(rng.integers(2, 4)),
            "assignment": str(rng.choice(["static", "failover"])),
        }
        if rng.random() < 0.3:
            dispatcher["view_lag"] = round(float(rng.uniform(0.0, 0.15)), 4)
        config["dispatcher_params"] = dispatcher
    if rng.random() < 0.3:
        min_servers = int(rng.integers(1, 3))
        config["autoscaler_params"] = {
            "interval": round(float(rng.uniform(0.1, 0.3)), 4),
            "min_servers": min_servers,
            "initial_servers": int(rng.integers(min_servers, n_servers + 1)),
        }
    return {
        "schema": SPEC_SCHEMA,
        "fuzz_seed": int(seed),
        "case": int(case),
        "check_interval": 8,
        "config": config,
        "schedule": _sample_schedule(rng, n_servers, has_dispatcher),
    }


# ----------------------------------------------------------------------
# validation / IO
# ----------------------------------------------------------------------


def validate_spec(spec: Any) -> list[str]:
    """Every problem with a reproducer spec (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(spec, dict):
        return [f"spec must be a JSON object, got {type(spec).__name__}"]
    if spec.get("schema") != SPEC_SCHEMA:
        problems.append(
            f"schema must be {SPEC_SCHEMA}, got {spec.get('schema')!r}"
        )
    config = spec.get("config")
    if not isinstance(config, dict):
        problems.append("config must be an object of SimulationConfig kwargs")
        config = None
    else:
        for reserved in ("engine", "verify_params"):
            if reserved in config:
                problems.append(
                    f"config.{reserved} is supplied by the runner and must "
                    f"not appear in a spec"
                )
        try:
            SimulationConfig(
                **{k: v for k, v in config.items() if k not in ("engine", "verify_params")}
            )
        except (TypeError, ValueError) as exc:
            problems.append(f"config rejected: {exc}")
    interval = spec.get("check_interval", 8)
    if not isinstance(interval, int) or interval < 1:
        problems.append(f"check_interval must be a positive int, got {interval!r}")
    schedule = spec.get("schedule", [])
    if not isinstance(schedule, list):
        problems.append("schedule must be a list of fault events")
        schedule = []
    for position, event in enumerate(schedule):
        where = f"schedule[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where} must be an object")
            continue
        kind = event.get("kind")
        if kind not in _EVENT_KEYS:
            problems.append(
                f"{where}.kind must be one of {sorted(_EVENT_KEYS)}, got {kind!r}"
            )
            continue
        at_frac = event.get("at_frac")
        if not isinstance(at_frac, (int, float)) or not 0 <= at_frac <= 1:
            problems.append(f"{where}.at_frac must be in [0, 1], got {at_frac!r}")
        for key in _EVENT_KEYS[kind]:
            if key not in event:
                problems.append(f"{where} ({kind}) is missing {key!r}")
                continue
            value = event[key]
            if key in ("node", "index", "servers"):
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"{where}.{key} must be a non-negative int, got {value!r}"
                    )
            elif key == "duration_frac":
                if not isinstance(value, (int, float)) or not 0 < value <= 1:
                    problems.append(
                        f"{where}.duration_frac must be in (0, 1], got {value!r}"
                    )
            elif key == "factor":
                if not isinstance(value, (int, float)) or value <= 0:
                    problems.append(f"{where}.factor must be > 0, got {value!r}")
    return problems


def validate_spec_file(path: str | Path) -> list[str]:
    """Validate a reproducer spec on disk without running it.

    Returns the list of problems (empty when well-formed); unreadable or
    non-JSON files report as a single problem rather than raising, so
    callers can aggregate across a corpus.
    """
    try:
        spec = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable reproducer spec ({exc})"]
    return validate_spec(spec)


def load_spec(path: str | Path) -> dict[str, Any]:
    """Load + validate a reproducer; raises ``ValueError`` on problems."""
    try:
        spec = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: unreadable reproducer spec ({exc})") from exc
    problems = validate_spec(spec)
    if problems:
        raise ValueError(
            f"{path}: malformed reproducer spec:\n  " + "\n  ".join(problems)
        )
    return spec


def save_spec(spec: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaseOutcome:
    """Result of running one spec on both engines."""

    status: str  # "ok" | "violation" | "deadlock" | "divergence" | "error"
    message: str = ""
    engine: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _config_from_spec(spec: dict[str, Any], engine: str) -> SimulationConfig:
    return SimulationConfig(
        engine=engine,
        verify_params={
            "enabled": True,
            "check_interval": int(spec.get("check_interval", 8)),
        },
        **spec["config"],
    )


def _apply_schedule(cluster, injector, schedule, horizon: float) -> None:
    for event in schedule:
        kind = event["kind"]
        at = float(event["at_frac"]) * horizon
        if kind == "crash":
            injector.schedule_crash(int(event["node"]) % cluster.n_servers, at)
        elif kind == "recover":
            injector.schedule_recovery(int(event["node"]) % cluster.n_servers, at)
        elif kind == "straggle":
            injector.schedule_straggle(
                int(event["node"]) % cluster.n_servers,
                at,
                float(event["duration_frac"]) * horizon,
                float(event["factor"]),
            )
        elif kind == "partition":
            isolated = max(1, min(int(event["servers"]), cluster.n_servers - 1))
            group_a = list(range(isolated))
            group_b = list(range(isolated, cluster.n_servers))
            group_b += [client.node_id for client in cluster.clients]
            if cluster.dispatchers is not None:
                group_b += [
                    d.agent.node_id for d in cluster.dispatchers.dispatchers
                ]
            injector.schedule_partition(
                group_a, group_b, at, float(event["duration_frac"]) * horizon
            )
        elif kind in ("dispatcher_crash", "dispatcher_recover"):
            tier = cluster.dispatchers
            if tier is None:
                continue  # shrinker may have dropped dispatcher_params
            index = int(event["index"]) % len(tier.dispatchers)
            if kind == "dispatcher_crash":
                injector.schedule_dispatcher_crash(index, at)
            else:
                injector.schedule_dispatcher_recovery(index, at)
        else:  # pragma: no cover - validate_spec rejects unknown kinds
            raise ValueError(f"unknown schedule event kind {kind!r}")


def _fingerprint(cluster) -> tuple:
    """Byte-exact run signature for the cross-engine divergence check."""
    metrics = cluster.metrics
    return (
        int(cluster.sim.events_executed),
        metrics.response_time.tobytes(),
        metrics.server_id.tobytes(),
        metrics.retries.tobytes(),
        metrics.failed.tobytes(),
    )


def _execute(spec: dict[str, Any], engine: str):
    """Run the spec on one engine: ``(status, message, fingerprint)``."""
    from repro.cluster.failures import ChaosInjector
    from repro.experiments.runner import build_cluster

    try:
        config = _config_from_spec(spec, engine)
        cluster, _ = build_cluster(config)
    except Exception as exc:
        return ("error", f"build failed: {type(exc).__name__}: {exc}", None)
    injector = cluster.chaos if cluster.chaos is not None else ChaosInjector(cluster)
    assert cluster._arrival_times is not None
    horizon = float(cluster._arrival_times[-1])
    try:
        _apply_schedule(cluster, injector, spec.get("schedule", ()), horizon)
        cluster.run()
    except InvariantViolation as exc:
        return ("violation", str(exc), None)
    except SimulationError as exc:
        return ("deadlock", str(exc), None)
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}", None)
    return ("ok", "", _fingerprint(cluster))


def run_spec(
    spec: dict[str, Any], engines: Sequence[str] = ENGINES
) -> CaseOutcome:
    """Run a spec under the oracle on every engine + cross-check."""
    fingerprints = []
    for engine in engines:
        status, message, fingerprint = _execute(spec, engine)
        if status != "ok":
            return CaseOutcome(status=status, message=message, engine=engine)
        fingerprints.append(fingerprint)
    if len(fingerprints) > 1 and any(f != fingerprints[0] for f in fingerprints[1:]):
        return CaseOutcome(
            status="divergence",
            message=(
                "engines disagree on the per-request outcome arrays "
                f"({' vs '.join(engines)})"
            ),
            engine="/".join(engines),
        )
    return CaseOutcome(status="ok")


def replay(path: str | Path, engines: Sequence[str] = ENGINES) -> CaseOutcome:
    """Re-execute a committed reproducer spec deterministically."""
    return run_spec(load_spec(path), engines)


# ----------------------------------------------------------------------
# shrinking (delta debugging)
# ----------------------------------------------------------------------


_CATEGORY_RE = re.compile(r"\]\s*([\w-]+):")


def outcome_signature(outcome: CaseOutcome) -> tuple:
    """What must be preserved while shrinking: the failure *class*."""
    if outcome.status == "violation":
        match = _CATEGORY_RE.search(outcome.message)
        return ("violation", match.group(1) if match else outcome.message[:60])
    return (outcome.status,)


@dataclass
class ShrinkResult:
    spec: dict[str, Any]
    original_events: int
    final_events: int
    original_requests: int
    final_requests: int
    steps: int = 0


def _ddmin(items: list, still_fails: Callable[[list], bool]) -> list:
    """Classic ddmin: minimal sublist that still fails."""
    if still_fails([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk :]
            if candidate and still_fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_spec(
    spec: dict[str, Any],
    run_fn: Optional[Callable[[dict[str, Any]], tuple]] = None,
    target: Optional[tuple] = None,
) -> ShrinkResult:
    """Delta-debug a failing spec down to a minimal reproducer.

    ``run_fn`` maps a candidate spec to its failure signature (injectable
    for tests); the default runs both engines under the oracle.
    """
    if run_fn is None:
        run_fn = lambda s: outcome_signature(run_spec(s))  # noqa: E731
    if target is None:
        target = run_fn(spec)
    steps = 0

    def fails(candidate: dict[str, Any]) -> bool:
        nonlocal steps
        steps += 1
        return run_fn(candidate) == target

    original_events = len(spec.get("schedule", []))
    original_requests = int(spec["config"]["n_requests"])
    current = json.loads(json.dumps(spec))  # deep copy, JSON-native

    # 1. minimize the fault schedule
    schedule = list(current.get("schedule", []))
    if schedule:
        current["schedule"] = _ddmin(
            schedule,
            lambda events: fails({**current, "schedule": events}),
        )

    # 2. shorten the horizon (halve n_requests while it still fails)
    while current["config"]["n_requests"] >= 120:
        candidate = json.loads(json.dumps(current))
        candidate["config"]["n_requests"] = current["config"]["n_requests"] // 2
        if not fails(candidate):
            break
        current = candidate

    # 3. drop optional subsystems one at a time
    for key in (
        "chaos_params",
        "overload_params",
        "reliability_params",
        "autoscaler_params",
        "dispatcher_params",
    ):
        if key not in current["config"]:
            continue
        candidate = json.loads(json.dumps(current))
        del candidate["config"][key]
        if fails(candidate):
            current = candidate

    # 4. reduce the server pool
    while current["config"]["n_servers"] >= 4:
        candidate = json.loads(json.dumps(current))
        candidate["config"]["n_servers"] = current["config"]["n_servers"] // 2
        if not fails(candidate):
            break
        current = candidate

    return ShrinkResult(
        spec=current,
        original_events=original_events,
        final_events=len(current.get("schedule", [])),
        original_requests=original_requests,
        final_requests=int(current["config"]["n_requests"]),
        steps=steps,
    )


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------


@dataclass
class FuzzFinding:
    case: int
    status: str
    message: str
    spec: dict[str, Any]
    path: Optional[Path] = None
    original_events: int = 0
    final_events: int = 0


@dataclass
class FuzzReport:
    seed: int
    budget: int
    n_ok: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"repro fuzz — seed {self.seed}, {self.budget} schedules, "
            f"{self.n_ok} clean, {len(self.findings)} finding(s)",
        ]
        for finding in self.findings:
            lines.append(
                f"  case {finding.case} [{finding.status}] "
                f"schedule {finding.original_events}→{finding.final_events} "
                f"events: {finding.message}"
            )
            if finding.path is not None:
                lines.append(f"    reproducer: {finding.path}")
        if self.clean:
            lines.append("  no invariant violations, deadlocks, or divergences")
        return "\n".join(lines)


def fuzz_campaign(
    seed: int = 0,
    budget: int = 100,
    out_dir: Optional[str | Path] = None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` sampled cases; shrink + save every finding."""
    report = FuzzReport(seed=int(seed), budget=int(budget))
    for case in range(int(budget)):
        spec = sample_case(seed, case)
        outcome = run_spec(spec)
        if outcome.ok:
            report.n_ok += 1
            continue
        if progress is not None:
            progress(
                f"case {case}: {outcome.status} — {outcome.message} (shrinking...)"
            )
        final_spec = spec
        original_events = final_events = len(spec.get("schedule", []))
        if shrink:
            shrunk = shrink_spec(spec, target=outcome_signature(outcome))
            final_spec = shrunk.spec
            original_events = shrunk.original_events
            final_events = shrunk.final_events
        final_outcome = run_spec(final_spec)
        message = final_outcome.message or outcome.message
        final_spec["note"] = (
            f"found by repro fuzz --seed {seed} (case {case}); "
            f"{final_outcome.status}: {message}"
        )
        path = None
        if out_dir is not None:
            path = save_spec(
                final_spec,
                Path(out_dir) / f"fuzz-seed{seed}-case{case}.json",
            )
        report.findings.append(
            FuzzFinding(
                case=case,
                status=final_outcome.status or outcome.status,
                message=message,
                spec=final_spec,
                path=path,
                original_events=original_events,
                final_events=final_events,
            )
        )
    return report
