"""Inline invariant oracle for :class:`repro.cluster.system.ServiceCluster`.

The oracle validates a catalogue of machine-checkable invariants (see
DESIGN.md §17) while a simulation runs:

* **lifecycle hooks** — the cluster calls ``on_arrival`` /
  ``on_dispatch`` / ``on_terminal`` at the corresponding points in
  ``system.py`` (each touch point guarded with ``is not None``, the
  same zero-overhead pattern as telemetry).  These prove request
  conservation and exactly-once terminal outcomes under hedging,
  retries, and NACKs.
* **event hook** — the oracle chains onto ``Simulator.trace`` and
  checks clock monotonicity per event; every ``check_interval`` events
  it runs a full state scan across every enabled subsystem (servers,
  publishers, admission controllers, breakers, dispatcher tier,
  autoscaler, policy-local counters).

The oracle draws **no** randomness and schedules **no** events, so a
verify-enabled run is bit-identical across the heap and calendar
engines, and a verify-disabled run is bit-identical to the pre-oracle
code path (``cluster.oracle`` stays ``None``).

Scans run from the trace hook *between* events — after the engine set
``now`` and before the event callback fires — so synchronous
multi-step transitions inside one event (crash → drain → withdraw) are
never observed half-done.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.request import Request
    from repro.cluster.system import ServiceCluster
    from repro.sim.engine import EventHandle

__all__ = ["InvariantOracle", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """An invariant breach detected by the oracle.

    Carries only its message string so it survives a round-trip through
    :mod:`pickle` (the sweep executor runs clusters in worker
    processes).
    """


_NEG_INF = float("-inf")


class InvariantOracle:
    """Event-hook invariant checker; installed as ``cluster.oracle``.

    Parameters
    ----------
    cluster:
        The :class:`ServiceCluster` to watch.  The oracle only reads
        cluster state; it never mutates it.
    enabled:
        Mirrors the ``verify_params["enabled"]`` config knob.  When
        false the constructor does nothing and the runner leaves
        ``cluster.oracle`` as ``None``.
    check_interval:
        Run the full state scan every N executed events (per-event work
        is just the clock-monotonicity check).
    """

    def __init__(
        self,
        cluster: "ServiceCluster",
        enabled: bool = True,
        check_interval: int = 16,
    ):
        self.cluster = cluster
        self.enabled = bool(enabled)
        self.check_interval = int(check_interval)
        if self.check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        self.events_seen = 0
        self.scans_run = 0
        self._last_time = _NEG_INF
        self._last_seq = -1
        self._arrived: set[int] = set()
        #: request index -> "completed" | "failed"
        self._terminal: dict[int, str] = {}
        self._arrived_per_client: Counter = Counter()
        self._terminal_per_client: Counter = Counter()
        #: server id -> (open_until, opens, scan time) from the last scan
        self._breaker_snapshots: dict[int, tuple[float, int, float]] = {}
        if self.enabled:
            self._chain_trace()

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def _chain_trace(self) -> None:
        """Hook ``sim.trace`` without clobbering an existing hook."""
        sim = self.cluster.sim
        previous = sim.trace
        if previous is None:
            sim.trace = self._on_event
        else:

            def chained(now: float, handle: "EventHandle", _prev=previous) -> None:
                _prev(now, handle)
                self._on_event(now, handle)

            sim.trace = chained

    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"[t={self.cluster.sim.now:.9f}] {message}")

    # ------------------------------------------------------------------
    # per-event hook (clock legality + periodic scans)
    # ------------------------------------------------------------------

    def _on_event(self, now: float, handle: "EventHandle") -> None:
        if now < self._last_time:
            self._fail(
                f"clock: time ran backwards ({self._last_time:.9f} -> {now:.9f})"
            )
        if now == self._last_time and handle.seq <= self._last_seq:
            self._fail(
                f"clock: tie-break order violated at t={now:.9f} "
                f"(seq {self._last_seq} then {handle.seq})"
            )
        if handle.cancelled:
            self._fail(f"clock: cancelled event executed (seq {handle.seq})")
        self._last_time = now
        self._last_seq = handle.seq
        self.events_seen += 1
        if self.events_seen % self.check_interval == 0:
            self.full_scan()

    # ------------------------------------------------------------------
    # lifecycle hooks (called from system.py under `is not None` guards)
    # ------------------------------------------------------------------

    def on_arrival(self, request: "Request") -> None:
        if request.index in self._arrived:
            self._fail(f"conservation: request {request.index} arrived twice")
        self._arrived.add(request.index)
        self._arrived_per_client[request.client_id] += 1

    def on_dispatch(self, request: "Request", server_id: int) -> None:
        if not 0 <= server_id < self.cluster.n_servers:
            self._fail(
                f"dispatch: request {request.index} sent to out-of-range "
                f"server {server_id}"
            )
        if request.index not in self._arrived:
            self._fail(f"dispatch: request {request.index} dispatched before arrival")
        outcome = self._terminal.get(request.index)
        if outcome is not None:
            self._fail(
                f"exactly-once: request {request.index} dispatched after "
                f"terminal outcome ({outcome})"
            )

    def on_terminal(self, request: "Request", failed: bool) -> None:
        previous = self._terminal.get(request.index)
        if previous is not None:
            self._fail(
                f"exactly-once: request {request.index} recorded a second "
                f"terminal outcome ({previous} then "
                f"{'failed' if failed else 'completed'})"
            )
        if request.index not in self._arrived:
            self._fail(
                f"conservation: request {request.index} terminated without arriving"
            )
        if not request.done:
            self._fail(
                f"exactly-once: request {request.index} reached a terminal "
                f"outcome with done=False"
            )
        if failed and not request.failed:
            self._fail(
                f"exactly-once: request {request.index} failed terminally "
                f"but failed flag is unset"
            )
        if not failed and not math.isfinite(request.response_time):
            self._fail(
                f"conservation: request {request.index} completed with "
                f"non-finite response time {request.response_time!r}"
            )
        self._terminal[request.index] = "failed" if failed else "completed"
        self._terminal_per_client[request.client_id] += 1

    def on_run_end(self) -> None:
        """End-of-run conservation: arrived == completed + failed == n."""
        self.full_scan()
        cluster = self.cluster
        n = cluster.n_requests
        if len(self._arrived) != n:
            self._fail(
                f"conservation: {len(self._arrived)} arrivals recorded for "
                f"{n} requests"
            )
        if len(self._terminal) != n:
            self._fail(
                f"conservation: {len(self._terminal)} terminal outcomes for "
                f"{n} arrivals"
            )
        failed_seen = sum(1 for v in self._terminal.values() if v == "failed")
        failed_metric = int(cluster.metrics.failed.sum())
        if failed_seen != failed_metric:
            self._fail(
                f"conservation: oracle saw {failed_seen} failures but "
                f"metrics recorded {failed_metric}"
            )
        for client_id, arrived in self._arrived_per_client.items():
            done = self._terminal_per_client.get(client_id, 0)
            if arrived != done:
                self._fail(
                    f"conservation: client {client_id} arrived {arrived} "
                    f"requests but only {done} reached a terminal outcome"
                )
        # Per-server conservation: any copy still parked at a server must
        # belong to a terminally-resolved request (done losers may legally
        # sit in queues — see DESIGN.md §17 — but a *live* one would be a
        # lost request).
        for server in cluster.servers:
            for request in self._live_copies(server):
                if request.index not in self._terminal:
                    self._fail(
                        f"conservation: request {request.index} still parked "
                        f"at server {server.node_id} after run end"
                    )

    # ------------------------------------------------------------------
    # full state scan
    # ------------------------------------------------------------------

    @staticmethod
    def _live_copies(server) -> list:
        return list(server.queue) + list(server.in_service.values())

    def full_scan(self) -> None:
        """Scan every enabled subsystem for state-machine legality."""
        self.scans_run += 1
        cluster = self.cluster
        now = cluster.sim.now
        self._scan_servers(cluster)
        self._scan_publishers(cluster)
        self._scan_overload(cluster)
        self._scan_breakers(cluster, now)
        self._scan_dispatchers(cluster)
        self._scan_autoscaler(cluster)
        self._scan_policy(cluster)
        self._scan_timeouts(cluster)
        if cluster._completed != len(self._terminal):
            self._fail(
                f"conservation: cluster counted {cluster._completed} resolved "
                f"requests but the oracle recorded {len(self._terminal)}"
            )

    def _scan_servers(self, cluster: "ServiceCluster") -> None:
        plain = cluster.reliability is None
        seen: dict[int, int] = {}
        for server in cluster.servers:
            if len(server.in_service) > server.workers:
                self._fail(
                    f"server: node {server.node_id} has "
                    f"{len(server.in_service)} requests in service for "
                    f"{server.workers} workers"
                )
            live = self._live_copies(server)
            if not server.alive and live:
                self._fail(
                    f"server: dead node {server.node_id} still holds "
                    f"{len(live)} requests (crash must drain synchronously)"
                )
            for request in live:
                if request.queued_at != server.node_id:
                    self._fail(
                        f"server: request {request.index} resides at node "
                        f"{server.node_id} but queued_at={request.queued_at}"
                    )
                if plain:
                    # Without hedging there is a single Request object per
                    # index, so one index can never be live at two servers.
                    other = seen.get(request.index)
                    if other is not None:
                        self._fail(
                            f"server: request {request.index} live at both "
                            f"node {other} and node {server.node_id} "
                            f"without reliability enabled"
                        )
                    seen[request.index] = server.node_id

    def _scan_publishers(self, cluster: "ServiceCluster") -> None:
        if not cluster.availability_enabled:
            return
        for node_id, publisher in cluster.publishers.items():
            if publisher.running and not cluster.should_publish(node_id):
                self._fail(
                    f"soft-state: server {node_id} is publishing while "
                    f"dead/withdrawn/parked (phantom republish)"
                )

    def _scan_overload(self, cluster: "ServiceCluster") -> None:
        if cluster.overload is None:
            return
        for server in cluster.servers:
            controller = server.overload
            if controller is None:
                continue
            if controller.withdrawn and not controller.shedding:
                self._fail(
                    f"admission: server {server.node_id} withdrawn while "
                    f"not shedding"
                )
            if controller.shedding and controller._above_since is None:
                self._fail(
                    f"admission: server {server.node_id} shedding without "
                    f"an over-target onset timestamp"
                )

    def _scan_breakers(self, cluster: "ServiceCluster", now: float) -> None:
        reliability = cluster.reliability
        if reliability is None or not reliability.breakers:
            return
        for server_id, breaker in reliability.breakers.items():
            if not 0 <= breaker.failures <= breaker.threshold:
                self._fail(
                    f"breaker: server {server_id} failure count "
                    f"{breaker.failures} outside [0, {breaker.threshold}]"
                )
            snapshot = self._breaker_snapshots.get(server_id)
            if snapshot is not None:
                prev_open_until, prev_opens, prev_time = snapshot
                if breaker.opens < prev_opens:
                    self._fail(
                        f"breaker: server {server_id} open count decreased "
                        f"({prev_opens} -> {breaker.opens})"
                    )
                tripped = (
                    breaker._open_until != prev_open_until
                    and breaker._open_until != _NEG_INF
                )
                if tripped:
                    if breaker.opens <= prev_opens:
                        self._fail(
                            f"breaker: server {server_id} cooldown horizon "
                            f"moved without a recorded open (closed -> "
                            f"half-open shortcut)"
                        )
                    # The trip happened at some t in [prev_time, now], so
                    # the new horizon must honour the full cooldown from no
                    # earlier than the previous scan (tolerance for float
                    # addition rounding).
                    floor = prev_time + breaker.cooldown - 1e-9
                    if breaker._open_until < floor:
                        self._fail(
                            f"breaker: server {server_id} re-opened with a "
                            f"truncated cooldown (open_until="
                            f"{breaker._open_until:.9f} < {floor:.9f})"
                        )
            self._breaker_snapshots[server_id] = (
                breaker._open_until,
                breaker.opens,
                now,
            )

    def _scan_dispatchers(self, cluster: "ServiceCluster") -> None:
        tier = cluster.dispatchers
        if tier is None:
            return
        index_counts = Counter(tier._inflight_index.values())
        total = 0
        for dispatcher in tier.dispatchers:
            if dispatcher.inflight < 0:
                self._fail(
                    f"dispatcher: #{dispatcher.index} in-flight count is "
                    f"negative ({dispatcher.inflight})"
                )
            expected = index_counts.get(dispatcher.index, 0)
            if dispatcher.inflight != expected:
                self._fail(
                    f"dispatcher: #{dispatcher.index} counts "
                    f"{dispatcher.inflight} in flight but the index holds "
                    f"{expected}"
                )
            total += dispatcher.inflight
        if total != len(tier._inflight_index):
            self._fail(
                f"dispatcher: tier counts {total} in flight but the index "
                f"holds {len(tier._inflight_index)}"
            )

    def _scan_autoscaler(self, cluster: "ServiceCluster") -> None:
        scaler = cluster.autoscaler
        if scaler is None:
            return
        n_active = scaler.n_active
        if not scaler.min_servers <= n_active <= scaler.max_servers:
            self._fail(
                f"autoscaler: {n_active} active servers outside "
                f"[{scaler.min_servers}, {scaler.max_servers}]"
            )
        for node_id in scaler._active:
            if not 0 <= node_id < cluster.n_servers:
                self._fail(
                    f"autoscaler: active set contains out-of-range node "
                    f"{node_id}"
                )
            if scaler.is_active(node_id) is not True:
                self._fail(
                    f"autoscaler: is_active({node_id}) disagrees with the "
                    f"active set"
                )

    def _scan_policy(self, cluster: "ServiceCluster") -> None:
        # Policies that keep their own in-flight ledgers can expose a
        # `verify_scan() -> Optional[str]` hook; additionally the oracle
        # knows the least-connections counter contract directly so the
        # non-negativity check works even against older policy code.
        scan = getattr(cluster.policy, "verify_scan", None)
        if scan is not None:
            problem = scan()
            if problem:
                self._fail(f"policy: {problem}")
        ctx = getattr(cluster.policy, "ctx", None)
        agents = ctx.selector_agents if ctx is not None else ()
        for agent in agents:
            counts = agent.state.get("least_connections.counts")
            if counts is None or not len(counts):
                continue
            if int(counts.min()) < 0:
                self._fail(
                    f"policy: least_connections counter went negative on "
                    f"selector {agent.node_id} (min={int(counts.min())})"
                )

    def _scan_timeouts(self, cluster: "ServiceCluster") -> None:
        for index, handle in cluster._timeout_handles.items():
            if handle.cancelled:
                self._fail(
                    f"timeout: request {index} holds a cancelled timeout handle"
                )
            if index not in self._arrived:
                self._fail(f"timeout: armed for never-arrived request {index}")
            outcome = self._terminal.get(index)
            if outcome is not None:
                self._fail(
                    f"timeout: still armed for request {index} after its "
                    f"terminal outcome ({outcome})"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InvariantOracle enabled={self.enabled} "
            f"events={self.events_seen} scans={self.scans_run}>"
        )
