"""repro — reproduction of *Cluster Load Balancing for Fine-grain
Network Services* (Shen, Yang, Chu; IPPS 2002).

Public API layout:

- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.net` — message-level cluster network substrate.
- :mod:`repro.cluster` — server/client/service cluster substrate.
- :mod:`repro.core` — the load balancing policies (the paper's topic).
- :mod:`repro.workload` — distributions, traces, Table-1 synthesis.
- :mod:`repro.analysis` — queueing formulas, Eq.1 bound, statistics.
- :mod:`repro.prototype` — prototype-fidelity overhead model.
- :mod:`repro.experiments` — configs, runners, figure/table drivers.

Quick start::

    from repro.experiments import SimulationConfig, run_simulation
    cfg = SimulationConfig(policy="polling", policy_params={"poll_size": 2},
                           workload="poisson_exp", load=0.9, seed=1)
    result = run_simulation(cfg)
    print(result.mean_response_time_ms)
"""

__version__ = "1.0.0"

from repro import analysis, cluster, core, experiments, net, prototype, sim, workload

__all__ = [
    "analysis",
    "cluster",
    "core",
    "experiments",
    "net",
    "prototype",
    "sim",
    "workload",
    "__version__",
]
