"""Streaming statistics and confidence intervals.

- :class:`OnlineStats` — Welford single-pass mean/variance (numerically
  stable; validated against NumPy in tests).
- :class:`P2Quantile` — the P² streaming quantile estimator (Jain &
  Chlamtac 1985), used where storing every response time would dominate
  memory.
- :func:`batch_means_ci` — batch-means confidence interval for the mean
  of a (possibly autocorrelated) stationary series, the standard way to
  put error bars on steady-state simulation output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

__all__ = [
    "OnlineStats",
    "P2Quantile",
    "batch_means_ci",
    "summarize",
    "ks_statistic",
    "distribution_distance",
]


class OnlineStats:
    """Welford's single-pass mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def push_many(self, values: np.ndarray) -> None:
        for value in np.asarray(values, dtype=np.float64):
            self.push(float(value))

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (parallel reduction; Chan et al.)."""
        merged = OnlineStats()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.n / merged.n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.n * other.n / merged.n
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged


class P2Quantile:
    """P² streaming estimate of the ``p``-quantile (no sample storage)."""

    __slots__ = ("p", "_markers", "_positions", "_desired", "_increments", "_count")

    def __init__(self, p: float):
        if not 0 < p < 1:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self._markers: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    def push(self, value: float) -> None:
        self._count += 1
        markers = self._markers
        if len(markers) < 5:
            markers.append(value)
            markers.sort()
            return
        # Locate the cell and bump marker positions.
        if value < markers[0]:
            markers[0] = value
            cell = 0
        elif value >= markers[4]:
            markers[4] = value
            cell = 3
        else:
            cell = 0
            while value >= markers[cell + 1]:
                cell += 1
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust interior markers by parabolic (or linear) interpolation.
        for i in (1, 2, 3):
            gap = self._desired[i] - positions[i]
            step = 1.0 if gap >= 1.0 else (-1.0 if gap <= -1.0 else 0.0)
            if step == 0.0:
                continue
            left_gap = positions[i] - positions[i - 1]
            right_gap = positions[i + 1] - positions[i]
            if (step > 0 and right_gap <= 1.0) or (step < 0 and left_gap <= 1.0):
                continue
            candidate = self._parabolic(i, step)
            if not markers[i - 1] < candidate < markers[i + 1]:
                candidate = self._linear(i, step)
            markers[i] = candidate
            positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._markers, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._markers, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if not self._markers:
            return math.nan
        if self._count <= 5:
            ordered = sorted(self._markers)
            index = min(int(self.p * len(ordered)), len(ordered) - 1)
            return ordered[index]
        return self._markers[2]


@dataclass(frozen=True)
class ConfidenceInterval:
    mean: float
    half_width: float
    confidence: float
    n_batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width


def batch_means_ci(
    values: np.ndarray, n_batches: int = 20, confidence: float = 0.95
) -> ConfidenceInterval:
    """Batch-means CI for the mean of a stationary, correlated series.

    Splits the series into ``n_batches`` contiguous batches; batch means
    are approximately IID for long batches, so a Student-t interval on
    them is valid despite within-series autocorrelation.
    """
    values = np.asarray(values, dtype=np.float64)
    if n_batches < 2:
        raise ValueError(f"n_batches must be >= 2, got {n_batches}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if values.size < 2 * n_batches:
        raise ValueError(
            f"need at least {2 * n_batches} observations, got {values.size}"
        )
    usable = (values.size // n_batches) * n_batches
    batches = values[:usable].reshape(n_batches, -1).mean(axis=1)
    mean = float(batches.mean())
    sem = float(batches.std(ddof=1) / math.sqrt(n_batches))
    t_crit = float(sp_stats.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    return ConfidenceInterval(mean, t_crit * sem, confidence, n_batches)


def summarize(values: np.ndarray) -> dict[str, float]:
    """Vectorized summary of a sample (times in the caller's units)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        keys = ("n", "mean", "std", "min", "p50", "p90", "p99", "max")
        return {key: math.nan for key in keys} | {"n": 0}
    return {
        "n": int(values.size),
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "p50": float(np.percentile(values, 50)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
        "max": float(values.max()),
    }


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Used by the distribution-level engine parity tier to quantify
    agreement between fast-path and exact-engine response-time samples
    (DESIGN.md §13); implemented directly so the hot comparison loop
    needs no scipy import.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("ks_statistic requires non-empty samples")
    grid = np.concatenate((a, b))
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def distribution_distance(p: np.ndarray, q: np.ndarray) -> float:
    """KS distance between two discrete distributions given as
    probability vectors over 0..k (padded to common length).

    The occupancy analogue of :func:`ks_statistic`: both engines report
    queue-length occupancy as normalized histograms, so the comparison
    runs over CDFs of the histograms rather than raw samples.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    size = max(p.size, q.size)
    p = np.pad(p, (0, size - p.size))
    q = np.pad(q, (0, size - q.size))
    return float(np.abs(np.cumsum(p) - np.cumsum(q)).max())
