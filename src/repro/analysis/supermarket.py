"""Mitzenmacher's supermarket (power-of-d-choices) mean-field model.

The paper cites Mitzenmacher (SPAA'97): with Poisson arrivals at rate
``n·rho``, ``n`` exponential servers, and each job joining the shortest
of ``d`` uniformly sampled queues, the limiting (n → ∞) fraction of
queues with at least ``k`` jobs is

    s_k = rho^{(d^k - 1)/(d - 1)}

so the expected time in system is ``E[T]/E[S] = sum_{i>=1}
rho^{(d^i - d)/(d - 1)}`` — a doubly exponential improvement over d=1.
This module provides the fixed point, the transient ODE

    ds_k/dt = lambda (s_{k-1}^d - s_k^d) - (s_k - s_{k+1})

and the derived means, used to (a) explain the paper's "poll size 2
suffices" observation analytically and (b) validate the cluster
simulator against theory in the benches.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp

__all__ = [
    "supermarket_fixed_point",
    "supermarket_mean_queue_length",
    "supermarket_mean_response_time",
    "supermarket_ode_trajectory",
]


def _check(rho: float, d: int) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")


def _exponents(d: int, k: np.ndarray) -> np.ndarray:
    """(d^k - 1)/(d - 1), handled exactly at d=1 (→ k)."""
    if d == 1:
        return k.astype(np.float64)
    return (np.power(float(d), k) - 1.0) / (d - 1.0)


def supermarket_fixed_point(rho: float, d: int, k_max: int = 64) -> np.ndarray:
    """``s_k`` for k = 0..k_max: fraction of queues with >= k jobs."""
    _check(rho, d)
    if k_max < 0:
        raise ValueError(f"k_max must be >= 0, got {k_max}")
    k = np.arange(k_max + 1)
    if rho == 0:
        out = np.zeros(k_max + 1)
        out[0] = 1.0
        return out
    with np.errstate(over="ignore", under="ignore"):
        exponents = _exponents(d, k)
        # Guard overflow in d^k for large k: exponents grow fast, rho<1
        # so s_k underflows to 0, which is the correct limit.
        out = np.where(exponents > 1e15, 0.0, rho ** np.minimum(exponents, 1e15))
    out[0] = 1.0
    return out


def supermarket_mean_queue_length(rho: float, d: int) -> float:
    """Expected jobs per queue: ``sum_{k>=1} s_k``."""
    _check(rho, d)
    tail = supermarket_fixed_point(rho, d, k_max=512)
    return float(tail[1:].sum())


def supermarket_mean_response_time(rho: float, d: int, mean_service: float = 1.0) -> float:
    """Expected time in system: ``E[S] * sum_{i>=1} rho^{(d^i-d)/(d-1)}``.

    For d = 1 this reduces to the M/M/1 value ``E[S]/(1-rho)``.
    """
    _check(rho, d)
    if mean_service <= 0:
        raise ValueError(f"mean_service must be > 0, got {mean_service}")
    if rho == 0:
        return mean_service
    i = np.arange(1, 513)
    if d == 1:
        exponents = i - 1.0
    else:
        with np.errstate(over="ignore"):
            exponents = (np.power(float(d), i) - d) / (d - 1.0)
    with np.errstate(under="ignore"):
        terms = np.where(exponents > 1e15, 0.0, rho ** np.minimum(exponents, 1e15))
    return mean_service * float(terms.sum())


def supermarket_ode_trajectory(
    rho: float,
    d: int,
    t_max: float,
    k_max: int = 64,
    initial: np.ndarray | None = None,
    n_points: int = 200,
) -> tuple[np.ndarray, np.ndarray]:
    """Integrate the mean-field ODE from ``initial`` (default: empty).

    Time is in units of mean service time. Returns ``(t, S)`` where
    ``S[j, k]`` is s_k at time t[j]; s_0 is pinned at 1.

    Used to study how fast the power-of-d system converges to its fixed
    point — the transient counterpart of the paper's staleness argument.
    """
    _check(rho, d)
    if t_max <= 0:
        raise ValueError(f"t_max must be > 0, got {t_max}")
    if initial is None:
        state0 = np.zeros(k_max)  # s_1..s_kmax start empty
    else:
        state0 = np.asarray(initial, dtype=np.float64)
        if state0.shape != (k_max,):
            raise ValueError(f"initial must have shape ({k_max},)")

    def rhs(_t: float, s: np.ndarray) -> np.ndarray:
        full = np.empty(k_max + 2)
        full[0] = 1.0
        full[1 : k_max + 1] = np.clip(s, 0.0, 1.0)
        full[k_max + 1] = 0.0
        sd = full**d
        # ds_k/dt for k = 1..k_max
        return rho * (sd[:k_max] - sd[1 : k_max + 1]) - (
            full[1 : k_max + 1] - full[2 : k_max + 2]
        )

    t_eval = np.linspace(0.0, t_max, n_points)
    solution = solve_ivp(rhs, (0.0, t_max), state0, t_eval=t_eval, rtol=1e-8, atol=1e-10)
    if not solution.success:  # pragma: no cover - solver failure
        raise RuntimeError(f"ODE integration failed: {solution.message}")
    trajectory = np.empty((n_points, k_max + 1))
    trajectory[:, 0] = 1.0
    trajectory[:, 1:] = solution.y.T
    return t_eval, trajectory
