"""Load-index inaccuracy (paper §2.1, Eq. 1, Figure 2).

The paper defines the load-index inaccuracy for a dissemination delay
``t`` as ``E |Q(tau) - Q(tau + t)|`` over random times ``tau`` on a
single server, and derives an upper bound for Poisson/Exp assuming the
two samples become independent at large delay:

    sum_{i,j} (1-rho)^2 rho^{i+j} |i - j|  =  2 rho / (1 - rho^2)   (Eq. 1)

This module provides the closed form, a brute-force series evaluation
(used in tests to verify the algebra), a vectorized single-FIFO-server
queue-length computation (no DES required), and the empirical
inaccuracy measurement used by the Figure 2 driver.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "eq1_upperbound",
    "eq1_upperbound_series",
    "fifo_queue_length_steps",
    "measure_inaccuracy",
]


def eq1_upperbound(rho: float) -> float:
    """The paper's Eq. 1: ``2 rho / (1 - rho^2)``.

    At rho = 0.9 this is ≈ 9.47; the paper's Figure 2 quotes ≈ 1.33 at
    rho = 0.5 (2·0.5/0.75).
    """
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    return 2.0 * rho / (1.0 - rho * rho)


def eq1_upperbound_series(rho: float, terms: int = 4000) -> float:
    """Direct evaluation of the Eq. 1 double sum (verification).

    ``sum_{i,j=0}^{terms} (1-rho)^2 rho^{i+j} |i-j|``; converges to
    :func:`eq1_upperbound` as ``terms`` grows.
    """
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    k = np.arange(terms)
    weights = (1.0 - rho) * rho**k  # P(Q = k)
    diff = np.abs(k[:, None] - k[None, :])
    return float(weights @ diff @ weights)


def fifo_queue_length_steps(
    arrival_times: np.ndarray, service_times: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Queue-length step function of a single non-preemptive FIFO server.

    Fully vectorized (the guides' "avoid event-per-sample loops" idiom):
    departures satisfy ``d_i = max(a_i, d_{i-1}) + s_i``, which is a
    prefix recursion solved as ``d_i = max_j (a_j + sum_{k=j..i} s_k)``
    = ``cumsum(s) + running_max(a - cumsum(s) shifted)``.

    Returns ``(times, queue_lengths)`` — a right-continuous step
    function starting at Q=0; ``queue_lengths[k]`` holds on
    ``[times[k], times[k+1])``. Queue length counts the job in service.
    """
    arrivals = np.ascontiguousarray(arrival_times, dtype=np.float64)
    services = np.ascontiguousarray(service_times, dtype=np.float64)
    if arrivals.shape != services.shape or arrivals.ndim != 1:
        raise ValueError("arrival_times and service_times must be equal-length 1-D")
    if arrivals.size == 0:
        return np.empty(0), np.empty(0)
    if (np.diff(arrivals) < 0).any():
        raise ValueError("arrival_times must be non-decreasing")
    cum_service = np.cumsum(services)
    # d_i = cum_service_i + max_{j<=i} (a_j - cum_service_{j-1})
    slack = arrivals.copy()
    slack[1:] -= cum_service[:-1]
    departures = cum_service + np.maximum.accumulate(slack)

    events = np.concatenate([arrivals, departures])
    deltas = np.concatenate([np.ones_like(arrivals), -np.ones_like(departures)])
    # At equal times, process departures (delta=-1) before arrivals so a
    # job arriving exactly at a departure instant sees the freed server.
    order = np.lexsort((deltas, events))
    times = events[order]
    queue = np.cumsum(deltas[order])
    return times, queue


def measure_inaccuracy(
    times: np.ndarray,
    queue: np.ndarray,
    delays: np.ndarray,
    rng: np.random.Generator,
    n_samples: int = 20000,
    window: tuple[float, float] | None = None,
) -> np.ndarray:
    """Empirical ``E |Q(tau) - Q(tau + delay)|`` for each delay.

    Samples ``n_samples`` uniform times ``tau`` in ``window`` (default:
    [10% of the horizon, horizon - max(delays)]) and evaluates the step
    function at ``tau`` and ``tau + delay`` via ``searchsorted``.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    queue = np.ascontiguousarray(queue, dtype=np.float64)
    delays = np.atleast_1d(np.asarray(delays, dtype=np.float64))
    if times.size < 2:
        raise ValueError("need a non-trivial step function")
    if (delays < 0).any():
        raise ValueError("delays must be >= 0")
    horizon = times[-1]
    max_delay = float(delays.max())
    if window is None:
        window = (0.1 * horizon, horizon - max_delay)
    t_lo, t_hi = window
    if t_hi <= t_lo:
        raise ValueError(
            f"sampling window empty: [{t_lo}, {t_hi}] (horizon={horizon}, "
            f"max delay={max_delay})"
        )
    taus = rng.uniform(t_lo, t_hi, n_samples)

    def q_at(query: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(times, query, side="right") - 1
        return np.where(idx >= 0, queue[np.clip(idx, 0, None)], 0.0)

    base = q_at(taus)
    out = np.empty(delays.shape[0])
    for i, delay in enumerate(delays):
        out[i] = np.abs(q_at(taus + delay) - base).mean()
    return out
