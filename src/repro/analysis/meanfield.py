"""Stationary mean-field (fluid-limit) solver for the supermarket model.

:mod:`repro.analysis.supermarket` gives the *analytic* fixed point
``s_k = rho^{(d^k-1)/(d-1)}`` and the transient ODE. This module closes
the loop for the large-N validation tier (DESIGN.md §13): it finds the
stationary point *numerically* — integrating the mean-field ODE

    ds_k/dt = rho (s_{k-1}^d - s_k^d) - (s_k - s_{k+1})

until the drift vanishes — and maps simulation configs onto the model
so a fast-path cell at N=1000+ can be cross-checked against the N→∞
prediction without ever running an exact engine at that scale
(Horváth & Mészáros; Mitzenmacher). Solving the ODE instead of just
evaluating the closed form keeps the check honest: agreement between
the integrated fixed point and the closed form is itself asserted in
tests, and the ODE route generalizes to variants with no closed form.

Mapping (what the model can represent):

- ``random`` → d = 1 (each M/M/1 queue in isolation; exact at any N)
- ``polling`` → d = poll_size (power-of-d-choices)
- ``broadcast`` / ``stale_jsq`` select on *globally* stale state — not
  a power-of-d system — and anything non-Poisson/non-exponential breaks
  the model, so those raise :class:`MeanFieldUnsupportedError`.

Predictions are in *response-time* terms (the simulator's measurement):
mean sojourn from the fixed point via Little's law, plus the constant
network path the simulation model charges (one-way request + response,
plus the poll round trip for polling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.integrate import solve_ivp

from repro.analysis.supermarket import supermarket_fixed_point
from repro.net.latency import PAPER_NET, PaperNetworkConstants
from repro.workload.workloads import POISSON_EXP_MEAN_SERVICE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import SimulationConfig

__all__ = [
    "MeanFieldSolution",
    "MeanFieldPrediction",
    "MeanFieldUnsupportedError",
    "solve_stationary",
    "meanfield_prediction",
]


class MeanFieldUnsupportedError(ValueError):
    """The config maps onto no supermarket-model limit."""


@dataclass(frozen=True)
class MeanFieldSolution:
    """Stationary point of the mean-field ODE.

    ``tail[k]`` is ``s_k`` — the limiting fraction of servers with at
    least ``k`` jobs in system. Times are in units of mean service time.
    """

    rho: float
    d: int
    tail: np.ndarray
    residual: float  # max |ds_k/dt| at the returned state
    elapsed: float  # integrated model time until convergence

    @property
    def mean_queue_length(self) -> float:
        """Expected jobs per server: ``sum_{k>=1} s_k``."""
        return float(self.tail[1:].sum())

    @property
    def mean_sojourn(self) -> float:
        """Expected time in system / E[S], via Little's law
        (``sum_{k>=1} s_k / rho``); 1/(1-rho) at d=1."""
        if self.rho == 0:
            return 1.0
        return self.mean_queue_length / self.rho

    @property
    def fixed_point_gap(self) -> float:
        """Max deviation from the analytic closed form (sanity metric)."""
        analytic = supermarket_fixed_point(self.rho, self.d, k_max=len(self.tail) - 1)
        return float(np.abs(self.tail - analytic).max())


def solve_stationary(
    rho: float,
    d: int,
    k_max: int = 64,
    tol: float = 1e-8,
    block: float = 64.0,
    max_time: float = 65536.0,
) -> MeanFieldSolution:
    """Integrate the mean-field ODE from empty until stationary.

    Runs ``solve_ivp`` in blocks of ``block`` service times and stops
    when the drift ``max_k |ds_k/dt|`` falls below ``tol``; raises if
    ``max_time`` service times pass without converging (heavy loads
    relax on the 1/(1-rho)^2 timescale, hence the generous default).
    """
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if rho == 0:
        tail = np.zeros(k_max + 1)
        tail[0] = 1.0
        return MeanFieldSolution(rho=rho, d=d, tail=tail, residual=0.0, elapsed=0.0)

    def rhs(_t: float, s: np.ndarray) -> np.ndarray:
        full = np.empty(k_max + 2)
        full[0] = 1.0
        full[1 : k_max + 1] = np.clip(s, 0.0, 1.0)
        full[k_max + 1] = 0.0
        powered = full**d
        return rho * (powered[:k_max] - powered[1 : k_max + 1]) - (
            full[1 : k_max + 1] - full[2 : k_max + 2]
        )

    state = np.zeros(k_max)
    elapsed = 0.0
    residual = float(np.abs(rhs(0.0, state)).max())
    while residual > tol:
        if elapsed >= max_time:
            raise RuntimeError(
                f"mean-field ODE did not converge within {max_time} service "
                f"times (rho={rho}, d={d}, residual={residual:.3e})"
            )
        solution = solve_ivp(
            rhs, (0.0, block), state, rtol=1e-10, atol=1e-12, dense_output=False
        )
        if not solution.success:  # pragma: no cover - solver failure
            raise RuntimeError(f"ODE integration failed: {solution.message}")
        state = solution.y[:, -1]
        elapsed += block
        residual = float(np.abs(rhs(0.0, state)).max())

    tail = np.empty(k_max + 1)
    tail[0] = 1.0
    tail[1:] = np.clip(state, 0.0, 1.0)
    return MeanFieldSolution(rho=rho, d=d, tail=tail, residual=residual, elapsed=elapsed)


@dataclass(frozen=True)
class MeanFieldPrediction:
    """N→∞ prediction for one simulation config (times in seconds)."""

    rho: float
    d: int
    mean_service: float
    mean_sojourn: float  # queueing + service, seconds
    latency_offset: float  # constant network path charged by the model
    solution: MeanFieldSolution

    @property
    def mean_response_time(self) -> float:
        return self.mean_sojourn + self.latency_offset


def _model_degree(config: "SimulationConfig") -> int:
    if config.policy == "random":
        return 1
    if config.policy == "polling":
        poll_size = int(config.policy_params.get("poll_size", 2))
        if config.policy_params.get("discard_slow"):
            raise MeanFieldUnsupportedError(
                "polling with discard_slow has no supermarket-model limit"
            )
        return poll_size
    raise MeanFieldUnsupportedError(
        f"policy {config.policy!r} has no supermarket-model limit "
        "(supported: random [d=1], polling [d=poll_size])"
    )


def meanfield_prediction(
    config: "SimulationConfig",
    constants: PaperNetworkConstants = PAPER_NET,
    k_max: int = 64,
) -> MeanFieldPrediction:
    """Map a config onto the supermarket limit and solve it.

    Raises :class:`MeanFieldUnsupportedError` for configs outside the
    model (non-Poisson/Exp workload, stale-information policies,
    prototype model, load >= 1).
    """
    if config.model != "simulation":
        raise MeanFieldUnsupportedError(
            f"model={config.model!r}: the mean-field limit covers the pure "
            "simulation model only"
        )
    if config.workload != "poisson_exp":
        raise MeanFieldUnsupportedError(
            f"workload {config.workload!r}: the supermarket model needs "
            "Poisson arrivals and exponential service (poisson_exp)"
        )
    if not 0 < config.load < 1:
        raise MeanFieldUnsupportedError(
            f"load={config.load}: stationary mean-field requires 0 < rho < 1"
        )
    d = _model_degree(config)
    mean_service = float(
        config.workload_params.get("mean_service", POISSON_EXP_MEAN_SERVICE)
    )
    solution = solve_stationary(config.load, d, k_max=k_max)
    # Response time = sojourn + dispatch latency + request/response
    # one-ways (see fastpath's timing model: polls cost one UDP RTT, the
    # instant policies dispatch at arrival).
    dispatch = constants.udp_rtt if config.policy == "polling" else 0.0
    return MeanFieldPrediction(
        rho=config.load,
        d=d,
        mean_service=mean_service,
        mean_sojourn=solution.mean_sojourn * mean_service,
        latency_offset=dispatch + 2.0 * constants.request_one_way,
        solution=solution,
    )
